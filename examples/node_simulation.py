"""A miniature full node: mempool, mining, forks, reorgs, parallel
validation — every substrate working together.

The scenario: users submit fee-bearing transactions into a mempool; a
miner packs blocks by fee density (respecting in-pool dependencies) and
mines them onto a fork-choice-managed chain; a competing fork appears
and overtakes the head, forcing a reorg that the UTXO state replays
with its undo data; finally the node validates the new chain with the
TDG-informed parallel executor and reports its speed-up.

Run:  python examples/node_simulation.py
"""

from __future__ import annotations

import random

from repro.chain.block import GENESIS_PARENT, build_block
from repro.chain.forkchoice import ForkChoice
from repro.core.tdg import utxo_tdg
from repro.execution import GroupedExecutor, tasks_from_utxo_block
from repro.mempool import Mempool, PoolEntry
from repro.utxo.transaction import (
    TxOutputSpec,
    make_coinbase,
    make_transaction,
)
from repro.utxo.txo import COIN
from repro.utxo.utxo_set import UTXOSet

rng = random.Random(42)


def main() -> None:
    state = UTXOSet()
    fork_choice = ForkChoice()
    undos: dict[str, object] = {}

    # -- genesis ----------------------------------------------------------------
    faucet = make_coinbase(reward=1000 * COIN, miner="faucet", height=0)
    genesis = build_block(
        [faucet], height=0, parent_hash=GENESIS_PARENT, timestamp=0.0
    )
    reorg = fork_choice.receive(genesis)
    for block in reorg.applied:
        undos[block.block_hash] = state.apply_block(block.transactions)

    # Fan the faucet output into user wallets.
    fanout = make_transaction(
        inputs=[faucet.outputs[0].outpoint],
        outputs=[
            TxOutputSpec(value=100 * COIN, owner=f"user{i}")
            for i in range(10)
        ],
        nonce="fanout",
    )

    # -- mempool: users submit fee-bearing payments ------------------------------
    pool: Mempool = Mempool(min_fee_rate=0.5)
    pool.submit(
        PoolEntry(
            tx_hash=fanout.tx_hash, fee=500, weight=400, payload=fanout
        )
    )
    parents: dict[str, set[str]] = {}
    for index in range(10):
        payment = make_transaction(
            inputs=[fanout.outputs[index].outpoint],
            outputs=[
                TxOutputSpec(
                    value=100 * COIN - 1000,
                    owner=f"merchant{index % 3}",
                )
            ],
            fee=1000,
            nonce=("pay", index),
        )
        pool.submit(
            PoolEntry(
                tx_hash=payment.tx_hash,
                fee=rng.randint(500, 3000),
                weight=250,
                payload=payment,
            )
        )
        parents[payment.tx_hash] = {fanout.tx_hash}  # child of the fanout

    # -- miner packs and mines block 1 -------------------------------------------
    selected = pool.pack_block_with_dependencies(4000, parents=parents)
    coinbase1 = make_coinbase(reward=50 * COIN, miner="minerA", height=1)
    block1 = build_block(
        [coinbase1, *[entry.payload for entry in selected]],
        height=1,
        parent_hash=genesis.block_hash,
        timestamp=600.0,
        difficulty=1.0,
    )
    reorg = fork_choice.receive(block1)
    for block in reorg.applied:
        undos[block.block_hash] = state.apply_block(block.transactions)
    print(f"block 1 mined by minerA: {len(block1)} txs "
          f"(fee-priority order, dependencies respected)")
    print(f"   merchants funded: "
          f"{state.balance_of('merchant0') / COIN:.2f} coins at merchant0")

    # -- a heavier competing fork appears ----------------------------------------
    coinbase1b = make_coinbase(reward=50 * COIN, miner="minerB", height=1)
    fanout_b = make_transaction(
        inputs=[faucet.outputs[0].outpoint],
        outputs=[
            TxOutputSpec(value=500 * COIN, owner="whale"),
            TxOutputSpec(value=500 * COIN, owner="whale2"),
        ],
        nonce="fork-spend",
    )
    block1b = build_block(
        [coinbase1b, fanout_b],
        height=1,
        parent_hash=genesis.block_hash,
        timestamp=580.0,
        difficulty=3.0,  # heavier
    )
    reorg = fork_choice.receive(block1b)
    assert reorg is not None and reorg.depth == 1
    for rolled in reorg.rolled_back:
        state.revert_block(undos.pop(rolled.block_hash))
    for block in reorg.applied:
        undos[block.block_hash] = state.apply_block(block.transactions)
    print(f"reorg! minerB's heavier fork won (depth {reorg.depth}); "
          "state rolled back and replayed")
    print(f"   merchant0 after reorg: "
          f"{state.balance_of('merchant0') / COIN:.2f} coins "
          "(payments undone)")
    print(f"   whale after reorg: "
          f"{state.balance_of('whale') / COIN:.2f} coins")

    # -- parallel validation of the losing block (what a fast node does) ---------
    tasks = tasks_from_utxo_block(block1.transactions)
    report = GroupedExecutor(cores=8).run(tasks)
    tdg = utxo_tdg(block1.transactions)
    print(f"parallel re-validation of block 1: {report.speedup:.2f}x "
          f"on 8 cores ({len(tdg.groups)} dependency groups, "
          f"LCC {tdg.lcc_size})")


if __name__ == "__main__":
    main()
