"""The paper's future-work items, implemented and measured.

The conclusion of Reijsbergen & Dinh lists what was left open; this
example runs three of those studies on a synthetic Ethereum chain:

1. §V-C — how good is the *approximate TDG* built from regular
   transactions only (no internal-transaction knowledge)?
2. §VII — how much *inter-block* concurrency exists beyond the
   intra-block concurrency the paper measures?
3. §II-C — how much does an execution speed-up strengthen the
   *verification incentive* (the Verifier's Dilemma)?

Run:  python examples/future_work_studies.py
"""

from __future__ import annotations

import statistics

from repro.core.approx import assess_block, corrected_group_speedup
from repro.core.interblock import sliding_window_speedups
from repro.core.speedup import group_speedup_bound
from repro.core.tdg import account_tdg
from repro.economics.verifier import (
    VerifierParams,
    security_gain_from_speedup,
)
from repro.workload import build_account_chain
from repro.workload.profiles import ETHEREUM

CORES = 8


def main() -> None:
    builder = build_account_chain(ETHEREUM, num_blocks=100, seed=4, scale=1.0)
    busy_blocks = [
        executed
        for _block, executed in builder.executed_blocks
        if sum(1 for item in executed if not item.is_coinbase) >= 30
    ]
    print(f"simulated {len(builder.executed_blocks)} blocks; "
          f"{len(busy_blocks)} busy enough to study\n")

    # -- 1. approximate TDG (§V-C) -------------------------------------------
    qualities = [assess_block(executed) for executed in busy_blocks]
    mean_recall = statistics.mean(q.pair_recall for q in qualities)
    imperfect = sum(1 for q in qualities if not q.is_exact)
    realised = statistics.mean(
        corrected_group_speedup(q, CORES, conflict_penalty=1.0)
        for q in qualities
    )
    true_bounds = statistics.mean(
        group_speedup_bound(
            CORES,
            account_tdg(executed).lcc_size
            / max(1, account_tdg(executed).num_transactions),
        )
        for executed in busy_blocks
    )
    print("1. approximate TDG from regular transactions only (§V-C):")
    print(f"   conflicting-pair recall: {mean_recall:.3f} "
          f"({imperfect}/{len(qualities)} blocks have hidden conflicts)")
    print(f"   mean speed-up: {realised:.2f}x realised vs {true_bounds:.2f}x "
          "with the full TDG — the approximation keeps most of the gain\n")

    # -- 2. inter-block concurrency (§VII) -----------------------------------
    speedups = sliding_window_speedups(
        busy_blocks[-16:], window=4, cores=64, model="account"
    )
    print("2. inter-block concurrency (window = 4 blocks, 64 cores):")
    print(f"   pipeline/interleaved speed-up: mean "
          f"{statistics.mean(speedups):.2f}x, max {max(speedups):.2f}x")
    print("   (hot exchange addresses chain blocks together, so account"
          " chains gain little — the paper's intra-block focus is right)\n")

    # -- 3. Verifier's Dilemma (§II-C) ----------------------------------------
    tdg = account_tdg(busy_blocks[-1])
    l = tdg.lcc_size / tdg.num_transactions
    speedup = group_speedup_bound(CORES, l)
    params = VerifierParams(
        execution_time=8.0, block_interval=14.0, invalid_rate=0.6
    )
    gain = security_gain_from_speedup(params, speedup)
    print("3. Verifier's Dilemma (exec 8s / interval 14s):")
    print(f"   last block's group rate l={l:.2f} -> speed-up "
          f"{speedup:.2f}x at {CORES} cores")
    print(f"   rational verifying fraction: "
          f"{gain.baseline_fraction:.2f} -> {gain.improved_fraction:.2f}")
    print("   cheaper execution measurably strengthens verification")


if __name__ == "__main__":
    main()
