"""Parallel execution engines vs. the paper's analytical models.

The paper predicts speed-ups analytically (§V) but builds no engine.
This example builds one synthetic Ethereum block, then actually
schedules it on a simulated multicore with four engines:

* sequential (today's clients),
* fully speculative two-phase execution (Saraph-Herlihy, Eq. 1),
* optimistic concurrency control with retries (Dickerson et al. style),
* TDG-informed group scheduling (Eq. 2's bound, made concrete).

Run:  python examples/parallel_execution.py
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.core.speedup import group_speedup_bound, speculative_speedup
from repro.core.tdg import account_tdg
from repro.execution import (
    GroupedExecutor,
    OCCExecutor,
    SequentialExecutor,
    SpeculativeExecutor,
    tasks_from_tdg,
)
from repro.workload import build_account_chain
from repro.workload.profiles import ETHEREUM

CORES = 8


def main() -> None:
    builder = build_account_chain(ETHEREUM, num_blocks=60, seed=9, scale=1.0)
    # Pick the fullest block of the run.
    block, executed = max(
        builder.executed_blocks, key=lambda pair: len(pair[1])
    )
    tdg = account_tdg(executed)
    x = tdg.num_transactions
    c = tdg.num_conflicted / x
    l = tdg.lcc_size / x
    print(
        f"block {block.height}: {x} transactions, "
        f"{len(tdg.groups)} dependency groups, "
        f"conflict rate c={c:.2f}, group rate l={l:.2f}"
    )

    tasks = tasks_from_tdg(tdg)
    engines = [
        SequentialExecutor(),
        SpeculativeExecutor(cores=CORES),
        OCCExecutor(cores=CORES),
        GroupedExecutor(cores=CORES),
    ]
    rows = []
    for engine in engines:
        report = engine.run(tasks)
        rows.append(
            (
                report.executor,
                f"{report.wall_time:.1f}",
                f"{report.speedup:.2f}x",
                report.reexecuted,
                report.aborts,
                report.rounds,
            )
        )
    print()
    print(
        render_table(
            ["engine", "wall time", "speed-up", "re-executed", "aborts",
             "rounds"],
            rows,
            title=f"Simulated execution on {CORES} cores",
        )
    )

    print()
    print("analytical predictions for this block:")
    print(f"  Eq. 1 (speculative):  {speculative_speedup(x, CORES, c):.2f}x")
    print(f"  Eq. 2 (group bound):  {group_speedup_bound(CORES, l):.2f}x")


if __name__ == "__main__":
    main()
