"""The paper's data pipeline end to end, BigQuery stand-in included.

Reproduces §III-B/C's methodology against synthetic chains:

1. export a Bitcoin-style ledger into BigQuery-shaped tables;
2. run the Python port of the paper's SQL + ``process_graph`` UDF
   (Figs. 2-3) to get per-block conflict metrics;
3. round-trip the dataset through CSV files (the Zilliqa export path);
4. collect a Zilliqa chain through the simulated two-phase SDK client
   at 4 requests/second and query the collected store.

Run:  python examples/bigquery_style_analysis.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.datasets import (
    DatasetStore,
    SimulatedZilliqaNode,
    ZilliqaCollector,
    export_utxo_ledger,
    query_account_conflicts,
    query_utxo_conflicts,
)
from repro.workload import build_account_chain, build_utxo_chain
from repro.workload.profiles import BITCOIN, ZILLIQA


def main() -> None:
    # -- Bitcoin via the BigQuery-style path ---------------------------------
    ledger = build_utxo_chain(BITCOIN, num_blocks=50, seed=3, scale=0.05)
    store = export_utxo_ledger(ledger, chain="bitcoin")
    print(
        f"exported bitcoin: {store.count('blocks')} blocks, "
        f"{store.count('utxo_transactions')} transactions, "
        f"{store.count('utxo_inputs')} input rows"
    )

    rows = query_utxo_conflicts(store)
    busy = [row for row in rows if row.num_transactions >= 10]
    if busy:
        mean_single = sum(r.single_conflict_rate for r in busy) / len(busy)
        mean_group = sum(r.group_conflict_rate for r in busy) / len(busy)
        print(
            f"process_graph over {len(busy)} busy blocks: "
            f"single {100 * mean_single:.1f}%, group {100 * mean_group:.1f}%"
        )

    # -- CSV round trip -------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        written = store.export_csv(tmp)
        print(f"wrote {len(written)} CSV tables to {Path(tmp).name}/")
        reloaded = DatasetStore.import_csv("bitcoin", tmp)
        assert reloaded.count("utxo_inputs") == store.count("utxo_inputs")
        print("CSV round-trip verified")

    # -- Zilliqa via the simulated SDK client --------------------------------
    builder = build_account_chain(ZILLIQA, num_blocks=25, seed=3)
    node = SimulatedZilliqaNode(
        executed_blocks=builder.executed_blocks, requests_per_second=4.0
    )
    collector = ZilliqaCollector(node=node)
    zilliqa_store = collector.collect()
    print(
        f"zilliqa collected through {node.request_count} RPC calls "
        f"(~{collector.estimated_duration():.0f}s at 4 rps simulated)"
    )
    zil_rows = query_account_conflicts(zilliqa_store)
    busy = [row for row in zil_rows if row.num_transactions >= 4]
    if busy:
        mean_single = sum(r.single_conflict_rate for r in busy) / len(busy)
        print(
            f"zilliqa single-transaction conflict rate: "
            f"{100 * mean_single:.1f}% (paper: high, workload-driven)"
        )


if __name__ == "__main__":
    main()
