"""Quickstart: measure blockchain transaction concurrency in ~40 lines.

Builds a small synthetic Ethereum history, computes the paper's two
concurrency metrics for every block, and turns them into predicted
execution speed-ups (Eqs. 1 and 2 of Reijsbergen & Dinh, ICDCS 2020).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.report import format_rate, format_speedup
from repro.core.speedup import group_speedup_bound, speculative_speedup
from repro.workload import generate_chain


def main() -> None:
    # 1. Build and analyze a synthetic Ethereum chain (120 blocks
    #    sampling 2015-2019; deterministic under the seed).
    chain = generate_chain("ethereum", num_blocks=120, seed=1)
    records = chain.history.non_empty_records()
    print(f"built {len(chain.history)} blocks, "
          f"{sum(r.num_transactions for r in records)} transactions, "
          f"{sum(r.num_internal for r in records)} internal transactions")

    # 2. Concurrency metrics (paper §III-A): weighted means over the
    #    most recent third of the history.
    tail = records[-len(records) // 3:]
    weight = sum(r.weight_tx for r in tail)
    single = sum(
        r.metrics.single_conflict_rate * r.weight_tx for r in tail
    ) / weight
    group = sum(
        r.metrics.group_conflict_rate * r.weight_tx for r in tail
    ) / weight
    mean_txs = sum(r.num_transactions for r in tail) / len(tail)
    print(f"single-transaction conflict rate: {format_rate(single)}")
    print(f"group conflict rate (rel. LCC):   {format_rate(group)}")

    # 3. Predicted execution speed-ups (paper §V).
    for cores in (4, 8, 64):
        eq1 = speculative_speedup(int(mean_txs), cores, single)
        eq2 = group_speedup_bound(cores, group)
        print(
            f"{cores:3d} cores: speculative (Eq. 1) "
            f"{format_speedup(eq1)},  group bound (Eq. 2) "
            f"{format_speedup(eq2)}"
        )


if __name__ == "__main__":
    main()
