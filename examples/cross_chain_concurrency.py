"""Cross-chain concurrency survey: the paper's §IV at example scale.

Builds all seven synthetic blockchains, prints Table I, and compares
their conflict rates — reproducing the paper's three headline findings:

1. UTXO-based chains have more concurrency than account-based ones;
2. group conflict rates sit well below single-transaction rates;
3. chains with more transactions per block (Ethereum vs. Ethereum
   Classic, Bitcoin vs. Bitcoin Cash) can show *less* conflict.

Run:  python examples/cross_chain_concurrency.py
"""

from __future__ import annotations

from repro.analysis.report import format_rate, render_table, render_table1
from repro.workload import ALL_PROFILES, generate_all_chains


def weighted_rate(history, metric: str) -> float:
    records = history.non_empty_records()
    weight = sum(r.weight_tx for r in records)
    if weight == 0:
        return 0.0
    return sum(
        getattr(r.metrics, metric) * r.weight_tx for r in records
    ) / weight


def main() -> None:
    print(render_table1(ALL_PROFILES))
    print()

    print("building all seven chains (this takes a few seconds)...")
    chains = generate_all_chains(num_blocks=80, seed=5, scale=0.5)

    rows = []
    for profile in ALL_PROFILES:
        history = chains[profile.name].history
        rows.append(
            (
                profile.display_name,
                profile.data_model,
                f"{history.mean_transactions_per_block():8.1f}",
                format_rate(weighted_rate(history, "single_conflict_rate")),
                format_rate(weighted_rate(history, "group_conflict_rate")),
            )
        )
    print()
    print(
        render_table(
            ["chain", "model", "mean txs", "single conflict",
             "group conflict"],
            rows,
            title="Concurrency survey (cf. paper Fig. 7)",
        )
    )

    utxo = [r for r in rows if r[1] == "utxo"]
    account = [r for r in rows if r[1] == "account"]
    print()
    print("findings:")
    print(
        "  1. every UTXO chain's single-tx conflict rate "
        f"(max {max(r[3] for r in utxo)}) is below every account "
        f"chain's (min {min(r[3] for r in account)})"
    )
    eth = next(r for r in rows if r[0] == "Ethereum")
    etc = next(r for r in rows if r[0] == "Ethereum Classic")
    print(
        f"  2. Ethereum: single {eth[3]} vs group {eth[4]} — group "
        "concurrency is the larger opportunity"
    )
    print(
        f"  3. Ethereum carries ~{float(eth[2]) / max(float(etc[2]), 0.1):.0f}x "
        f"Ethereum Classic's load yet has the lower group rate "
        f"({eth[4]} vs {etc[4]})"
    )


if __name__ == "__main__":
    main()
