"""Measurement rigour: confidence intervals and compact trend views.

The paper reports weighted means; this example adds the uncertainty a
careful reader wants: bootstrap confidence intervals for each chain's
conflict rates, a significance check for the paper's §IV-C ordering
claims, and sparkline trend views of the historical series.

Run:  python examples/uncertainty_report.py
"""

from __future__ import annotations

from repro.analysis.figures import conflict_series
from repro.analysis.report import render_sparkline, render_table
from repro.analysis.stats import difference_ci, metric_ci
from repro.workload.generator import generate_all_chains

CHAINS = ("bitcoin", "bitcoin_cash", "ethereum", "ethereum_classic")


def main() -> None:
    print("building chains...")
    survey = generate_all_chains(
        num_blocks=70, seed=13, scale=0.4, names=CHAINS
    )

    # -- per-chain CIs ------------------------------------------------------------
    rows = []
    for name in CHAINS:
        history = survey[name].history
        single = metric_ci(
            history,
            lambda r: r.metrics.single_conflict_rate,
            resamples=400,
        )
        group = metric_ci(
            history,
            lambda r: r.metrics.group_conflict_rate,
            resamples=400,
        )
        rows.append(
            (
                name,
                f"{single.point:.3f} [{single.low:.3f}, {single.high:.3f}]",
                f"{group.point:.3f} [{group.low:.3f}, {group.high:.3f}]",
            )
        )
    print()
    print(render_table(
        ["chain", "single conflict (95% CI)", "group conflict (95% CI)"],
        rows,
        title="Conflict rates with bootstrap confidence intervals",
    ))

    # -- ordering claims -----------------------------------------------------------
    print()
    print("ordering claims (95% CI of the difference; >0 = significant):")
    for left, right, label in (
        ("ethereum", "bitcoin", "ETH above BTC (§IV-A)"),
        ("bitcoin_cash", "bitcoin", "BCH above BTC (§IV-C)"),
        ("ethereum_classic", "ethereum", "ETC above ETH (§IV-C)"),
    ):
        ci = difference_ci(
            survey[left].history,
            survey[right].history,
            lambda r: r.metrics.single_conflict_rate,
            resamples=400,
        )
        verdict = "significant" if ci.low > 0 else "not significant"
        print(f"  {label}: diff {ci.point:+.3f} "
              f"[{ci.low:+.3f}, {ci.high:+.3f}] -> {verdict}")

    # -- sparkline trends -----------------------------------------------------------
    print()
    print("historical trends (single conflict rate, tx-weighted, 0..1):")
    for name in CHAINS:
        series = conflict_series(
            survey[name].history, metric="single", num_buckets=24
        ).series["tx_weighted"]
        print(" ", render_sparkline(
            series, label=f"{name:17s}", low=0.0, high=1.0
        ))


if __name__ == "__main__":
    main()
