"""Extensions: intra-transaction concurrency and sharded-epoch scaling.

Two more of the paper's open threads, measured:

* §VII lists *intra-transaction* concurrency as an unexplored source:
  we reconstruct call trees from the synthetic Ethereum blocks' traces
  and measure the work/critical-path ratio inside transactions;
* §II-B notes Zilliqa "needs to wait for state synchronization between
  committees": the shard sweep shows the resulting throughput plateau,
  and how intra-committee execution speed-ups (§II-C) shift it.
"""

from __future__ import annotations

from _common import get_chain, write_output

from repro.analysis.report import render_table
from repro.core.intratx import block_intra_tx_potential
from repro.sharding.epochs import EpochCosts, shard_sweep


def test_intratx_concurrency(benchmark):
    chain = get_chain("ethereum")
    blocks = [
        executed
        for _block, executed in chain.account_builder.executed_blocks
        if sum(1 for i in executed if not i.is_coinbase) >= 30
    ][-30:]
    assert blocks

    potentials = benchmark(
        lambda: [block_intra_tx_potential(executed) for executed in blocks]
    )
    mean_potential = sum(potentials) / len(potentials)
    write_output(
        "intratx",
        render_table(
            ["statistic", "value"],
            [
                ("blocks analysed", len(blocks)),
                ("mean intra-tx speed-up potential",
                 f"{mean_potential:.2f}x"),
                ("max block potential", f"{max(potentials):.2f}x"),
                ("min block potential", f"{min(potentials):.2f}x"),
            ],
            title="Intra-transaction concurrency (work / critical path)",
        ),
    )
    # Multi-call apps put real parallelism inside transactions; pure
    # transfers put none.  The mean sits between.
    assert 1.0 < mean_potential < 5.0
    assert all(p >= 1.0 - 1e-12 for p in potentials)


def test_sharded_epoch_scaling(benchmark):
    shard_counts = [1, 2, 4, 8, 16, 32]

    def run():
        base = shard_sweep(
            total_txs=20_000,
            shard_counts=shard_counts,
            costs=EpochCosts(execution_speedup=1.0),
        )
        sped = shard_sweep(
            total_txs=20_000,
            shard_counts=shard_counts,
            costs=EpochCosts(execution_speedup=5.0),
        )
        return base, sped

    base, sped = benchmark(run)
    write_output(
        "sharded_epochs",
        render_table(
            ["shards", "epoch time (1x)", "tput (1x)",
             "epoch time (5x exec)", "tput (5x exec)"],
            [
                (
                    shards,
                    f"{t1:.2f}s",
                    f"{tp1:,.0f} tx/s",
                    f"{t5:.2f}s",
                    f"{tp5:,.0f} tx/s",
                )
                for (shards, t1, tp1), (_s, t5, tp5) in zip(base, sped)
            ],
            title=(
                "Sharded epoch scaling: throughput plateaus on state "
                "sync; execution speed-ups lift the whole curve"
            ),
        ),
    )

    base_tp = [tp for _s, _t, tp in base]
    sped_tp = [tp for _s, _t, tp in sped]
    # Scaling plateaus (diminishing returns by the last doubling).
    assert base_tp[1] / base_tp[0] > base_tp[-1] / base_tp[-2]
    # Execution speed-ups help at every shard count.
    assert all(s > b for b, s in zip(base_tp, sped_tp))
