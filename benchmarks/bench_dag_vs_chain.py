"""Extension: how pessimistic is Eq. 2's sequential-LCC assumption?

The paper bounds group speed-up by ``min(n, 1/l)``, treating each
connected component as strictly sequential.  The true constraint is
the dependency *partial order* inside the component.  This bench
schedules blocks under both models — components-as-chains (Eq. 2's
basis, LPT-scheduled) vs. the true dependency DAG — and reports the
DAG's gain:

* on real synthetic-history blocks the two mostly agree: Bitcoin's
  intra-block components are sweep *chains* (genuinely sequential) and
  Ethereum's are shared-balance fan-ins (also genuinely sequential), so
  the paper's assumption is tight for the dominant structures;
* on fan-out-shaped components (batch payout spent within the block —
  tree, not chain) the chain model is badly pessimistic: LCC 25 but
  critical path 2.
"""

from __future__ import annotations

import statistics

from _common import get_chain, write_output

from repro.analysis.report import render_table
from repro.core.scheduling import scheduled_speedup
from repro.core.tdg import account_tdg, utxo_tdg
from repro.execution.dag import account_dag, utxo_dag
from repro.utxo.transaction import TxOutputSpec, make_coinbase, make_transaction
from repro.utxo.txo import COIN

CORES = 64


def _utxo_blocks():
    from repro.workload.profiles import BITCOIN
    from repro.workload.utxo_workload import build_utxo_chain

    ledger = build_utxo_chain(BITCOIN, num_blocks=40, seed=21, scale=0.12)
    return [list(block.transactions) for block in ledger][-16:]


def _account_blocks():
    chain = get_chain("ethereum")
    return [
        executed
        for _block, executed in chain.account_builder.executed_blocks
        if sum(1 for i in executed if not i.is_coinbase) >= 40
    ][-16:]


def _fanout_block(width=24):
    """A batch payout fanned out and respent within the same block."""
    cb = make_coinbase(reward=width * 10 * COIN, miner="m", height=0)
    fanout = make_transaction(
        inputs=[cb.outputs[0].outpoint],
        outputs=[
            TxOutputSpec(value=10 * COIN, owner=f"u{i}")
            for i in range(width)
        ],
        nonce="payout",
    )
    children = [
        make_transaction(
            inputs=[fanout.outputs[i].outpoint],
            outputs=[TxOutputSpec(value=10 * COIN, owner=f"m{i}")],
            nonce=("spend", i),
        )
        for i in range(width)
    ]
    return [cb, fanout, *children]


def test_dag_vs_chain_model(benchmark):
    utxo_blocks = _utxo_blocks()
    account_blocks = _account_blocks()
    assert utxo_blocks and account_blocks

    def run():
        utxo_pairs = []
        for block in utxo_blocks:
            tdg = utxo_tdg(block)
            if tdg.num_transactions == 0:
                continue
            chain = scheduled_speedup(
                [float(s) for s in tdg.group_sizes()], CORES, policy="lpt"
            )
            utxo_pairs.append((utxo_dag(block).speedup(CORES), chain))
        account_pairs = []
        for executed in account_blocks:
            tdg = account_tdg(executed)
            chain = scheduled_speedup(
                [float(s) for s in tdg.group_sizes()], CORES, policy="lpt"
            )
            account_pairs.append(
                (account_dag(executed).speedup(CORES), chain)
            )
        return utxo_pairs, account_pairs

    utxo_pairs, account_pairs = benchmark(run)

    fanout = _fanout_block()
    fanout_tdg = utxo_tdg(fanout)
    fanout_chain = scheduled_speedup(
        [float(s) for s in fanout_tdg.group_sizes()], CORES, policy="lpt"
    )
    fanout_dag = utxo_dag(fanout).speedup(CORES)

    def mean_gain(pairs):
        return statistics.mean(dag / chain for dag, chain in pairs)

    write_output(
        "dag_vs_chain",
        render_table(
            ["workload", "blocks", "chain-model speed-up",
             "DAG speed-up", "DAG gain"],
            [
                (
                    "bitcoin (real blocks)",
                    len(utxo_pairs),
                    f"{statistics.mean(c for _d, c in utxo_pairs):.2f}x",
                    f"{statistics.mean(d for d, _c in utxo_pairs):.2f}x",
                    f"{mean_gain(utxo_pairs):.2f}x",
                ),
                (
                    "ethereum (real blocks)",
                    len(account_pairs),
                    f"{statistics.mean(c for _d, c in account_pairs):.2f}x",
                    f"{statistics.mean(d for d, _c in account_pairs):.2f}x",
                    f"{mean_gain(account_pairs):.2f}x",
                ),
                (
                    "fan-out component (25 txs)",
                    1,
                    f"{fanout_chain:.2f}x",
                    f"{fanout_dag:.2f}x",
                    f"{fanout_dag / fanout_chain:.2f}x",
                ),
            ],
            title=(
                "Sequential-LCC chain model vs. true dependency DAG "
                f"({CORES} cores, both LPT/list scheduled)"
            ),
        ),
    )

    # On real blocks the DAG never schedules *worse* than the chain
    # model (same components, weaker constraints) up to dispatch noise.
    for dag, chain in utxo_pairs + account_pairs:
        assert dag >= chain * 0.9
    # On the fan-out structure the chain model is badly pessimistic.
    assert fanout_tdg.lcc_size == 25
    assert fanout_dag > 5 * fanout_chain
