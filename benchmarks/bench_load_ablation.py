"""Ablation: load vs. conflict at a *fixed* user base (§IV-C's logic).

The paper's §IV-C reasons: "if the size of the user base is similar,
then a higher number of transactions per block means that the
probability that two transactions conflict is higher.  However, since
this does not appear to be the case [for ETH vs. ETC], this must mean
that the user base for Ethereum Classic is relatively smaller."

That argument rests on an unstated premise — conflict rises with load
when the user base is held fixed — which this bench verifies directly:
the same Ethereum-Classic-like population is driven at 1x to 16x its
transaction volume, and both conflict metrics rise monotonically (up to
sampling noise).  Combined with Fig. 8's observation (ETH: more load,
*less* conflict), the paper's inference follows.
"""

from __future__ import annotations

from _common import write_output

from repro.analysis.report import render_table
from repro.workload.generator import generate_chain

SCALES = (1.0, 2.0, 4.0, 8.0, 16.0)


def _rates_at_scale(scale: float):
    chain = generate_chain(
        "ethereum_classic", num_blocks=60, seed=31, scale=scale
    )
    records = [
        r for r in chain.history.non_empty_records()
        if r.num_transactions >= 3
    ]
    weight = sum(r.weight_tx for r in records)
    single = sum(
        r.metrics.single_conflict_rate * r.weight_tx for r in records
    ) / weight
    group = sum(
        r.metrics.group_conflict_rate * r.weight_tx for r in records
    ) / weight
    mean_txs = sum(r.num_transactions for r in records) / len(records)
    return mean_txs, single, group


def test_load_vs_conflict_fixed_user_base(benchmark):
    results = benchmark.pedantic(
        lambda: [_rates_at_scale(scale) for scale in SCALES],
        rounds=1,
        iterations=1,
    )
    write_output(
        "load_ablation",
        render_table(
            ["volume scale", "mean txs/block", "single rate", "group rate"],
            [
                (f"{scale:g}x", f"{txs:.1f}", f"{single:.3f}", f"{group:.3f}")
                for scale, (txs, single, group) in zip(SCALES, results)
            ],
            title=(
                "Load vs. conflict at a fixed user base "
                "(Ethereum-Classic-like population)"
            ),
        ),
    )

    single_rates = [single for _txs, single, _group in results]
    # The premise §IV-C relies on: at a fixed user base, more load means
    # more single-tx conflict.  Allow small non-monotonic jitter but
    # require a clear overall rise.
    assert single_rates[-1] > single_rates[0] + 0.03
    assert all(
        later >= earlier - 0.05
        for earlier, later in zip(single_rates, single_rates[1:])
    )
    # Load itself must actually have risen across the sweep.
    loads = [txs for txs, _s, _g in results]
    assert loads[-1] > 8 * loads[0]
