"""Ablations over the design choices DESIGN.md calls out.

1. Component algorithm: the paper's BFS (Fig. 3) vs. union-find —
   identical partitions, different cost profiles.
2. Conflict definition: address-level TDG (this paper) vs.
   storage-location level (ref. [17]) — the §III-A5 comparison: the
   address level reports *more* single-tx conflicts, yet its group
   structure yields more exploitable concurrency than [17]'s
   sequential-bin approach.
3. Weighting: unweighted vs. tx-count vs. gas weighting of the
   historical series.
4. Scheduling policy: list vs. LPT vs. the Eq. 2 bound on real
   component-size distributions.
"""

from __future__ import annotations

from _common import get_chain, write_output

from repro.analysis.report import render_table
from repro.core.aggregation import bucketize
from repro.core.components import (
    build_adjacency,
    components_as_partition,
    connected_components_bfs,
    connected_components_union_find,
)
from repro.core.scheduling import scheduled_speedup
from repro.core.speedup import group_speedup_bound, speculative_speedup
from repro.core.tdg import account_tdg, storage_conflict_groups


def _ethereum_blocks(min_txs=20, limit=30):
    chain = get_chain("ethereum")
    out = []
    for block, executed in chain.account_builder.executed_blocks:
        regular = [item for item in executed if not item.is_coinbase]
        if len(regular) >= min_txs:
            out.append(executed)
        if len(out) >= limit:
            break
    return out


def _edge_list(executed):
    edges = []
    for item in executed:
        if not item.is_coinbase:
            edges.extend(item.edges())
    return edges


def test_ablation_components_algorithms(benchmark):
    """BFS and union-find agree on every real block's partition."""
    blocks = _ethereum_blocks()
    adjacencies = [build_adjacency([], _edge_list(b)) for b in blocks]

    def run_bfs():
        return [connected_components_bfs(a) for a in adjacencies]

    bfs_results = benchmark(run_bfs)
    for adjacency, bfs in zip(adjacencies, bfs_results):
        dsu = connected_components_union_find(adjacency)
        assert components_as_partition(bfs) == components_as_partition(dsu)


def test_ablation_union_find(benchmark):
    """Union-find timing counterpart of the BFS ablation."""
    blocks = _ethereum_blocks()
    adjacencies = [build_adjacency([], _edge_list(b)) for b in blocks]
    results = benchmark(
        lambda: [connected_components_union_find(a) for a in adjacencies]
    )
    assert len(results) == len(adjacencies)


def test_ablation_conflict_definitions(benchmark):
    """Address-level (ours) vs. storage-level (ref. [17]) definitions."""
    blocks = _ethereum_blocks()

    def run():
        rows = []
        for executed in blocks:
            address_level = account_tdg(executed)
            storage_level = storage_conflict_groups(executed)
            rows.append((address_level, storage_level))
        return rows

    rows = benchmark(run)
    table = []
    cores = 8
    for address_level, storage_level in rows:
        x = address_level.num_transactions
        c_addr = address_level.num_conflicted / x
        c_store = storage_level.num_conflicted / x
        # [17]'s technique: conflicted bin is sequential (Eq. 1);
        # ours: group scheduling over address-level components (Eq. 2).
        herlihy = speculative_speedup(x, cores, c_store)
        ours = group_speedup_bound(cores, address_level.lcc_size / x)
        table.append(
            (x, f"{c_addr:.2f}", f"{c_store:.2f}",
             f"{herlihy:.2f}", f"{ours:.2f}")
        )
        # §III-A5: storage-level finds fewer (or equal) conflicts.
        assert storage_level.num_conflicted <= address_level.num_conflicted

    write_output(
        "ablation_conflict_definitions",
        render_table(
            ["x", "c (address)", "c (storage, [17])",
             "speedup [17] (Eq.1)", "speedup ours (Eq.2)"],
            table,
            title="Conflict-definition ablation (8 cores)",
        ),
    )
    # Despite counting more conflicts, group concurrency extracts more
    # speed-up on average (the paper's §III-A5 and §VI claim).
    mean_herlihy = sum(float(r[3]) for r in table) / len(table)
    mean_ours = sum(float(r[4]) for r in table) / len(table)
    assert mean_ours > mean_herlihy


def test_ablation_weighting(benchmark):
    """Unweighted vs. tx-weighted vs. gas-weighted bucket averages."""
    history = get_chain("ethereum").history
    records = history.non_empty_records()

    def run():
        unweighted = bucketize(
            records, num_buckets=12,
            value=lambda r: r.metrics.single_conflict_rate,
        )
        tx_weighted = bucketize(
            records, num_buckets=12,
            value=lambda r: r.metrics.single_conflict_rate,
            weight=lambda r: r.weight_tx,
        )
        gas_weighted = bucketize(
            records, num_buckets=12,
            value=lambda r: r.metrics.weighted_single_conflict_rate,
            weight=lambda r: r.weight_gas,
        )
        return unweighted, tx_weighted, gas_weighted

    unweighted, tx_weighted, gas_weighted = benchmark(run)
    write_output(
        "ablation_weighting",
        render_table(
            ["bucket", "unweighted", "tx-weighted", "gas-weighted"],
            [
                (i, f"{u:.3f}", f"{t:.3f}", f"{g:.3f}")
                for i, (u, t, g) in enumerate(
                    zip(unweighted.values, tx_weighted.values,
                        gas_weighted.values)
                )
            ],
            title="Weighting ablation: Ethereum single conflict rate",
        ),
    )
    # Gas weighting must sit below tx weighting (§IV-A's observation).
    assert gas_weighted.overall_mean < tx_weighted.overall_mean


def test_ablation_scheduling_policies(benchmark):
    """List vs. LPT vs. the Eq. 2 bound on real group-size profiles."""
    blocks = _ethereum_blocks()
    profiles = [account_tdg(executed).group_sizes() for executed in blocks]
    cores = 8

    def run():
        rows = []
        for sizes in profiles:
            listed = scheduled_speedup(sizes, cores, policy="list")
            lpt = scheduled_speedup(sizes, cores, policy="lpt")
            total = sum(sizes)
            bound = group_speedup_bound(
                cores, max(sizes) / total if total else 1.0
            )
            rows.append((sum(sizes), listed, lpt, bound))
        return rows

    rows = benchmark(run)
    write_output(
        "ablation_scheduling",
        render_table(
            ["x", "list", "LPT", "Eq.2 bound"],
            [
                (x, f"{listed:.2f}", f"{lpt:.2f}", f"{bound:.2f}")
                for x, listed, lpt, bound in rows
            ],
            title="Scheduling-policy ablation (8 cores)",
        ),
    )
    for _x, listed, lpt, bound in rows:
        assert lpt <= bound + 1e-9
        assert lpt + 1e-9 >= listed * 0.99  # LPT at least competitive
