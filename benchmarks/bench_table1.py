"""Table I: comparison of the seven public blockchains.

Regenerates the paper's Table I from the profile catalogue and checks
its content, timing the (trivial) rendering plus a substrate
self-description pass that touches every chain's workload machinery.
"""

from __future__ import annotations

from _common import write_output

from repro.analysis.report import render_table, render_table1
from repro.workload.profiles import ALL_PROFILES


def _extended_rows():
    rows = []
    for profile in ALL_PROFILES:
        late = profile.eras[-1]
        rows.append(
            (
                profile.display_name,
                profile.data_model,
                profile.consensus,
                "Yes" if profile.smart_contracts else "No",
                profile.data_source,
                f"{late.mean_txs_per_block:.0f}",
                f"{late.num_users}",
            )
        )
    return rows


def test_table1(benchmark):
    text = benchmark(render_table1, ALL_PROFILES)
    extended = render_table(
        ["Blockchain", "Model", "Consensus", "Contracts", "Source",
         "late tx/blk", "late users"],
        _extended_rows(),
        title="Table I (extended with calibration targets)",
    )
    write_output("table1", text + "\n\n" + extended)

    assert "Bitcoin" in text and "Zilliqa" in text
    # Table I's structure: 4 UTXO rows, 3 account rows, one sharded.
    assert sum(p.data_model == "utxo" for p in ALL_PROFILES) == 4
    assert sum(p.smart_contracts for p in ALL_PROFILES) == 3
    assert sum(p.consensus == "PoW+Sharding" for p in ALL_PROFILES) == 1
