"""Extension (§II-C): speed-ups strengthen verification incentives.

The paper's third motivation: cheaper execution weakens the Verifier's
Dilemma.  This bench closes the loop quantitatively — it takes the
group-concurrency speed-ups measured on the synthetic Ethereum history
(Fig. 10b's model) and maps them through the rational-verification game
to the equilibrium fraction of verifying hashpower and the survival
probability of invalid blocks.
"""

from __future__ import annotations

from _common import get_chain, write_output

from repro.analysis.figures import conflict_series
from repro.analysis.report import render_table
from repro.core.speedup import group_speedup_bound
from repro.economics.verifier import (
    VerifierParams,
    invalid_block_survival,
    security_gain_from_speedup,
    verification_equilibrium,
)

# Ethereum-flavoured game: ~8s to execute a block sequentially against
# a ~14s block interval is the regime where the dilemma bites.
BASE_PARAMS = VerifierParams(
    execution_time=8.0,
    block_interval=14.0,
    invalid_rate=0.6,
    penalty=0.0,
)
CORES = 8


def test_verifier_dilemma(benchmark):
    history = get_chain("ethereum").history
    group = conflict_series(history, metric="group", num_buckets=12)
    series = group.series["tx_weighted"]

    def run():
        rows = []
        for year, l in zip(series.positions, series.values):
            speedup = group_speedup_bound(CORES, min(1.0, l))
            gain = security_gain_from_speedup(BASE_PARAMS, speedup)
            rows.append((year, l, speedup, gain))
        return rows

    rows = benchmark(run)
    table = [
        (
            f"{year:.2f}",
            f"{l:.3f}",
            f"{speedup:.2f}x",
            f"{gain.baseline_fraction:.3f}",
            f"{gain.improved_fraction:.3f}",
            f"{invalid_block_survival(BASE_PARAMS, gain.improved_fraction):.4f}",
        )
        for year, l, speedup, gain in rows
    ]
    write_output(
        "verifier_dilemma",
        render_table(
            ["year", "group rate l", "speed-up (Eq. 2)",
             "verifying frac (1x)", "verifying frac (sped up)",
             "invalid survival (sped up)"],
            table,
            title=(
                "Verifier's Dilemma under execution speed-ups "
                f"({CORES} cores; exec 8s / interval 14s / "
                f"invalid pressure {BASE_PARAMS.invalid_rate})"
            ),
        ),
    )

    baseline = verification_equilibrium(BASE_PARAMS)
    for _year, _l, speedup, gain in rows:
        # Speed-ups never reduce the verifying fraction.
        assert gain.improved_fraction >= baseline - 1e-12
        assert gain.improved_fraction >= gain.baseline_fraction - 1e-12
    # As concurrency grows over Ethereum's history (l falls), the
    # security gain from exploiting it grows too.
    final_gain = rows[-1][3]
    first_gain = rows[0][3]
    assert final_gain.improved_fraction >= first_gain.improved_fraction
