"""Pytest wiring for the benchmark harness (see _common.py)."""

from __future__ import annotations

import pytest

from _common import get_chain, write_metrics_snapshot

from repro import obs


@pytest.fixture(scope="session")
def chains():
    """Accessor for cached bench chains."""
    return get_chain


@pytest.fixture
def obs_session(request):
    """Recording instrumentation around one bench.

    Yields the active :class:`repro.obs.ObservabilityState`; on teardown
    the registry snapshot lands in ``benchmarks/output/metrics/`` named
    after the test, so every bench emits its metrics alongside its
    timing output.
    """
    with obs.instrumented() as state:
        yield state
    write_metrics_snapshot(request.node.name, state.registry)
