"""Pytest wiring for the benchmark harness (see _common.py)."""

from __future__ import annotations

import pytest

from _common import get_chain


@pytest.fixture(scope="session")
def chains():
    """Accessor for cached bench chains."""
    return get_chain
