"""Shared helpers for the per-figure benchmark harness.

Every bench regenerates one paper table or figure: it builds the needed
synthetic chains (cached at session scope — several figures share the
same chains), times the analysis code with pytest-benchmark, and writes
the rendered table/series to ``benchmarks/output/<name>.txt`` so the
reproduced numbers can be inspected and diffed.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
import resource
import sys
import time
from functools import lru_cache
from pathlib import Path

import pytest

from repro import obs
from repro.workload.generator import GeneratedChain, generate_chain

OUTPUT_DIR = Path(__file__).parent / "output"
METRICS_DIR = OUTPUT_DIR / "metrics"

# Per-chain (num_blocks, scale) used by the benches: enough volume for
# stable rates while keeping the full harness under a few minutes.
BENCH_SHAPES = {
    "bitcoin": (140, 0.5),
    "bitcoin_cash": (120, 1.0),
    "litecoin": (120, 1.0),
    "dogecoin": (120, 1.0),
    "ethereum": (160, 1.0),
    "ethereum_classic": (160, 1.0),
    "zilliqa": (120, 1.0),
}

BENCH_SEED = 2020  # the paper's year


@lru_cache(maxsize=None)
def get_chain(name: str) -> GeneratedChain:
    """Build (once per session) the bench instance of chain *name*."""
    num_blocks, scale = BENCH_SHAPES[name]
    return generate_chain(
        name, num_blocks=num_blocks, seed=BENCH_SEED, scale=scale
    )


def write_output(name: str, text: str) -> Path:
    """Persist rendered bench output under benchmarks/output/."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def peak_rss_bytes() -> int:
    """This process's peak resident set size, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS — normalise
    so snapshot consumers never have to care which CI runner produced
    the file.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak if sys.platform == "darwin" else peak * 1024


def write_metrics_snapshot(
    name: str, registry: obs.MetricsRegistry | None = None
) -> Path:
    """Persist a metrics snapshot under benchmarks/output/metrics/.

    With no explicit *registry* the currently installed one is dumped —
    pair with the ``obs_session`` fixture, which installs a recording
    registry around the bench body so every bench can emit the
    instrumentation counters alongside its timing output.

    The file is deterministic apart from the ``captured_at`` and
    ``peak_rss_bytes`` fields: keys are sorted, the chains are seeded,
    and the metrics are reduced with
    :func:`repro.obs.regress.deterministic_metrics` (real wall-clock
    histograms keep only their observation counts), so two runs of the
    same bench diff clean except for the timestamp and memory lines.
    """
    from repro.obs.regress import deterministic_metrics

    registry = registry if registry is not None else obs.get_registry()
    METRICS_DIR.mkdir(parents=True, exist_ok=True)
    path = METRICS_DIR / f"{name}.json"
    payload = {
        "bench": name,
        "captured_at": time.time(),
        "peak_rss_bytes": peak_rss_bytes(),
        "metrics": deterministic_metrics(registry.snapshot()),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture(scope="session")
def chains():
    """Accessor for cached bench chains."""
    return get_chain
