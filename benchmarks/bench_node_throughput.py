"""Node-network throughput and observability-overhead bench.

Drives the :mod:`repro.node` runtime three ways and writes
``BENCH_node_throughput.json`` at the repo root (plus a text summary
under ``benchmarks/output/``):

1. **Sustained throughput** — a 4-node PBFT network over the real
   asyncio TCP loopback transport runs to height 5 with full
   observability installed; the headline is committed transactions per
   wall-clock second.  PBFT rather than PoW: one proposer per height
   means no forks ever race, so the wall-clock number measures the
   pipeline, not fork-luck.  Hosts that cannot bind a loopback
   socket (sandboxed CI) fall back to the virtual transport and say so
   in the JSON rather than failing the bench.
2. **Enabled-observability overhead ≤ 10%** — the identical *virtual*
   network (compute-bound: no real sleeps, so the ratio is pure
   instrumentation cost) with a live registry + lifecycle tracer vs
   the no-op observability state, interleaved min-of-N repeats, same
   budget as ``bench_lifecycle_trace.py``.
3. **Determinism** — two virtual runs of the same seed must produce
   byte-identical network fingerprints; the throughput numbers above
   are only trustworthy if the workload under them is pinned.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from _common import peak_rss_bytes, write_output

from repro import obs
from repro.node import NetworkConfig, NodeNetwork, network_fingerprint
from repro.obs.lifecycle import LifecycleTracer
from repro.obs.metrics import MetricsRegistry

BENCH_JSON = Path(__file__).resolve().parent.parent / (
    "BENCH_node_throughput.json"
)

SEED = 2020
OVERHEAD_BUDGET = 1.10
REPEATS = 4

TCP_CONFIG = dict(
    nodes=4, height=5, workload_blocks=5, scale=1.0, seed=SEED,
    consensus="pbft", block_interval=0.3, block_weight=4000,
    heartbeat=0.1, check_interval=0.05, max_sim_time=60.0,
)

VIRTUAL_CONFIG = NetworkConfig(
    nodes=3, height=3, workload_blocks=3, scale=1.0, seed=SEED,
)


def _run_virtual(instrument: bool) -> tuple[float, object]:
    started = time.perf_counter()
    if instrument:
        registry = MetricsRegistry()
        life = LifecycleTracer(registry=registry)
        with obs.instrumented(registry=registry, lifecycle=life):
            result = NodeNetwork(VIRTUAL_CONFIG).run()
    else:
        result = NodeNetwork(VIRTUAL_CONFIG).run()
    return time.perf_counter() - started, result


def _throughput_run() -> dict:
    """The TCP headline run, with a virtual fallback for jailed hosts."""
    registry = MetricsRegistry()
    life = LifecycleTracer(registry=registry)
    for transport in ("tcp", "virtual"):
        config = NetworkConfig(transport=transport, **TCP_CONFIG)
        started = time.perf_counter()
        try:
            with obs.instrumented(registry=registry, lifecycle=life):
                result = NodeNetwork(config).run()
        except OSError as exc:
            if transport == "tcp":
                fallback_reason = f"tcp bind failed: {exc}"
                continue
            raise
        wall = time.perf_counter() - started
        doc = {
            "transport": transport,
            "nodes": config.nodes,
            "consensus": config.consensus,
            "height": result.height,
            "reason": result.reason,
            "converged": result.converged,
            "roots_agree": result.roots_agree,
            "injected": result.injected,
            "committed": result.committed,
            "wall_seconds": round(wall, 4),
            "committed_tx_per_s": round(result.committed / wall, 2),
        }
        if transport == "virtual":
            doc["fallback_reason"] = fallback_reason
        return doc
    raise AssertionError("unreachable")  # pragma: no cover


def test_node_throughput_and_overhead():
    throughput = _throughput_run()
    assert throughput["converged"], throughput["reason"]
    assert throughput["roots_agree"]
    assert throughput["committed"] > 0

    # Interleaved E N E N ... so host drift hits both sides equally.
    enabled_times: list[float] = []
    noop_times: list[float] = []
    committed = None
    for _ in range(REPEATS):
        elapsed, result = _run_virtual(instrument=True)
        assert result.converged, result.reason
        enabled_times.append(elapsed)
        if committed is None:
            committed = result.committed
        elapsed, result = _run_virtual(instrument=False)
        assert result.committed == committed, (
            "obs must never change what the network commits"
        )
        noop_times.append(elapsed)
    overhead = min(enabled_times) / min(noop_times)
    assert overhead <= OVERHEAD_BUDGET, (
        f"enabled-observability overhead {overhead:.3f} exceeds the "
        f"{OVERHEAD_BUDGET:.2f} budget"
    )

    first = NodeNetwork(VIRTUAL_CONFIG).run()
    second = NodeNetwork(VIRTUAL_CONFIG).run()
    assert first.snapshot_dict() == second.snapshot_dict()
    fingerprint = network_fingerprint(first)
    assert fingerprint == network_fingerprint(second)

    doc = {
        "bench": "node_throughput",
        "seed": SEED,
        "python": platform.python_version(),
        "throughput": throughput,
        "overhead": {
            "budget": OVERHEAD_BUDGET,
            "ratio": round(overhead, 4),
            "enabled_seconds_min": round(min(enabled_times), 4),
            "noop_seconds_min": round(min(noop_times), 4),
            "repeats": REPEATS,
            "virtual_committed": committed,
        },
        "determinism": {
            "fingerprint": fingerprint,
            "runs_identical": True,
            "sim_seconds": round(first.sim_seconds, 6),
        },
        "peak_rss_bytes": peak_rss_bytes(),
    }
    BENCH_JSON.write_text(json.dumps(doc, indent=2) + "\n")

    write_output(
        "node_throughput",
        "\n".join([
            "node network throughput",
            f"  transport        {throughput['transport']}",
            f"  committed tx/s   {throughput['committed_tx_per_s']}",
            f"  committed        {throughput['committed']} "
            f"(injected {throughput['injected']})",
            f"  wall             {throughput['wall_seconds']} s",
            f"  obs overhead     {overhead:.3f}x "
            f"(budget {OVERHEAD_BUDGET:.2f}x)",
            f"  fingerprint      {fingerprint[:16]}",
        ]),
    )
