"""Fig. 7: conflict rates for all seven chains, grouped by data model.

Regenerates all four panels: single-transaction and group conflict
rates for the account-based chains (Ethereum, Ethereum Classic,
Zilliqa) and the UTXO-based chains (Bitcoin, Bitcoin Cash, Litecoin,
Dogecoin).  The benchmark times the bucketed-series construction across
all seven histories.

Shape target: every UTXO chain's rates sit below every account chain's
(the paper's first headline finding).
"""

from __future__ import annotations

from _common import get_chain, write_output

from repro.analysis.figures import figure7
from repro.analysis.report import render_series_table

ACCOUNT = ("ethereum", "ethereum_classic", "zilliqa")
UTXO = ("bitcoin", "bitcoin_cash", "litecoin", "dogecoin")


def _all_histories():
    return {name: get_chain(name).history for name in ACCOUNT + UTXO}


def test_fig7_all_chains(benchmark):
    histories = _all_histories()
    panels = benchmark(figure7, histories, num_buckets=16)

    out = []
    for metric in ("single", "group"):
        for family, names in (("account", ACCOUNT), ("utxo", UTXO)):
            subset = {
                name: panels[metric].series[name] for name in names
            }
            out.append(render_series_table(
                subset,
                title=f"Fig. 7 ({metric} conflict rate, {family}-based)",
            ))
    write_output("fig7_all_chains", "\n\n".join(out))

    def overall(name, metric):
        return panels[metric].series[name].overall_mean

    # Headline finding: more concurrency in UTXO chains than account chains.
    for metric in ("single", "group"):
        worst_utxo = max(overall(name, metric) for name in UTXO)
        best_account = min(overall(name, metric) for name in ACCOUNT)
        assert worst_utxo < best_account, (metric, worst_utxo, best_account)

    # Finding 2: group rate below single rate for every chain.
    for name in ACCOUNT + UTXO:
        assert overall(name, "group") <= overall(name, "single") + 0.12

    # Approximate paper levels for the flagship chains.
    assert overall("bitcoin", "single") < 0.3
    assert overall("ethereum", "single") > 0.45
    assert overall("ethereum_classic", "group") > 0.45
    assert overall("zilliqa", "single") > 0.5
