"""Extension: the execution engine validates the analytical models.

The paper stops at analytical predictions ("we have not designed and
implemented an execution engine").  This bench goes one step further:
it runs the simulated engines over real synthetic Ethereum blocks and
compares measured speed-ups against Eqs. 1-2, block by block.

Checks: the speculative engine's wall time matches the exact Eq. 1
accounting; the grouped engine respects (and approaches) the
min(n, 1/l) bound; OCC sits in between.
"""

from __future__ import annotations

import math

from _common import get_chain, write_output

from repro.analysis.report import render_table
from repro.core.speedup import group_speedup_bound
from repro.core.tdg import account_tdg
from repro.execution.engine import tasks_from_tdg
from repro.execution.grouped import GroupedExecutor
from repro.execution.occ import OCCExecutor
from repro.execution.speculative import SpeculativeExecutor

CORES = 8


def _blocks(min_txs=30, limit=25):
    chain = get_chain("ethereum")
    selected = []
    for block, executed in chain.account_builder.executed_blocks:
        regular = [item for item in executed if not item.is_coinbase]
        if len(regular) >= min_txs:
            selected.append((block.height, executed))
        if len(selected) >= limit:
            break
    return selected


def _run_engines(blocks):
    rows = []
    for height, executed in blocks:
        tdg = account_tdg(executed)
        tasks = tasks_from_tdg(tdg)
        x = tdg.num_transactions
        c = tdg.num_conflicted / x
        l = tdg.lcc_size / x
        spec = SpeculativeExecutor(cores=CORES).run(tasks)
        grouped = GroupedExecutor(cores=CORES).run(tasks)
        occ = OCCExecutor(cores=CORES).run(tasks)
        rows.append(
            {
                "height": height,
                "x": x,
                "c": c,
                "l": l,
                "spec": spec,
                "grouped": grouped,
                "occ": occ,
            }
        )
    return rows


def test_execution_engine_vs_models(benchmark, obs_session):
    blocks = _blocks()
    assert blocks, "no sufficiently large blocks generated"
    rows = benchmark(_run_engines, blocks)

    table_rows = []
    for row in rows:
        bound = group_speedup_bound(CORES, row["l"])
        table_rows.append(
            (
                row["height"],
                row["x"],
                f"{row['c']:.2f}",
                f"{row['l']:.2f}",
                f"{row['spec'].speedup:.2f}",
                f"{row['occ'].speedup:.2f}",
                f"{row['grouped'].speedup:.2f}",
                f"{bound:.2f}",
            )
        )
    write_output(
        "execution_engine",
        render_table(
            ["block", "x", "c", "l", "speculative", "occ", "grouped",
             "Eq.2 bound"],
            table_rows,
            title=f"Simulated engines vs. analytical models ({CORES} cores)",
        ),
    )

    for row in rows:
        x, c, l = row["x"], row["c"], row["l"]
        # Speculative wall time == exact Eq. 1 accounting.
        expected = math.ceil(x / CORES) + round(c * x)
        assert row["spec"].wall_time == expected

        # Grouped engine never beats the paper's bound, and with the
        # LPT schedule it comes close (within the Graham factor).
        bound = group_speedup_bound(CORES, l)
        assert row["grouped"].speedup <= bound + 1e-9
        assert row["grouped"].speedup >= bound / 1.6

        # TDG-informed scheduling never loses to sequential execution;
        # speculation sometimes does (the paper's <1x cases).
        assert row["grouped"].speedup >= 1.0

        # OCC completes everything with bounded rounds.
        assert row["occ"].rounds <= row["x"]

    # Aggregate: grouped wins on average (Fig. 10's message).
    mean_spec = sum(r["spec"].speedup for r in rows) / len(rows)
    mean_grouped = sum(r["grouped"].speedup for r in rows) / len(rows)
    assert mean_grouped > mean_spec


def test_execution_engine_gas_weighted_costs(benchmark):
    """Beyond the paper's unit-cost assumption: gas-proportional costs.

    The analytical models assume every transaction takes one time unit;
    real transactions differ by orders of magnitude (a transfer vs. a
    contract creation).  Re-running the engines with gas-proportional
    task costs shows the unit-cost model's bias: heavy unconflicted
    transactions (creations) lengthen the parallel phase, so measured
    speed-ups drop below the unit-cost predictions while the grouped
    engine still dominates the speculative one.
    """
    from repro.execution.engine import tasks_from_account_block

    blocks = _blocks()

    def run():
        rows = []
        for _height, executed in blocks:
            tasks = tasks_from_account_block(executed, unit_cost=False)
            spec = SpeculativeExecutor(cores=CORES).run(tasks)
            grouped = GroupedExecutor(cores=CORES).run(tasks)
            rows.append((spec, grouped))
        return rows

    rows = benchmark(run)
    table_rows = [
        (
            index,
            report_pair[0].num_tasks,
            f"{report_pair[0].speedup:.2f}",
            f"{report_pair[1].speedup:.2f}",
        )
        for index, report_pair in enumerate(rows)
    ]
    write_output(
        "execution_engine_gas",
        render_table(
            ["block", "tasks", "speculative", "grouped"],
            table_rows,
            title=(
                f"Gas-proportional task costs ({CORES} cores): "
                "heterogeneity vs. the unit-cost assumption"
            ),
        ),
    )
    for spec, grouped in rows:
        assert grouped.speedup >= spec.speedup - 1e-9
        assert grouped.speedup >= 1.0 - 1e-9
    mean_grouped = sum(g.speedup for _s, g in rows) / len(rows)
    assert mean_grouped > 1.2
