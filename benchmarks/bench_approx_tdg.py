"""Extension (§V-C future work): approximate-TDG effectiveness.

"An approximate TDG can be constructed by only using information about
the regular transactions.  Quantifying the effectiveness of such an
approach is left to future work."  This bench quantifies it over the
synthetic Ethereum history: per block, how many truly-conflicting pairs
the regular-edges-only TDG keeps together (pair recall), how much
speed-up it over-promises, and what remains achievable once missed
conflicts are charged an OCC-style penalty.
"""

from __future__ import annotations

from _common import get_chain, write_output

from repro.analysis.report import render_table
from repro.core.approx import assess_block, corrected_group_speedup
from repro.core.speedup import group_speedup_bound
from repro.core.tdg import account_tdg

CORES = 8


def _blocks(min_txs=30, limit=30):
    chain = get_chain("ethereum")
    qualifying = [
        executed
        for block, executed in chain.account_builder.executed_blocks
        if sum(1 for i in executed if not i.is_coinbase) >= min_txs
    ]
    # Stride-sample the whole history: contract traffic (the source of
    # hidden internal-edge conflicts) grows over time.
    stride = max(1, len(qualifying) // limit)
    return qualifying[::stride][:limit]


def test_approximate_tdg_effectiveness(benchmark):
    blocks = _blocks()
    assert blocks
    qualities = benchmark(lambda: [assess_block(b) for b in blocks])

    rows = []
    for executed, quality in zip(blocks, qualities):
        true_tdg = account_tdg(executed)
        x = quality.num_transactions
        true_bound = group_speedup_bound(CORES, true_tdg.lcc_size / x)
        naive = group_speedup_bound(CORES, quality.approx_lcc / x)
        realised = corrected_group_speedup(
            quality, CORES, conflict_penalty=1.0
        )
        rows.append(
            (
                x,
                f"{quality.pair_recall:.2f}",
                quality.missed_pairs,
                f"{naive:.2f}",
                f"{true_bound:.2f}",
                f"{realised:.2f}",
            )
        )
    write_output(
        "approx_tdg",
        render_table(
            ["x", "pair recall", "missed pairs", "promised (approx)",
             "true bound", "realised (penalised)"],
            rows,
            title=f"Approximate TDG effectiveness ({CORES} cores)",
        ),
    )

    mean_recall = sum(q.pair_recall for q in qualities) / len(qualities)
    # Most conflicts are visible from regular transactions alone: the
    # dominant sources (exchange fan-in/out, repeat senders) need no
    # internal-transaction knowledge.  But shared downstream contracts
    # (Fig. 1b's ElcoinDb pattern) hide some, so it is not perfect.
    assert mean_recall > 0.6
    assert any(q.missed_pairs > 0 for q in qualities)
    # The approximation never under-promises: approx LCC <= true LCC.
    for quality in qualities:
        assert quality.approx_lcc <= quality.true_lcc
    # Penalised realisable speed-up stays below the optimistic promise
    # but above sequential execution on average.
    realised = [
        corrected_group_speedup(q, CORES, conflict_penalty=1.0)
        for q in qualities
    ]
    assert sum(realised) / len(realised) > 1.0
