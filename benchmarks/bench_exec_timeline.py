"""Flight-recorder timeline bench: measured vs analytical speed-ups.

Replays a seeded Ethereum-profile chain through the execution engines
with the flight recorder on, then answers three questions and writes
the results to ``BENCH_exec_timeline.json`` at the repo root (plus a
human-readable summary under ``benchmarks/output/``):

1. **Measured vs analytical** — per executor, the per-block speed-up
   recomputed from the recorded timeline against the paper's Eq. 1
   ``R = x/(⌊x/n⌋ + 1 + c·x)`` and Eq. 2 ``R = min(n, 1/l)``.  For the
   component-serializing engines (speculative family, grouped) the
   measured value must stay under the Eq. 2 bound on *every* block —
   that is the hard gate; OCC/DAG may exceed it (the LCC-sequential
   assumption is pessimistic for them) and are recorded, not gated.
2. **Empirical critical path** — the longest finish->start hand-off
   chain recovered from the events, next to the block's LCC size.
3. **Recorder overhead** — wall-clock of the identical replay with the
   real :class:`~repro.obs.timeline.FlightRecorder` vs the no-op
   recorder (same recording registry and tracer both sides, min of
   several repeats).  The batch tuple-emission design must keep the
   overhead under 10%.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from _common import write_output

from repro import obs
from repro.obs.critical_path import (
    EQ2_STRICT_EXECUTORS,
    compare_to_bounds,
    profile_events,
    task_conflict_profile,
)
from repro.obs.timeline import NOOP_RECORDER, FlightRecorder
from repro.obs.regress import chain_task_blocks, make_executor
from repro.workload.profiles import ETHEREUM

BENCH_JSON = Path(__file__).resolve().parent.parent / (
    "BENCH_exec_timeline.json"
)

NUM_BLOCKS = 24
SEED = 2020
CORES = 8
EXECUTORS = ("speculative", "speculative-informed", "occ", "grouped")
OVERHEAD_BUDGET = 0.10
OVERHEAD_REPEATS = 5


def _blocks():
    return [
        (height, tasks)
        for height, tasks, _payload in chain_task_blocks(
            ETHEREUM, blocks=NUM_BLOCKS, seed=SEED
        )
        if tasks
    ]


def _replay(blocks, recorder_cls):
    """One full multi-executor replay; returns elapsed wall seconds."""
    executors = [
        (name, make_executor(name, CORES)) for name in EXECUTORS
    ]
    recorder = (
        FlightRecorder() if recorder_cls is FlightRecorder
        else NOOP_RECORDER
    )
    with obs.instrumented(recorder=recorder):
        active = obs.get_recorder()
        started = time.perf_counter()
        for height, tasks in blocks:
            with active.block(height):
                for _name, executor in executors:
                    executor.run(tasks)
        return time.perf_counter() - started


def test_exec_timeline_bounds_and_overhead():
    blocks = _blocks()
    assert len(blocks) >= 3

    # -- measured vs analytical, executor by executor ------------------
    per_executor: dict[str, dict[str, object]] = {}
    with obs.instrumented() as state:
        recorder = state.recorder
        conflicts = {h: task_conflict_profile(t) for h, t in blocks}
        for name in EXECUTORS:
            executor = make_executor(name, CORES)
            rows = []
            for height, tasks in blocks:
                with recorder.block(height):
                    report = executor.run(tasks)
                comparison = compare_to_bounds(report, conflicts[height])
                profile = profile_events(
                    recorder.events(executor=name, block=height)
                )
                # The events are the schedule: the makespan recomputed
                # from them must equal the reported wall time exactly.
                assert abs(profile.makespan - report.wall_time) < 1e-9
                if name in EQ2_STRICT_EXECUTORS:
                    assert comparison.within_eq2, (
                        f"{name} block {height}: measured "
                        f"{comparison.measured:.3f} exceeds Eq. 2 "
                        f"bound {comparison.eq2:.3f}"
                    )
                rows.append({
                    "block": height,
                    "txs": conflicts[height].x,
                    "lcc": conflicts[height].lcc,
                    "measured": comparison.measured,
                    "eq1": comparison.eq1,
                    "eq2": comparison.eq2,
                    "within_eq2": comparison.within_eq2,
                    "critical_path": profile.critical_chain_cost,
                    "mean_utilization": profile.mean_utilization,
                })
            n = len(rows)
            per_executor[name] = {
                "strict_eq2": name in EQ2_STRICT_EXECUTORS,
                "blocks": rows,
                "measured_mean": sum(r["measured"] for r in rows) / n,
                "eq1_mean": sum(r["eq1"] for r in rows) / n,
                "eq2_mean": sum(r["eq2"] for r in rows) / n,
                "eq2_exceeded_blocks": sum(
                    1 for r in rows if not r["within_eq2"]
                ),
            }

    # -- recorder overhead: enabled vs no-op recorder ------------------
    recorded = min(
        _replay(blocks, FlightRecorder)
        for _ in range(OVERHEAD_REPEATS)
    )
    noop = min(
        _replay(blocks, type(NOOP_RECORDER))
        for _ in range(OVERHEAD_REPEATS)
    )
    overhead = (recorded - noop) / noop if noop > 0 else 0.0
    assert overhead <= OVERHEAD_BUDGET, (
        f"flight-recorder overhead {overhead:.1%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} budget "
        f"(recorded {recorded:.4f}s vs no-op {noop:.4f}s)"
    )

    result = {
        "bench": "exec_timeline",
        "workload": {
            "chain": "ethereum",
            "blocks": NUM_BLOCKS,
            "cores": CORES,
            "seed": SEED,
            "executors": list(EXECUTORS),
        },
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "executors": per_executor,
        "recorder_overhead": {
            "recorded_seconds": recorded,
            "noop_seconds": noop,
            "overhead_fraction": overhead,
            "budget": OVERHEAD_BUDGET,
            "repeats": OVERHEAD_REPEATS,
        },
    }
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")

    lines = [
        f"exec timeline bench: ethereum, {NUM_BLOCKS} blocks, "
        f"{CORES} cores",
        "",
        f"{'executor':22s} {'measured':>9s} {'Eq.1':>7s} {'Eq.2':>7s} "
        f"{'>Eq.2':>6s}  strict",
    ]
    for name, stats in per_executor.items():
        lines.append(
            f"{name:22s} {stats['measured_mean']:9.3f} "
            f"{stats['eq1_mean']:7.3f} {stats['eq2_mean']:7.3f} "
            f"{stats['eq2_exceeded_blocks']:6d}  "
            f"{'yes' if stats['strict_eq2'] else 'no'}"
        )
    lines += [
        "",
        f"recorder overhead: {overhead:.2%} "
        f"(recorded {recorded:.4f}s, no-op {noop:.4f}s, "
        f"budget {OVERHEAD_BUDGET:.0%})",
    ]
    write_output("exec_timeline", "\n".join(lines))
