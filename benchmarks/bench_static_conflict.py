"""Predicted-TDG precision and analyzer-informed execution (staticcheck).

Builds an Ethereum-profile chain whose contract population includes
dynamic-operand bodies (stack-popped storage keys and transfer targets),
then compares the static analyzer's *predicted* per-block conflict
structure against the runtime-traced one:

* pairwise conflict precision/recall (recall must be exactly 1.0 — the
  analyzer is sound, so no runtime conflict may go unpredicted);
* per-block conflict-rate (c) and LCC-fraction (l) deltas between the
  predicted and runtime task-level TDGs;
* the measured analysis cost, converted into the paper's ``K`` (§V-A):
  analyzer seconds divided by mean per-transaction execution seconds;
* executor wall-clock: the speculative baseline and OCC (which abort
  and re-execute) against the informed executor fed *runtime* sets (the
  paper's oracle) and the same executor fed *static predictions* at
  cost K — plus OCC validating against expanded predicted sets.

Writes ``BENCH_static_conflict.json`` at the repo root and a summary
under ``benchmarks/output/``.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import time
from pathlib import Path

from _common import write_output

from repro import obs
from repro.core.components import UnionFind
from repro.core.tdg import TDGResult
from repro.execution.engine import tasks_from_account_block
from repro.execution.occ import OCCExecutor
from repro.execution.speculative import (
    InformedSpeculativeExecutor,
    SpeculativeExecutor,
)
from repro.execution.static_grouped import StaticGroupedExecutor
from repro.execution.static_informed import StaticInformedExecutor
from repro.staticcheck import (
    ContractAnalyzer,
    code_bindings,
    expanded_tasks,
    predict_block,
    predicted_conflicts,
    predicted_tdg,
)
from repro.workload.account_workload import AccountWorkloadBuilder
from repro.workload.profiles import ETHEREUM

BENCH_JSON = Path(__file__).resolve().parent.parent / (
    "BENCH_static_conflict.json"
)

NUM_BLOCKS = 48
SEED = 2020
SCALE = 0.6
CORES = 8
NUM_DYNAMIC = 200


def _runtime_tdg(tasks) -> TDGResult:
    """Task-level TDG from runtime access sets (same rule as predicted)."""
    forest = UnionFind()
    for task in tasks:
        forest.add(task.tx_hash)
    for i, a in enumerate(tasks):
        for b in tasks[i + 1:]:
            if a.conflicts_with(b):
                forest.union(a.tx_hash, b.tx_hash)
    groups: dict[object, list[str]] = {}
    for task in tasks:
        groups.setdefault(forest.find(task.tx_hash), []).append(task.tx_hash)
    return TDGResult(
        groups=tuple(tuple(group) for group in groups.values()),
        num_transactions=len(tasks),
    )


def test_static_conflict_prediction():
    profile = dataclasses.replace(
        ETHEREUM, num_dynamic_contracts=NUM_DYNAMIC
    )
    builder = AccountWorkloadBuilder(profile=profile, seed=SEED, scale=SCALE)

    # Wrap the VM entry point so chain building measures the mean
    # per-transaction execution time — the unit K is expressed in.
    exec_state = {"seconds": 0.0, "count": 0}
    inner_execute = builder.vm.execute_transaction

    def timed_execute(*args, **kwargs):
        started = time.perf_counter()
        result = inner_execute(*args, **kwargs)
        exec_state["seconds"] += time.perf_counter() - started
        exec_state["count"] += 1
        return result

    builder.vm.execute_transaction = timed_execute  # type: ignore[method-assign]
    builder.build_chain(NUM_BLOCKS)
    seconds_per_task = exec_state["seconds"] / max(1, exec_state["count"])

    # One interprocedural closure serves the whole chain; its cost is
    # amortized across blocks when charging K to the executors.  A
    # second analyzer runs the PR 3 two-point Const/⊤ lattice over the
    # same registry for the before/after precision comparison.
    analyzer = ContractAnalyzer(builder.registry, code_bindings(builder.state))
    closure_started = time.perf_counter()
    analyzer.analyze_all()
    closure_seconds = time.perf_counter() - closure_started
    analyzer_const = ContractAnalyzer(
        builder.registry, code_bindings(builder.state), lattice="const"
    )
    analyzer_const.analyze_all()

    LATTICES = ("const", "valueset")
    tp = {lat: 0 for lat in LATTICES}
    fp = {lat: 0 for lat in LATTICES}
    fn = {lat: 0 for lat in LATTICES}
    widened = {lat: 0 for lat in LATTICES}
    uncovered = 0
    total_tasks = 0
    c_deltas: list[float] = []
    l_deltas: list[float] = []
    group_sizes: list[int] = []
    predict_seconds = 0.0
    per_block: list[dict] = []
    wall = {key: 0.0 for key in (
        "speculative", "informed-oracle", "static-informed",
        "static-grouped", "occ-runtime", "occ-predicted",
    )}
    aborts = {key: 0 for key in wall}
    total_cost = 0.0

    with obs.instrumented() as state:
        for block, executed in builder.executed_blocks:
            tasks = tasks_from_account_block(executed)
            if not tasks:
                continue
            started = time.perf_counter()
            predictions = predict_block(block.transactions, analyzer)
            predict_seconds += time.perf_counter() - started
            by_lattice = {
                "valueset": predictions,
                "const": predict_block(
                    block.transactions, analyzer_const
                ),
            }
            by_hash = {task.tx_hash: task for task in tasks}
            assert sorted(by_hash) == sorted(
                p.tx_hash for p in predictions
            ), "predictions and runtime tasks must cover the same txs"

            # Soundness gate 1: every runtime access set is covered —
            # under both lattices (coverage failures count once).
            for prediction in predictions:
                total_tasks += 1
                if not prediction.covers_task(by_hash[prediction.tx_hash]):
                    uncovered += 1
            for lat in LATTICES:
                for prediction in by_lattice[lat]:
                    widened[lat] += prediction.is_widened
                    if not prediction.covers_task(
                        by_hash[prediction.tx_hash]
                    ):
                        uncovered += lat == "const"

            # Pairwise conflict confusion counts, per lattice.
            block_fn = 0
            for lat in LATTICES:
                lat_predictions = by_lattice[lat]
                for i, a in enumerate(lat_predictions):
                    for b in lat_predictions[i + 1:]:
                        pred = predicted_conflicts(a, b)
                        real = by_hash[a.tx_hash].conflicts_with(
                            by_hash[b.tx_hash]
                        )
                        tp[lat] += pred and real
                        fp[lat] += pred and not real
                        fn[lat] += real and not pred
                        if lat == "valueset":
                            block_fn += real and not pred

            # Predicted vs runtime task-level TDG: c and l deltas.
            runtime = _runtime_tdg(tasks)
            predicted = predicted_tdg(predictions)
            group_sizes.extend(len(group) for group in predicted.groups)
            n = runtime.num_transactions
            c_runtime = runtime.num_conflicted / n
            c_predicted = predicted.num_conflicted / n
            l_runtime = runtime.lcc_size / n
            l_predicted = predicted.lcc_size / n
            c_deltas.append(c_predicted - c_runtime)
            l_deltas.append(l_predicted - l_runtime)

            # Executor comparison.  K (in task units) charges this
            # block's prediction time plus its share of the closure.
            block_k_seconds = (
                closure_seconds / len(builder.executed_blocks)
                + (time.perf_counter() - started)
            )
            k_units = block_k_seconds / max(seconds_per_task, 1e-12)
            prediction_map = {p.tx_hash: p for p in predictions}
            reports = {
                "speculative": SpeculativeExecutor(CORES).run(tasks),
                "informed-oracle": InformedSpeculativeExecutor(
                    CORES, preprocessing_cost=k_units
                ).run(tasks),
                "static-informed": StaticInformedExecutor(
                    CORES,
                    predictions=prediction_map,
                    preprocessing_cost=k_units,
                ).run(tasks),
                "static-grouped": StaticGroupedExecutor(
                    CORES,
                    predictions=prediction_map,
                    scheduling_cost=k_units,
                ).run(tasks),
                "occ-runtime": OCCExecutor(CORES).run(tasks),
                "occ-predicted": OCCExecutor(CORES).run(
                    expanded_tasks(predictions)
                ),
            }
            total_cost += sum(task.cost for task in tasks)
            for key, report in reports.items():
                wall[key] += report.wall_time
                aborts[key] += (
                    report.aborts if key != "speculative"
                    else report.reexecuted
                )
            per_block.append({
                "height": block.height,
                "transactions": n,
                "c_runtime": round(c_runtime, 4),
                "c_predicted": round(c_predicted, 4),
                "l_runtime": round(l_runtime, 4),
                "l_predicted": round(l_predicted, 4),
                "false_negatives": block_fn,
            })
        snapshot = state.registry.snapshot()

    # Hard gates: soundness (recall exactly 1.0, full coverage) under
    # BOTH lattices, and the value-set lattice must not lose precision
    # against the two-point baseline it replaces.
    assert uncovered == 0, f"{uncovered} runtime task sets not covered"
    precision = {}
    recall = {}
    for lat in LATTICES:
        assert fn[lat] == 0, (
            f"{fn[lat]} runtime conflicts unpredicted under {lat}"
        )
        precision[lat] = (
            tp[lat] / (tp[lat] + fp[lat]) if tp[lat] + fp[lat] else 1.0
        )
        recall[lat] = (
            tp[lat] / (tp[lat] + fn[lat]) if tp[lat] + fn[lat] else 1.0
        )
    assert precision["valueset"] >= precision["const"], (
        "value-set lattice lost precision vs the const baseline"
    )
    assert precision["valueset"] >= 0.5, (
        f"pairwise precision degenerate: {precision['valueset']}"
    )

    # The predicted sets over-approximate, so the static-informed
    # parallel phase and the static-grouped safety net are abort-free.
    assert aborts["static-informed"] == 0
    assert aborts["static-grouped"] == 0

    spec_rate = aborts["speculative"] / max(1, total_tasks)
    static_rate = aborts["static-informed"] / max(1, total_tasks)
    occ_runtime_rate = aborts["occ-runtime"] / max(1, total_tasks)
    occ_predicted_rate = aborts["occ-predicted"] / max(1, total_tasks)

    result = {
        "bench": "static_conflict",
        "chain": "ethereum",
        "blocks": len(per_block),
        "transactions": total_tasks,
        "seed": SEED,
        "scale": SCALE,
        "cores": CORES,
        "num_dynamic_contracts": NUM_DYNAMIC,
        "platform": platform.platform(),
        "widened_predictions": widened["valueset"],
        "pairwise": {
            "true_positives": tp["valueset"],
            "false_positives": fp["valueset"],
            "false_negatives": fn["valueset"],
            "precision": round(precision["valueset"], 4),
            "recall": round(recall["valueset"], 4),
        },
        "lattice_comparison": {
            lat: {
                "precision": round(precision[lat], 4),
                "recall": round(recall[lat], 4),
                "false_positives": fp[lat],
                "widened_predictions": widened[lat],
            }
            for lat in LATTICES
        },
        "predicted_groups": {
            "count": len(group_sizes),
            "mean_size": round(
                sum(group_sizes) / max(1, len(group_sizes)), 4
            ),
            "max_size": max(group_sizes, default=0),
            "singleton_fraction": round(
                sum(1 for s in group_sizes if s == 1)
                / max(1, len(group_sizes)),
                4,
            ),
        },
        "tdg_deltas": {
            "mean_c_delta": round(sum(c_deltas) / len(c_deltas), 4),
            "max_c_delta": round(max(c_deltas), 4),
            "mean_l_delta": round(sum(l_deltas) / len(l_deltas), 4),
            "max_l_delta": round(max(l_deltas), 4),
        },
        "analysis_cost": {
            "closure_seconds": round(closure_seconds, 6),
            "prediction_seconds": round(predict_seconds, 6),
            "mean_execution_seconds_per_tx": round(seconds_per_task, 9),
            "k_units_total": round(
                (closure_seconds + predict_seconds)
                / max(seconds_per_task, 1e-12),
                2,
            ),
        },
        "executors": {
            key: {
                "wall_time": round(wall[key], 2),
                "aborts": aborts[key],
                "abort_rate": round(
                    aborts[key] / max(1, total_tasks), 4
                ),
                "measured_speedup": round(
                    total_cost / wall[key], 4
                ) if wall[key] else None,
            }
            for key in wall
        },
        "abort_rate_change_vs_speculative": {
            "static-informed": round(static_rate - spec_rate, 4),
            "occ-predicted_vs_occ-runtime": round(
                occ_predicted_rate - occ_runtime_rate, 4
            ),
        },
        "obs_counters": {
            key: value
            for key, value in snapshot["counters"].items()
            if key.startswith((
                "staticcheck.", "exec.static-informed",
                "exec.static_grouped",
            ))
        },
        "per_block": per_block,
    }
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")

    lines = [
        "static conflict prediction vs runtime traces "
        f"({len(per_block)} blocks, {total_tasks} txs, "
        f"{NUM_DYNAMIC} dynamic contracts)",
        f"  precision (valueset) : {precision['valueset']:8.4f}",
        f"  precision (const)    : {precision['const']:8.4f}",
        f"  pairwise recall      : {recall['valueset']:8.4f}  "
        "(soundness gate: 1.0, both lattices)",
        f"  widened predictions  : {widened['valueset']} / {total_tasks}"
        f"  (const: {widened['const']})",
        "  predicted group size : "
        f"mean {result['predicted_groups']['mean_size']} "
        f"max {result['predicted_groups']['max_size']}",
        f"  mean c delta         : {result['tdg_deltas']['mean_c_delta']:+.4f}",
        f"  mean l delta         : {result['tdg_deltas']['mean_l_delta']:+.4f}",
        f"  analysis cost K      : "
        f"{result['analysis_cost']['k_units_total']} task units "
        f"({closure_seconds + predict_seconds:.4f} s)",
        "  executor wall-clock (sum over blocks):",
    ]
    for key in wall:
        lines.append(
            f"    {key:<16s}: {wall[key]:10.1f}  "
            f"aborts {aborts[key]:5d} "
            f"(rate {aborts[key] / max(1, total_tasks):.4f})"
        )
    lines.append(
        "  abort-rate change vs speculative (static-informed): "
        f"{static_rate - spec_rate:+.4f}"
    )
    write_output("static_conflict", "\n".join(lines))
