"""Sampled-tracing overhead and sketch-accuracy bench for large sweeps.

Drives the full transaction pipeline (mempool → gossip → consensus →
execution, :func:`repro.obs.lifecycle_run.run_lifecycle`) on a seeded
Ethereum-profile chain scaled past 100k admitted transactions, under
head-based sampling (rate 1/100) with the bounded-memory sketch
metrics policy, and gates the observability-at-scale budgets from the
sampling issue, writing ``BENCH_obs_sampling.json`` at the repo root
(plus a summary under ``benchmarks/output/``):

1. **Enabled overhead ≤ 10%** — the sampled tracer + sketch registry
   vs the identical pipeline with the no-op lifecycle tracer (registry
   live on both sides, min of several repeats), the same methodology
   and budget as ``bench_lifecycle_trace.py``.  The exactness contract
   is asserted before timing is trusted: stage counters count *every*
   transaction even though only ~1% carry stitched traces.
2. **Disabled overhead ≤ 1%** — with observability uninstalled, the
   per-call guard cost is measured directly and charged once per
   recorded stage event against the disabled run — still a deliberate
   overestimate, because the drivers hoist the tracer and perform far
   fewer dispatches than stage events (same model as
   ``bench_lifecycle_trace.py``, minus its 2x factor, which at 900k
   events would compound an already ~2-4x over-count).
3. **Memory sublinearity** — tracemalloc peaks of the obs layer for a
   dense synthetic sweep (mempool admission, fee-greedy packing,
   speculative execution, lifecycle hops — all observability calls,
   minimal pipeline padding) of N and 2N transactions under
   sampling + sketch must grow far slower than 2x (bounded sketches +
   1/100 traces), and sit well below the full exact tracer's peak at
   N.  Peak process RSS rides along in the JSON for CI trend lines.
4. **Sketch accuracy** — p50/p95/p99 of every ``lifecycle.stage.*``
   histogram from the golden seeded pipeline, re-observed into a
   sketch, must match the exact percentiles within the documented
   tolerance (2·alpha relative error).
"""

from __future__ import annotations

import json
import platform
import time
import tracemalloc
from pathlib import Path

from _common import peak_rss_bytes, write_output

from repro import obs
from repro.execution import SpeculativeExecutor
from repro.execution.engine import TxTask
from repro.mempool.pool import Mempool, PoolEntry
from repro.obs.lifecycle import (
    CONSENSUS,
    NOOP_LIFECYCLE,
    SCHEDULED,
    LifecycleTracer,
)
from repro.obs.lifecycle_run import run_lifecycle
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampling import SampledLifecycleTracer, SampleRate
from repro.obs.sketch import DEFAULT_ALPHA, SketchHistogram
from repro.workload.profiles import ETHEREUM

BENCH_JSON = Path(__file__).resolve().parent.parent / (
    "BENCH_obs_sampling.json"
)

# Pipeline shape for the overhead sweep: ethereum profile scaled until
# a run admits > 100k transactions (blocks=66, scale=16 admits ~100.2k
# with the 2020 seed).
PIPELINE_BLOCKS = 66
PIPELINE_SCALE = 16.0
SEED = 2020
CORES = 4
MIN_SWEEP_TX = 100_000
RATE = SampleRate(1, 100)
# Each pipeline run takes tens of seconds at this scale; the enabled
# and no-op runs are interleaved (S N S N ...) so slow host-level
# drift hits both sides equally, and min-of-repeats sheds one-off
# scheduling noise (expected overhead is ~2%, far inside the 10%
# budget, so the margin absorbs the rest).
REPEATS = 3
ENABLED_BUDGET = 0.10
DISABLED_BUDGET = 0.01
# Charge one guard dispatch per recorded stage event.  That is itself
# a deliberate overestimate at this scale: the drivers hoist the
# tracer (one ``obs.lifecycle()`` dispatch covers a whole block's
# gossip relays, and the pipeline loop dispatches once per run), so
# the disabled pipeline performs far fewer than one dispatch per
# stage event — PR 5's additional 2x factor would compound an already
# ~2-4x over-count.
GUARD_CALL_FACTOR = 1

# Memory sweep shape: the synthetic admission/pack/execute/close loop
# below, which is nearly all observability calls per transaction, so
# tracemalloc peaks isolate the obs layer's growth.
BLOCK_TX = 1_000
MEMORY_BASE_TX = 50_000
# Peak obs memory may grow at most this factor when the sweep doubles;
# a linear structure would grow ~2x.
SUBLINEAR_FACTOR = 1.5
# Documented sketch tolerance: relative rank error alpha compounds to
# at most 2*alpha relative value error after merge (see
# docs/observability.md).
SKETCH_TOLERANCE = 2 * DEFAULT_ALPHA

GOLDEN_BLOCKS = 8
GOLDEN_SEED = 2020
GOLDEN_CORES = 4


def _pipeline():
    return run_lifecycle(ETHEREUM, blocks=PIPELINE_BLOCKS, seed=SEED,
                         cores=CORES, scale=PIPELINE_SCALE)


def _run_sampled():
    """Sampled tracer + sketch registry over the full pipeline."""
    registry = MetricsRegistry(policy="sketch")
    life = SampledLifecycleTracer(RATE, registry=registry)
    with obs.instrumented(registry=registry, lifecycle=life):
        started = time.perf_counter()
        result = _pipeline()
        life.flush_counts()  # part of the tracer's cost
        elapsed = time.perf_counter() - started
    return elapsed, registry, life, result


def _run_noop_lifecycle() -> float:
    """Identical pipeline, lifecycle layer swapped for the no-op."""
    registry = MetricsRegistry(policy="sketch")
    with obs.instrumented(registry=registry, lifecycle=NOOP_LIFECYCLE):
        started = time.perf_counter()
        _pipeline()
        return time.perf_counter() - started


def _run_disabled() -> float:
    """Observability fully uninstalled — the shipped default."""
    obs.uninstall()
    started = time.perf_counter()
    result = _pipeline()
    elapsed = time.perf_counter() - started
    assert result.traces == ()  # nothing recorded when disabled
    return elapsed


def _guard_cost_per_call() -> float:
    """Wall cost of one disabled call-site guard (median of 5)."""
    calls = 200_000
    obs.uninstall()
    samples = []
    for _ in range(5):
        started = time.perf_counter()
        for _ in range(calls):
            life = obs.lifecycle()
            if life.enabled:  # pragma: no cover - disabled by design
                raise AssertionError("lifecycle unexpectedly enabled")
        samples.append((time.perf_counter() - started) / calls)
    samples.sort()
    return samples[2]


def _sweep(num_tx: int) -> int:
    """Admit, pack, execute and trace *num_tx* transactions.

    A dense loop of exactly the instrumented operations — mempool
    submit (fee floor, RBF, eviction bookkeeping), fee-greedy packing
    each :data:`BLOCK_TX` admissions, a speculative-executor run over
    the packed block, then consensus/scheduled/commit lifecycle hops —
    used for the tracemalloc memory comparison where the obs layer
    should dominate allocations.
    """
    pool: Mempool[None] = Mempool(max_weight=10**9, min_fee_rate=0.0)
    executor = SpeculativeExecutor(4)
    life = obs.lifecycle()
    clock = 0.0
    committed = 0
    for index in range(num_tx):
        pool.submit(PoolEntry(
            tx_hash=f"tx{index:08x}",
            fee=(index % 97) + 1,
            weight=1,
        ))
        if (index + 1) % BLOCK_TX == 0:
            clock += 1.0
            life.set_clock(clock)
            block = pool.pack_block(BLOCK_TX)
            tasks = [
                TxTask(
                    tx_hash=entry.tx_hash,
                    reads=frozenset((
                        f"acct{j % 1021}", f"acct{j * 31 % 1021}",
                        f"slot{j * 7 % 4093}", f"slot{j * 13 % 4093}",
                    )),
                    writes=frozenset((
                        f"acct{j % 1021}", f"slot{j * 7 % 4093}",
                    )),
                )
                for j, entry in enumerate(block)
            ]
            executor.run(tasks)
            for entry in block:
                life.record(entry.tx_hash, CONSENSUS, at=clock + 0.5)
                life.record(entry.tx_hash, SCHEDULED, at=clock + 0.6)
                life.close(entry.tx_hash, at=clock + 1.0)
            committed += len(block)
    return committed


def _obs_peak(num_tx: int, *, sampled: bool) -> int:
    """tracemalloc peak (bytes) of one traced sweep.

    Isolates the lifecycle + histogram layers: the flight recorder and
    span tracer stay no-op on BOTH sides, because they are post-hoc
    debugging tools with their own O(events) storage — the
    million-transaction configuration this bench gates replaces them
    with the bounded streaming monitor (``repro.obs.monitor``).
    """
    from repro.obs.timeline import NOOP_RECORDER
    from repro.obs.tracer import NOOP_TRACER

    if sampled:
        registry = MetricsRegistry(policy="sketch")
        life: LifecycleTracer = SampledLifecycleTracer(
            RATE, registry=registry
        )
    else:
        registry = MetricsRegistry()
        life = LifecycleTracer(registry=registry)
    with obs.instrumented(registry=registry, lifecycle=life,
                          recorder=NOOP_RECORDER, tracer=NOOP_TRACER):
        tracemalloc.start()
        try:
            _sweep(num_tx)
            _current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
    return peak


def _stage_count_total(registry: MetricsRegistry) -> float:
    return sum(
        metric.value for metric in registry.iter_metrics()
        if metric.name.startswith("lifecycle.stage_count.")
    )


def test_sampling_overhead_and_memory_budgets():
    # -- exactness first: counters cover every transaction ------------
    elapsed, registry, life, result = _run_sampled()
    admitted = registry.counter("lifecycle.stage_count.admitted").value
    kept = registry.counter("lifecycle.sampled.kept").value
    dropped = registry.counter("lifecycle.sampled.dropped").value
    assert result.admitted >= MIN_SWEEP_TX
    assert admitted == result.admitted
    assert kept + dropped == admitted
    assert life.closed_count == kept  # every sampled trace sealed
    assert len(result.traces) == kept
    assert result.open == 0
    # The deterministic hash keeps ~1/100; allow generous slack.
    assert 0.5 * admitted / 100 <= kept <= 2.0 * admitted / 100
    # Stage counters are exact over ALL transactions even though only
    # ~1% carry traces: every admitted tx commits in this workload, and
    # the trace-derived result.committed sees only the sampled subset.
    committed = registry.counter(
        "lifecycle.stage_count.committed"
    ).value
    assert committed == admitted
    assert result.committed == kept

    # -- enabled overhead: sampled tracer vs no-op lifecycle ----------
    # Interleaved so gradual host drift cannot systematically favour
    # whichever side happens to run later.
    enabled_samples = [elapsed]
    noop_samples = []
    for _ in range(REPEATS - 1):
        noop_samples.append(_run_noop_lifecycle())
        enabled_samples.append(_run_sampled()[0])
    noop_samples.append(_run_noop_lifecycle())
    enabled = min(enabled_samples)
    noop = min(noop_samples)
    enabled_overhead = (enabled - noop) / noop if noop > 0 else 0.0
    assert enabled_overhead <= ENABLED_BUDGET, (
        f"sampled tracing enabled overhead {enabled_overhead:.1%} "
        f"exceeds {ENABLED_BUDGET:.0%} budget "
        f"(enabled {enabled:.4f}s vs no-op {noop:.4f}s)"
    )

    # -- disabled overhead: guard cost charged to the disabled run ----
    disabled = min(_run_disabled() for _ in range(REPEATS))
    guard_cost = _guard_cost_per_call()
    lifecycle_calls = _stage_count_total(registry)
    charged_calls = GUARD_CALL_FACTOR * lifecycle_calls
    disabled_overhead = (
        charged_calls * guard_cost / disabled if disabled > 0 else 0.0
    )
    assert disabled_overhead <= DISABLED_BUDGET, (
        f"disabled overhead {disabled_overhead:.2%} exceeds "
        f"{DISABLED_BUDGET:.0%} budget ({charged_calls:.0f} guard "
        f"calls at {guard_cost * 1e9:.0f} ns against {disabled:.4f}s)"
    )

    # -- memory: sampled+sketch peaks must be sublinear in tx count --
    sampled_base = _obs_peak(MEMORY_BASE_TX, sampled=True)
    sampled_double = _obs_peak(2 * MEMORY_BASE_TX, sampled=True)
    full_base = _obs_peak(MEMORY_BASE_TX, sampled=False)
    growth = sampled_double / sampled_base if sampled_base else 0.0
    assert growth <= SUBLINEAR_FACTOR, (
        f"sampled+sketch peak grew {growth:.2f}x when the sweep "
        f"doubled ({sampled_base} -> {sampled_double} bytes); "
        f"expected <= {SUBLINEAR_FACTOR}x"
    )
    assert sampled_base < full_base / 4, (
        f"sampled+sketch peak {sampled_base} bytes is not clearly "
        f"below the full exact tracer's {full_base} bytes"
    )

    payload = {
        "bench": "obs_sampling",
        "workload": {
            "chain": "ethereum",
            "blocks": PIPELINE_BLOCKS,
            "scale": PIPELINE_SCALE,
            "cores": CORES,
            "seed": SEED,
            "transactions": admitted,
            "rate": str(RATE),
            "policy": "sketch",
        },
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "sampling": {
            "admitted": admitted,
            "kept": kept,
            "dropped": dropped,
            "committed_counter": committed,
            "stage_events": lifecycle_calls,
        },
        "enabled_overhead": {
            "enabled_seconds": enabled,
            "noop_lifecycle_seconds": noop,
            "overhead_fraction": enabled_overhead,
            "budget": ENABLED_BUDGET,
            "repeats": REPEATS,
        },
        "disabled_overhead": {
            "disabled_seconds": disabled,
            "guard_seconds_per_call": guard_cost,
            "charged_calls": charged_calls,
            "overhead_fraction": disabled_overhead,
            "budget": DISABLED_BUDGET,
        },
        "memory": {
            "base_tx": MEMORY_BASE_TX,
            "sampled_sketch_peak_bytes": sampled_base,
            "sampled_sketch_peak_bytes_2x": sampled_double,
            "full_exact_peak_bytes": full_base,
            "growth_factor": growth,
            "sublinear_budget": SUBLINEAR_FACTOR,
            "process_peak_rss_bytes": peak_rss_bytes(),
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    write_output("obs_sampling", "\n".join([
        f"obs sampling bench: ethereum, {PIPELINE_BLOCKS} blocks at "
        f"{PIPELINE_SCALE:g}x scale ({admitted:.0f} transactions), "
        f"rate {RATE}, sketch policy",
        "",
        f"sampling: {kept:.0f} kept / {dropped:.0f} dropped "
        f"(counters exact: {admitted:.0f} admitted, "
        f"{committed:.0f} committed)",
        f"enabled overhead:  {enabled_overhead:.2%} "
        f"(enabled {enabled:.4f}s, no-op lifecycle {noop:.4f}s, "
        f"budget {ENABLED_BUDGET:.0%})",
        f"disabled overhead: {disabled_overhead:.3%} "
        f"({charged_calls:.0f} guard calls at "
        f"{guard_cost * 1e9:.0f} ns, disabled run {disabled:.4f}s, "
        f"budget {DISABLED_BUDGET:.0%})",
        f"memory: sampled+sketch {sampled_base} B at "
        f"{MEMORY_BASE_TX} tx -> {sampled_double} B at "
        f"{2 * MEMORY_BASE_TX} tx ({growth:.2f}x, budget "
        f"{SUBLINEAR_FACTOR}x); full exact tracer {full_base} B",
    ]))


def test_sketch_accuracy_on_golden_pipeline():
    """Sketch percentiles track exact ones on the golden seeded chain."""
    registry = MetricsRegistry()
    life = LifecycleTracer(registry=registry)
    with obs.instrumented(registry=registry, lifecycle=life):
        run_lifecycle(ETHEREUM, blocks=GOLDEN_BLOCKS, seed=GOLDEN_SEED,
                      cores=GOLDEN_CORES)
    checked = 0
    accuracy: dict[str, dict[str, float]] = {}
    for metric in registry.iter_metrics():
        if not metric.name.startswith("lifecycle.stage."):
            continue
        values = list(metric._values)
        if len(values) < 10:
            continue
        sketch = SketchHistogram(metric.name)
        for index, value in enumerate(values):
            sketch.observe(value, key=f"tx{index}")
        ordered = sorted(values)
        entry: dict[str, float] = {}
        for quantile in (0.50, 0.95, 0.99):
            # Same-rank order statistic, the reference the DDSketch
            # relative-error bound is stated against.  The exact
            # histogram's public percentile() additionally interpolates
            # between adjacent order statistics — at sparse tails that
            # interpolation gap is a rank-method difference, not sketch
            # error, and can exceed the bound on its own.
            exact_q = ordered[int(quantile * (len(ordered) - 1))]
            sketch_q = sketch.percentile(quantile)
            scale = max(abs(exact_q), 1e-9)
            error = abs(sketch_q - exact_q) / scale
            assert error <= SKETCH_TOLERANCE, (
                f"{metric.name} p{quantile * 100:.0f}: sketch "
                f"{sketch_q} vs exact {exact_q} "
                f"(relative error {error:.4f} > {SKETCH_TOLERANCE})"
            )
            entry[f"p{quantile * 100:.0f}_rel_error"] = error
        accuracy[metric.name] = entry
        checked += 1
    assert checked >= 3  # several stages must actually be exercised

    if BENCH_JSON.exists():
        payload = json.loads(BENCH_JSON.read_text())
        payload["sketch_accuracy"] = {
            "tolerance": SKETCH_TOLERANCE,
            "stages": accuracy,
        }
        BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
