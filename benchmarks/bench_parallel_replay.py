"""Serial vs. fanned-out executor replay over a seeded Bitcoin chain.

Times :func:`repro.execution.parallel_replay.replay_chain` — all seven
engines per block — on every backend at ``jobs=4``, asserts every
configuration commits to byte-identical state roots, and writes the
speed-up figures to ``BENCH_parallel_replay.json`` at the repo root
(plus a human-readable summary under ``benchmarks/output/``).

Reported figures, mirroring ``bench_parallel_pipeline``:

* ``measured`` — wall-clock serial / parallel on *this* machine; only
  meaningful with >= ``jobs`` idle cores.
* ``projected_at_jobs`` — serial time over the LPT makespan of the
  measured serial per-chunk replay times across ``jobs`` workers
  (:func:`repro.core.scheduling.lpt_schedule`): the fan-out ceiling
  implied by the chunk-time distribution, ignoring IPC.
* ``recorder_overhead`` — the cost of observability forwarding: the
  same fan-out run under an instrumented parent (worker registry dumps
  and flight-recorder rows ride back and merge) minus the dark run.

Gates: cross-backend state-root identity always; the >= 3x speed-up
gate applies to the measured number when the host has the cores, and
to the LPT projection otherwise (the JSON records ``cpu_count``).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from _common import write_output

from repro import obs
from repro.core.parallel import chunk_bounds, default_chunk_size
from repro.core.scheduling import lpt_schedule
from repro.execution.parallel_replay import (
    ENGINES,
    _replay_chunk,
    replay_block_inputs,
    replay_chain,
)
from repro.workload.profiles import BITCOIN

BENCH_JSON = Path(__file__).resolve().parent.parent / (
    "BENCH_parallel_replay.json"
)

NUM_BLOCKS = 64
SEED = 2020
SCALE = 0.2
JOBS = 4
CORES = 4


def _timed_replay(inputs, **kwargs):
    started = time.perf_counter()
    result = replay_chain(
        inputs, data_model="utxo", engines=ENGINES, cores=CORES, **kwargs
    )
    return result, time.perf_counter() - started


def test_parallel_replay_speedup():
    inputs = replay_block_inputs(
        BITCOIN, blocks=NUM_BLOCKS, seed=SEED, scale=SCALE
    )
    total_txs = sum(len(block.tasks) for block in inputs)

    # Serial reference chunked exactly as the jobs=4 fan-out chunks it,
    # so the per-chunk times feed the LPT projection directly.
    chunk_size = default_chunk_size(len(inputs), JOBS)
    bounds = chunk_bounds(len(inputs), chunk_size)
    chunk_seconds: list[float] = []
    serial_started = time.perf_counter()
    for start, stop in bounds:
        chunk = _replay_chunk(
            "utxo", inputs[start:stop], ENGINES, CORES, False
        )
        chunk_seconds.append(chunk.elapsed)
    serial_seconds = time.perf_counter() - serial_started

    serial_result, _ = _timed_replay(inputs, backend="serial")
    process_result, process_seconds = _timed_replay(
        inputs, backend="process", jobs=JOBS, chunk_size=chunk_size
    )
    thread_result, thread_seconds = _timed_replay(
        inputs, backend="thread", jobs=JOBS, chunk_size=chunk_size
    )

    # Hard determinism gates: identical records on every backend, and
    # one committed state root across all seven engines.
    assert process_result.records == serial_result.records
    assert thread_result.records == serial_result.records
    engine_roots = {
        s.engine: s.state_root for s in serial_result.summaries()
    }
    assert len(set(engine_roots.values())) == 1, engine_roots
    chain_state_root = next(iter(set(engine_roots.values())))

    # Recorder overhead: the same process fan-out with worker obs dumps
    # and recorder rows merging into an instrumented parent.
    with obs.instrumented() as state:
        recorded_result, recorded_seconds = _timed_replay(
            inputs, backend="process", jobs=JOBS, chunk_size=chunk_size
        )
    assert recorded_result.records == serial_result.records
    merged_events = len(state.recorder.dump_rows())
    recorder_delta = recorded_seconds - process_seconds

    measured_process = serial_seconds / process_seconds
    measured_thread = serial_seconds / thread_seconds
    makespan = lpt_schedule(chunk_seconds, JOBS).makespan
    projected = serial_seconds / max(makespan, 1e-9)

    cpu_count = os.cpu_count() or 1
    snapshot = state.registry.snapshot()
    result = {
        "bench": "parallel_replay",
        "chain": "bitcoin",
        "blocks": len(inputs),
        "transactions": total_txs,
        "engines": list(ENGINES),
        "seed": SEED,
        "scale": SCALE,
        "jobs": JOBS,
        "cores": CORES,
        "chunk_size": chunk_size,
        "chunks": len(bounds),
        "cpu_count": cpu_count,
        "platform": platform.platform(),
        "state_root": chain_state_root,
        "state_roots_identical_across_engines": True,
        "records_identical_across_backends": True,
        "serial_seconds": round(serial_seconds, 4),
        "process_seconds": round(process_seconds, 4),
        "thread_seconds": round(thread_seconds, 4),
        "measured_speedup_process": round(measured_process, 3),
        "measured_speedup_thread": round(measured_thread, 3),
        "projected_speedup_at_jobs": round(projected, 3),
        "projection_model": (
            "serial time / LPT makespan of measured serial chunk times "
            f"over {JOBS} workers (ignores IPC; shared-memory/fork "
            "context keeps dispatch to an index pair)"
        ),
        "recorder_overhead_seconds": round(recorder_delta, 4),
        "recorder_overhead_ratio": round(
            recorded_seconds / max(process_seconds, 1e-9), 3
        ),
        "recorder_merged_events": merged_events,
        "obs_counters": {
            key: value
            for key, value in snapshot["counters"].items()
            if key.startswith("exec.replay")
        },
        "obs_chunk_seconds": snapshot["histograms"].get(
            "exec.replay.chunk_seconds{backend=process}", {}
        ),
    }
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")

    lines = [
        "parallel executor replay — serial vs fan-out "
        f"({len(inputs)} blocks, {total_txs} txs, {len(ENGINES)} "
        f"engines, jobs={JOBS}, chunk={chunk_size})",
        f"  host cores          : {cpu_count}",
        f"  serial              : {serial_seconds:8.3f} s",
        f"  process (jobs={JOBS})   : {process_seconds:8.3f} s  "
        f"({measured_process:.2f}x)",
        f"  thread  (jobs={JOBS})   : {thread_seconds:8.3f} s  "
        f"({measured_thread:.2f}x)",
        f"  projected at {JOBS} cores: {projected:8.2f} x  (LPT over "
        "measured chunk times)",
        f"  recorder overhead   : {recorder_delta:+8.3f} s  "
        f"({merged_events} merged events)",
        f"  state root          : {chain_state_root[:16]} "
        "(identical across engines and backends)",
    ]
    write_output("parallel_replay", "\n".join(lines))

    # Speed-up gate: measured where the hardware allows it, otherwise
    # the chunk-time projection (single-core CI cannot exhibit real
    # parallel wall-clock gains).
    if cpu_count >= JOBS:
        assert measured_process >= 3.0 or projected >= 3.0, result
    else:
        assert projected >= 3.0, result
