"""Fig. 4: Ethereum's transaction load and conflict rates over time.

Panels: (a) regular vs. total transactions per block; (b) the
single-transaction conflict rate, tx-count- and gas-weighted; (c) the
group conflict rate.  The benchmark times the full per-block analysis
pipeline over the synthetic Ethereum history.

Shape targets from the paper: ~100 regular / ~300 total txs per block
late in the history; single rate falling from ~0.8 toward ~0.6 with the
gas-weighted line below the tx-weighted one; group rate declining to a
~0.2 plateau.
"""

from __future__ import annotations

from _common import get_chain, write_output

from repro.analysis.figures import figure4
from repro.analysis.report import render_series_table
from repro.core.pipeline import analyze_account_block


def _rebuild_history(builder):
    for block, executed in builder.executed_blocks:
        analyze_account_block(
            executed, height=block.height, timestamp=block.header.timestamp
        )


def test_fig4_ethereum(benchmark):
    chain = get_chain("ethereum")
    assert chain.account_builder is not None
    benchmark(_rebuild_history, chain.account_builder)

    load, single, group = figure4(chain.history, num_buckets=20)
    out = []
    out.append(render_series_table(
        load.series, title="Fig. 4a: transactions per block (Ethereum)",
        value_format="{:10.1f}",
    ))
    out.append(render_series_table(
        single.series,
        title="Fig. 4b: single-transaction conflict rate (weighted)",
    ))
    out.append(render_series_table(
        group.series, title="Fig. 4c: group conflict rate (weighted)",
    ))
    write_output("fig4_ethereum", "\n\n".join(out))

    # Shape assertions (paper-vs-measured recorded in EXPERIMENTS.md).
    regular = load.series["regular_txs"]
    all_txs = load.series["all_txs"]
    assert regular.values[-1] > 4 * regular.values[0]  # load growth
    assert all_txs.tail_mean() > 1.5 * regular.tail_mean()  # internals

    tx_weighted = single.series["tx_weighted"]
    gas_weighted = single.series["gas_weighted"]
    early = sum(tx_weighted.values[:5]) / 5
    late = tx_weighted.tail_mean(5)
    assert early > late  # declining single conflict rate
    assert 0.45 < late < 0.75  # ~0.6 regime
    assert gas_weighted.overall_mean < tx_weighted.overall_mean

    group_tx = group.series["tx_weighted"]
    assert group_tx.values[0] > group_tx.tail_mean(5)  # decline
    assert 0.12 < group_tx.tail_mean(5) < 0.35  # ~0.2 plateau
