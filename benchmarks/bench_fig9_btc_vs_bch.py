"""Fig. 9: Bitcoin vs. Bitcoin Cash (§IV-C).

Panels: (a) transactions per block, (b) conflict ratio per block,
(c) absolute LCC size per block.  The paper's point: despite Bitcoin
Cash's bigger blocks (its raison d'être), it carries far fewer
transactions than Bitcoin — and still shows *higher* conflict rates,
evidence of a smaller user base with exchanges producing a larger
traffic share.
"""

from __future__ import annotations

from _common import BENCH_SHAPES, get_chain, write_output

from repro.analysis.figures import figure9
from repro.analysis.report import render_series_table


def test_fig9_btc_vs_bch(benchmark):
    bitcoin = get_chain("bitcoin").history
    bitcoin_cash = get_chain("bitcoin_cash").history
    panels = benchmark(figure9, bitcoin, bitcoin_cash, num_buckets=16)

    out = []
    out.append(render_series_table(
        panels["load"].series,
        title="Fig. 9a: transactions per block",
        value_format="{:10.1f}",
    ))
    out.append(render_series_table(
        panels["single"].series,
        title="Fig. 9b: conflict ratio per block",
    ))
    out.append(render_series_table(
        panels["lcc_absolute"].series,
        title="Fig. 9c: absolute LCC size per block",
        value_format="{:10.2f}",
    ))
    write_output("fig9_btc_vs_bch", "\n\n".join(out))

    btc_scale = BENCH_SHAPES["bitcoin"][1]
    btc_load = panels["load"].series["bitcoin"].tail_mean(5) / btc_scale
    bch_load = panels["load"].series["bitcoin_cash"].tail_mean(5)
    assert btc_load > 5 * bch_load  # BCH far below BTC despite big blocks

    btc_single = panels["single"].series["bitcoin"].tail_mean(5)
    bch_single = panels["single"].series["bitcoin_cash"].tail_mean(5)
    assert bch_single > btc_single  # higher conflict ratio on BCH

    btc_group = panels["group"].series["bitcoin"].tail_mean(5)
    bch_group = panels["group"].series["bitcoin_cash"].tail_mean(5)
    assert bch_group > btc_group
