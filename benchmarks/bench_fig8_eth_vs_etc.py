"""Fig. 8: Ethereum vs. Ethereum Classic, small vs. big blocks (§IV-C).

Panels: (a) transactions per block, (b) single-transaction conflict
rate, (c) group conflict rate.  The paper's point: ETC carries an order
of magnitude fewer transactions than Ethereum yet shows *higher*
conflict rates (group ~0.7 vs ~0.2) — evidence its user base is
relatively smaller.
"""

from __future__ import annotations

from _common import get_chain, write_output

from repro.analysis.figures import figure8
from repro.analysis.report import render_series_table


def test_fig8_eth_vs_etc(benchmark):
    ethereum = get_chain("ethereum").history
    classic = get_chain("ethereum_classic").history
    panels = benchmark(figure8, ethereum, classic, num_buckets=16)

    out = []
    out.append(render_series_table(
        panels["load"].series,
        title="Fig. 8a: transactions per block",
        value_format="{:10.1f}",
    ))
    out.append(render_series_table(
        panels["single"].series,
        title="Fig. 8b: single-transaction conflict rate",
    ))
    out.append(render_series_table(
        panels["group"].series,
        title="Fig. 8c: group conflict rate",
    ))
    write_output("fig8_eth_vs_etc", "\n\n".join(out))

    eth_load = panels["load"].series["ethereum"].tail_mean(5)
    etc_load = panels["load"].series["ethereum_classic"].tail_mean(5)
    assert eth_load > 8 * etc_load  # order-of-magnitude load gap

    eth_single = panels["single"].series["ethereum"].tail_mean(5)
    etc_single = panels["single"].series["ethereum_classic"].tail_mean(5)
    assert etc_single > eth_single  # higher conflict despite lower load

    eth_group = panels["group"].series["ethereum"].tail_mean(5)
    etc_group = panels["group"].series["ethereum_classic"].tail_mean(5)
    assert etc_group > eth_group + 0.2  # considerably so (0.7 vs 0.2)
    assert 0.45 < etc_group < 0.9
    assert 0.1 < eth_group < 0.4
