"""Fig. 6: the 18-transaction intra-block spend chain of block 500000.

Reconstructs the chain, renders it in the figure's style (short hashes,
output values in BTC), and shows that its transactions must execute
sequentially: even the 64-core grouped executor needs 18 time units.
The benchmark times chain construction + TDG + scheduling.
"""

from __future__ import annotations

from _common import write_output

from repro.analysis.examples import figure_6_chain
from repro.chain.hashing import short_hash
from repro.execution.engine import tasks_from_utxo_block
from repro.execution.grouped import GroupedExecutor


def _build_and_schedule():
    transactions, tdg = figure_6_chain()
    tasks = tasks_from_utxo_block(transactions)
    report = GroupedExecutor(cores=64).run(tasks)
    return transactions, tdg, report


def test_fig6_chain(benchmark):
    transactions, tdg, report = benchmark(_build_and_schedule)

    lines = ["Fig. 6: intra-block TXO spend chain (block 500000 analogue)"]
    for step, tx in enumerate(transactions):
        main = tx.outputs[0]
        splinter = (
            f"  splinter {tx.outputs[1].value_in_coins():.5f} BTC"
            if len(tx.outputs) > 1
            else ""
        )
        lines.append(
            f"  {step:2d}  {short_hash(tx.tx_hash)}  "
            f"main {main.value_in_coins():.5f} BTC{splinter}"
        )
    lines.append("")
    lines.append(f"chain length: {tdg.lcc_size} (paper: 18)")
    lines.append(
        f"grouped executor on 64 cores: wall time {report.wall_time:.0f} "
        f"units for {report.num_tasks} transactions (fully sequential)"
    )
    write_output("fig6_chain", "\n".join(lines))

    assert len(transactions) == 18
    assert tdg.lcc_size == 18
    assert report.wall_time == 18.0
