"""Extension (§VII): inter-block concurrency.

The paper leaves inter-block concurrency unexplored.  This bench
measures it on both data models: sliding windows of W consecutive
blocks, comparing block-at-a-time pipelined execution against
window-at-once interleaving under component scheduling.

The two models behave differently, and that contrast is the finding:

* UTXO windows gain — blocks are internally near-parallel, so
  absorbing each block's LCC tail across the barrier helps;
* account windows gain little or nothing — hot exchange addresses
  chain the window's components together, so interleaving cannot beat
  the pipeline.  This is why the paper's intra-block focus is the
  right first-order target for account chains.
"""

from __future__ import annotations

import statistics

from _common import get_chain, write_output

from repro.analysis.report import render_table
from repro.core.interblock import sliding_window_speedups

CORES = 64
WINDOW = 4


def _utxo_blocks():
    chain = get_chain("bitcoin")
    # The analysis needs raw transaction lists; regenerate the ledger
    # via the account of blocks kept on the history? The history keeps
    # metrics only, so rebuild a small ledger here.
    from repro.workload.utxo_workload import build_utxo_chain
    from repro.workload.profiles import BITCOIN

    ledger = build_utxo_chain(BITCOIN, num_blocks=40, seed=7, scale=0.15)
    return [list(block.transactions) for block in ledger][-24:]


def _account_blocks():
    chain = get_chain("ethereum")
    blocks = [
        executed
        for _block, executed in chain.account_builder.executed_blocks
        if sum(1 for i in executed if not i.is_coinbase) >= 20
    ]
    return blocks[-24:]


def test_interblock_concurrency(benchmark):
    utxo_blocks = _utxo_blocks()
    account_blocks = _account_blocks()

    def run():
        utxo = sliding_window_speedups(
            utxo_blocks, window=WINDOW, cores=CORES, model="utxo"
        )
        account = sliding_window_speedups(
            account_blocks, window=WINDOW, cores=CORES, model="account"
        )
        return utxo, account

    utxo_speedups, account_speedups = benchmark(run)

    def stats(values):
        return (
            f"{min(values):.2f}",
            f"{statistics.mean(values):.2f}",
            f"{max(values):.2f}",
        )

    write_output(
        "interblock",
        render_table(
            ["model", "windows", "min", "mean", "max"],
            [
                ("utxo (bitcoin)", len(utxo_speedups), *stats(utxo_speedups)),
                ("account (ethereum)", len(account_speedups),
                 *stats(account_speedups)),
            ],
            title=(
                f"Inter-block speed-up, window={WINDOW}, cores={CORES} "
                "(pipeline / interleaved makespan)"
            ),
        ),
    )

    assert utxo_speedups and account_speedups
    # UTXO chains benefit from interleaving across block barriers.
    assert statistics.mean(utxo_speedups) > 1.05
    # Account chains are limited by hot-address chaining.
    assert statistics.mean(account_speedups) < statistics.mean(utxo_speedups)
