"""Extension: execution speed-ups at the network layer.

A node validates (executes) a block before relaying it, so execution
time is paid at *every gossip hop*.  This bench propagates a block
through a simulated 200-node overlay under sequential validation and
under the paper's 8-core group-scheduled validation, and converts the
coverage times into orphan-rate estimates — the network-level payoff of
the paper's speed-ups that neither Eq. 1 nor Eq. 2 captures.
"""

from __future__ import annotations

import random

from _common import get_chain, write_output

from repro.analysis.figures import conflict_series
from repro.analysis.report import render_table
from repro.core.speedup import group_speedup_bound
from repro.network.gossip import GossipNetwork, orphan_rate_estimate

NUM_NODES = 200
DEGREE = 8
LINK_LATENCY = 0.05          # 50 ms mean one-way
SEQUENTIAL_VALIDATION = 0.35  # seconds to execute one block sequentially
BLOCK_INTERVAL = 14.0         # Ethereum-like
CORES = 8


def test_propagation_speedup(benchmark):
    history = get_chain("ethereum").history
    group = conflict_series(history, metric="group", num_buckets=8)
    late_l = group.series["tx_weighted"].tail_mean(3)
    speedup = group_speedup_bound(CORES, min(1.0, late_l))

    network = GossipNetwork.random_topology(
        NUM_NODES,
        degree=DEGREE,
        latency_mean=LINK_LATENCY,
        rng=random.Random(11),
    )

    def run():
        slow = network.propagate(
            "n0", validation_delay=SEQUENTIAL_VALIDATION
        )
        fast = network.propagate(
            "n0", validation_delay=SEQUENTIAL_VALIDATION / speedup
        )
        return slow, fast

    slow, fast = benchmark(run)

    rows = []
    for label, result in (("sequential", slow), (f"{speedup:.1f}x", fast)):
        t90 = result.coverage_time(0.9)
        rows.append(
            (
                label,
                f"{result.validation_delay * 1000:.0f} ms",
                f"{t90:.2f} s",
                f"{orphan_rate_estimate(t90, BLOCK_INTERVAL):.4f}",
            )
        )
    write_output(
        "propagation",
        render_table(
            ["validation", "per-hop delay", "90% coverage",
             "orphan rate est."],
            rows,
            title=(
                f"Block propagation, {NUM_NODES} nodes, degree {DEGREE}, "
                f"{LINK_LATENCY * 1000:.0f} ms links, "
                f"{BLOCK_INTERVAL:.0f} s interval"
            ),
        ),
    )

    assert slow.reached == NUM_NODES and fast.reached == NUM_NODES
    assert fast.coverage_time(0.9) < slow.coverage_time(0.9)
    assert orphan_rate_estimate(
        fast.coverage_time(0.9), BLOCK_INTERVAL
    ) < orphan_rate_estimate(slow.coverage_time(0.9), BLOCK_INTERVAL)
