"""Fig. 5: Bitcoin's transaction load and conflict rates over time.

Panels: (a) transactions and input TXOs per block; (b) single-tx
conflict rate; (c) group conflict rate.  The benchmark times the UTXO
analysis pipeline over the synthetic Bitcoin ledger's recent blocks.

Shape targets from the paper: >2000 txs and ~4000 input TXOs per block
late in the history; single rate ~0.13-0.15; group rate ~0.01.
"""

from __future__ import annotations

from _common import BENCH_SHAPES, get_chain, write_output

from repro.analysis.figures import figure5
from repro.analysis.report import render_series_table


def _history_stats(history):
    records = history.non_empty_records()
    return sum(r.metrics.lcc_size for r in records)


def test_fig5_bitcoin(benchmark):
    chain = get_chain("bitcoin")
    benchmark(_history_stats, chain.history)

    load, single, group = figure5(chain.history, num_buckets=20)
    out = []
    out.append(render_series_table(
        load.series, title="Fig. 5a: transactions / input TXOs per block",
        value_format="{:10.1f}",
    ))
    out.append(render_series_table(
        single.series, title="Fig. 5b: single-transaction conflict rate",
    ))
    out.append(render_series_table(
        group.series, title="Fig. 5c: group conflict rate",
    ))
    write_output("fig5_bitcoin", "\n\n".join(out))

    scale = BENCH_SHAPES["bitcoin"][1]
    regular = load.series["regular_txs"]
    input_txos = load.series["input_txos"]
    # Late-history load: >2000 tx/block at full scale.
    assert regular.tail_mean(4) * (1 / scale) > 1200
    # More input TXOs than transactions (paper: ~4000 vs ~2000).
    assert input_txos.tail_mean(4) > regular.tail_mean(4)

    single_tx = single.series["tx_weighted"]
    group_tx = group.series["tx_weighted"]
    assert 0.05 < single_tx.tail_mean(5) < 0.30   # ~0.13-0.15 regime
    assert group_tx.tail_mean(5) < 0.05           # ~0.01 regime
    assert group_tx.tail_mean(5) < single_tx.tail_mean(5)
