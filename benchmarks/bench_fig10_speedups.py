"""Fig. 10: potential execution speed-ups for Ethereum.

Panel (a) combines Eq. 1 with the single-transaction conflict series of
Fig. 4b; panel (b) combines Eq. 2 with the group conflict series of
Fig. 4c; both for 4, 8 and 64 cores.

Shape targets from the paper: single-transaction speed-ups are modest
(1-2x, occasionally below 1x); group speed-ups reach ~6x at 8 cores and
~8x at 64 cores; and the paper's headline — "up to 6x speed-ups in
Ethereum ... using 8 cores".
"""

from __future__ import annotations

from _common import get_chain, write_output

from repro.analysis.figures import figure10
from repro.analysis.report import render_series_table


def test_fig10_speedups(benchmark):
    history = get_chain("ethereum").history
    panels = benchmark(figure10, history, cores=(4, 8, 64), num_buckets=16)

    out = []
    out.append(render_series_table(
        panels["speculative"].series,
        title="Fig. 10a: single-transaction concurrency speed-ups (Eq. 1)",
        value_format="{:10.3f}",
    ))
    out.append(render_series_table(
        panels["grouped"].series,
        title="Fig. 10b: group concurrency speed-ups (Eq. 2)",
        value_format="{:10.3f}",
    ))
    write_output("fig10_speedups", "\n\n".join(out))

    spec8 = panels["speculative"].series["8_cores"]
    group8 = panels["grouped"].series["8_cores"]
    group64 = panels["grouped"].series["64_cores"]

    # Panel (a): modest speed-ups, between ~1x and ~2.5x.
    assert all(0.8 <= value <= 2.5 for value in spec8.values)

    # Panel (b): group concurrency is the big win.
    assert max(group8.values) > 2.0 * max(spec8.values)
    peak8 = max(group8.values)
    assert 3.0 <= peak8 <= 8.0  # the "up to 6x with 8 cores" regime
    assert max(group64.values) >= peak8  # 64 cores extend the ceiling
    assert max(group64.values) <= 64.0

    # The late-history plateau (l ~ 0.2) implies ~4-6x at 8 cores.
    assert 2.5 <= group8.tail_mean(5) <= 7.0
