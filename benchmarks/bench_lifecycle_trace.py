"""Lifecycle tracing overhead bench: the end-to-end pipeline with the
causal trace layer on, off, and absent.

Drives the full transaction pipeline (mempool → gossip → consensus →
execution, :func:`repro.obs.lifecycle_run.run_lifecycle`) on a seeded
Ethereum-profile chain and gates the two overhead budgets from the
lifecycle-tracing issue, writing ``BENCH_lifecycle_trace.json`` at the
repo root (plus a summary under ``benchmarks/output/``):

1. **Enabled overhead ≤ 10%** — the same fully-instrumented replay
   with the real :class:`~repro.obs.lifecycle.LifecycleTracer` vs the
   no-op lifecycle tracer (registry, spans and flight recorder live on
   both sides, min of several repeats).  This isolates the cost of the
   lifecycle layer itself: causal event construction, monotonic
   clamping, and the per-stage histogram observations (metric handles
   are cached per stage, which is what keeps this inside the budget).
2. **Disabled overhead ≤ 1%** — with observability uninstalled the
   call sites reduce to no-op guard checks.  The guard cost is
   measured directly (per-call wall time of the exact disabled
   call-site pattern) and charged against the disabled pipeline run at
   twice the enabled run's event count — a deliberate overestimate;
   even so it must stay under 1% of the disabled run.

The stitched-trace invariants (one closed monotonic trace per admitted
transaction) are asserted on the instrumented run before timing is
trusted, so the bench cannot pass by silently tracing nothing.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from _common import write_output

from repro import obs
from repro.obs.lifecycle import NOOP_LIFECYCLE, LifecycleTracer
from repro.obs.lifecycle_run import run_lifecycle
from repro.obs.metrics import MetricsRegistry
from repro.workload.profiles import ETHEREUM

BENCH_JSON = Path(__file__).resolve().parent.parent / (
    "BENCH_lifecycle_trace.json"
)

NUM_BLOCKS = 8
SEED = 2020
CORES = 4
REPEATS = 5
ENABLED_BUDGET = 0.10
DISABLED_BUDGET = 0.01
GUARD_CALL_FACTOR = 2  # charge twice the observed event count


def _pipeline():
    return run_lifecycle(ETHEREUM, blocks=NUM_BLOCKS, seed=SEED,
                         cores=CORES)


def _run_instrumented():
    """Full instrumentation with the real lifecycle tracer."""
    registry = MetricsRegistry()
    with obs.instrumented(
        registry=registry, lifecycle=LifecycleTracer(registry=registry)
    ):
        started = time.perf_counter()
        result = _pipeline()
        elapsed = time.perf_counter() - started
        events = registry.counter("lifecycle.events").value
    return elapsed, result, events


def _run_noop_lifecycle():
    """Identical instrumentation, lifecycle layer swapped for the no-op."""
    with obs.instrumented(lifecycle=NOOP_LIFECYCLE):
        started = time.perf_counter()
        _pipeline()
        return time.perf_counter() - started


def _run_disabled():
    """Observability fully uninstalled — the shipped default."""
    obs.uninstall()
    started = time.perf_counter()
    result = _pipeline()
    elapsed = time.perf_counter() - started
    assert result.traces == ()  # nothing recorded when disabled
    return elapsed


def _guard_cost_per_call():
    """Wall cost of one disabled call-site guard (median of 3)."""
    calls = 200_000
    obs.uninstall()
    samples = []
    for _ in range(3):
        started = time.perf_counter()
        for _ in range(calls):
            life = obs.lifecycle()
            if life.enabled:  # pragma: no cover - disabled by design
                raise AssertionError("lifecycle unexpectedly enabled")
        samples.append((time.perf_counter() - started) / calls)
    samples.sort()
    return samples[1]


def test_lifecycle_trace_overhead_budgets():
    # -- correctness first: the instrumented run must actually trace --
    elapsed, result, events = _run_instrumented()
    assert result.admitted > 0
    assert len(result.traces) == result.admitted
    assert result.open == 0
    assert all(t.is_monotonic() for t in result.traces)
    assert events > result.admitted  # several stages per transaction

    # -- enabled overhead: real vs no-op lifecycle tracer -------------
    enabled = min(
        [elapsed] + [_run_instrumented()[0] for _ in range(REPEATS - 1)]
    )
    noop = min(_run_noop_lifecycle() for _ in range(REPEATS))
    enabled_overhead = (enabled - noop) / noop if noop > 0 else 0.0
    assert enabled_overhead <= ENABLED_BUDGET, (
        f"lifecycle enabled overhead {enabled_overhead:.1%} exceeds "
        f"{ENABLED_BUDGET:.0%} budget "
        f"(enabled {enabled:.4f}s vs no-op {noop:.4f}s)"
    )

    # -- disabled overhead: guard cost charged to the disabled run ----
    disabled = min(_run_disabled() for _ in range(REPEATS))
    guard_cost = _guard_cost_per_call()
    charged_calls = GUARD_CALL_FACTOR * events
    disabled_overhead = (
        charged_calls * guard_cost / disabled if disabled > 0 else 0.0
    )
    assert disabled_overhead <= DISABLED_BUDGET, (
        f"lifecycle disabled overhead {disabled_overhead:.2%} exceeds "
        f"{DISABLED_BUDGET:.0%} budget ({charged_calls:.0f} guard "
        f"calls at {guard_cost * 1e9:.0f} ns against "
        f"{disabled:.4f}s)"
    )

    payload = {
        "bench": "lifecycle_trace",
        "workload": {
            "chain": "ethereum",
            "blocks": NUM_BLOCKS,
            "cores": CORES,
            "seed": SEED,
        },
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "traces": {
            "admitted": result.admitted,
            "committed": result.committed,
            "dropped": result.dropped,
            "stage_events": events,
        },
        "enabled_overhead": {
            "enabled_seconds": enabled,
            "noop_lifecycle_seconds": noop,
            "overhead_fraction": enabled_overhead,
            "budget": ENABLED_BUDGET,
            "repeats": REPEATS,
        },
        "disabled_overhead": {
            "disabled_seconds": disabled,
            "guard_seconds_per_call": guard_cost,
            "charged_calls": charged_calls,
            "overhead_fraction": disabled_overhead,
            "budget": DISABLED_BUDGET,
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    write_output("lifecycle_trace", "\n".join([
        f"lifecycle trace bench: ethereum, {NUM_BLOCKS} blocks, "
        f"{CORES} cores",
        "",
        f"traces: {result.admitted} admitted, {result.committed} "
        f"committed, {result.dropped} dropped, "
        f"{events:.0f} stage events",
        f"enabled overhead:  {enabled_overhead:.2%} "
        f"(enabled {enabled:.4f}s, no-op lifecycle {noop:.4f}s, "
        f"budget {ENABLED_BUDGET:.0%})",
        f"disabled overhead: {disabled_overhead:.3%} "
        f"({charged_calls:.0f} guard calls at "
        f"{guard_cost * 1e9:.0f} ns, disabled run {disabled:.4f}s, "
        f"budget {DISABLED_BUDGET:.0%})",
    ]))
