"""Serial vs. parallel analysis-pipeline throughput on a 2k-block chain.

Times :func:`repro.core.parallel.analyze_chain` over a 2048-block
synthetic Bitcoin history under every backend at ``jobs=4``, checks that
all of them produce identical records, and writes the speed-up
trajectory to ``BENCH_parallel_pipeline.json`` at the repo root (plus a
human-readable summary under ``benchmarks/output/``).

Two speed-up figures are recorded:

* ``measured`` — wall-clock serial / parallel on *this* machine.  Only
  meaningful with >= ``jobs`` idle cores; single-core CI boxes will
  hover around (or below) 1.0x.
* ``projected_at_jobs`` — serial time divided by the LPT makespan of
  the *measured serial per-chunk times* over ``jobs`` workers (via
  :func:`repro.core.scheduling.lpt_schedule`).  This is the fan-out
  ceiling implied by the actual chunk-time distribution, ignoring IPC;
  the process backend approaches it as cores become available because
  fork-shared inputs keep per-chunk dispatch cost to an index pair.

The equivalence assertion (identical ``BlockRecord`` sequences across
backends) is the hard gate; the >= 1.5x speed-up gate applies to the
measured number when the host has the cores, and to the projection
otherwise (recorded as such — the JSON always states ``cpu_count``).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from _common import write_output

from repro import obs
from repro.core.parallel import (
    analyze_chain,
    analyze_chunk,
    chunk_bounds,
    default_chunk_size,
    utxo_block_inputs,
)
from repro.core.scheduling import lpt_schedule
from repro.workload.profiles import BITCOIN
from repro.workload.utxo_workload import build_utxo_chain

BENCH_JSON = Path(__file__).resolve().parent.parent / (
    "BENCH_parallel_pipeline.json"
)

NUM_BLOCKS = 2048
SEED = 2020
SCALE = 0.3
JOBS = 4


def _build_inputs():
    ledger = build_utxo_chain(
        BITCOIN, num_blocks=NUM_BLOCKS, seed=SEED, scale=SCALE
    )
    return utxo_block_inputs(ledger)


def _timed_run(inputs, **kwargs):
    started = time.perf_counter()
    history = analyze_chain(
        inputs, data_model="utxo", name="bitcoin", **kwargs
    )
    return history, time.perf_counter() - started


def test_parallel_pipeline_speedup():
    inputs = _build_inputs()
    total_txs = sum(len(item.payload) for item in inputs)

    # Serial reference, chunked exactly as the jobs=4 fan-out would be,
    # so the per-chunk times feed the LPT projection directly.
    chunk_size = default_chunk_size(len(inputs), JOBS)
    bounds = chunk_bounds(len(inputs), chunk_size)
    serial_records: list = []
    chunk_seconds: list[float] = []
    serial_started = time.perf_counter()
    for start, stop in bounds:
        records, elapsed = analyze_chunk("utxo", inputs[start:stop])
        serial_records.extend(records)
        chunk_seconds.append(elapsed)
    serial_seconds = time.perf_counter() - serial_started

    serial_history, _ = _timed_run(inputs, backend="serial")
    assert serial_history.records == serial_records

    with obs.instrumented() as state:
        process_history, process_seconds = _timed_run(
            inputs, backend="process", jobs=JOBS, chunk_size=chunk_size
        )
    thread_history, thread_seconds = _timed_run(
        inputs, backend="thread", jobs=JOBS, chunk_size=chunk_size
    )

    # The hard equivalence gate: every backend, byte-identical records.
    assert process_history.records == serial_records
    assert thread_history.records == serial_records

    measured_process = serial_seconds / process_seconds
    measured_thread = serial_seconds / thread_seconds
    makespan = lpt_schedule(chunk_seconds, JOBS).makespan
    projected = serial_seconds / max(makespan, 1e-9)

    cpu_count = os.cpu_count() or 1
    snapshot = state.registry.snapshot()
    result = {
        "bench": "parallel_pipeline",
        "chain": "bitcoin",
        "blocks": len(inputs),
        "transactions": total_txs,
        "seed": SEED,
        "scale": SCALE,
        "jobs": JOBS,
        "chunk_size": chunk_size,
        "chunks": len(bounds),
        "cpu_count": cpu_count,
        "platform": platform.platform(),
        "records_identical_across_backends": True,
        "serial_seconds": round(serial_seconds, 4),
        "process_seconds": round(process_seconds, 4),
        "thread_seconds": round(thread_seconds, 4),
        "measured_speedup_process": round(measured_process, 3),
        "measured_speedup_thread": round(measured_thread, 3),
        "projected_speedup_at_jobs": round(projected, 3),
        "projection_model": (
            "serial time / LPT makespan of measured serial chunk times "
            f"over {JOBS} workers (ignores IPC; fork-shared inputs make "
            "dispatch an index pair)"
        ),
        "obs_counters": {
            key: value
            for key, value in snapshot["counters"].items()
            if key.startswith("pipeline.parallel")
        },
        "obs_chunk_seconds": snapshot["histograms"].get(
            "pipeline.parallel.chunk_seconds{backend=process}", {}
        ),
    }
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")

    lines = [
        "parallel analysis pipeline — serial vs fan-out "
        f"({len(inputs)} blocks, {total_txs} txs, jobs={JOBS}, "
        f"chunk={chunk_size})",
        f"  host cores          : {cpu_count}",
        f"  serial              : {serial_seconds:8.3f} s",
        f"  process (jobs={JOBS})   : {process_seconds:8.3f} s  "
        f"({measured_process:.2f}x)",
        f"  thread  (jobs={JOBS})   : {thread_seconds:8.3f} s  "
        f"({measured_thread:.2f}x)",
        f"  projected at {JOBS} cores: {projected:8.2f} x  (LPT over "
        "measured chunk times)",
        "  records identical across backends: yes",
    ]
    write_output("parallel_pipeline", "\n".join(lines))

    # Speed-up gate: measured where the hardware allows it, otherwise
    # the chunk-time projection (single-core CI cannot exhibit real
    # parallel wall-clock gains).
    if cpu_count >= JOBS:
        assert measured_process >= 1.5, result
    else:
        assert projected >= 1.5, result
