"""Fig. 1 + §V-A worked examples: the paper's two Ethereum blocks.

Regenerates the TDGs of blocks 1000007 and 1000124, their conflict
rates, and the speed-up numbers the paper works through by hand,
benchmarking TDG construction on the Fig. 1b block.
"""

from __future__ import annotations

import pytest
from _common import write_output

from repro.analysis.examples import (
    figure_1a_block,
    figure_1b_block,
    figure_1b_edges,
)
from repro.analysis.report import format_rate, render_table
from repro.core.speedup import speculative_speedup_exact
from repro.core.tdg import account_tdg_from_edges


def test_fig1_examples(benchmark):
    tdg = benchmark(account_tdg_from_edges, figure_1b_edges())
    assert tdg.lcc_size == 9

    a = figure_1a_block()
    b = figure_1b_block()
    rows = [
        (
            "1000007 (Fig. 1a)",
            a.tdg.num_transactions,
            len(a.tdg.groups),
            format_rate(a.metrics.single_conflict_rate),
            format_rate(a.metrics.group_conflict_rate),
            "40% / 40%",
        ),
        (
            "1000124 (Fig. 1b)",
            b.total_with_coinbase,
            len(b.tdg.groups) + 1,  # + coinbase component, as the paper counts
            format_rate(b.single_conflict_rate_with_coinbase),
            format_rate(b.group_conflict_rate_with_coinbase),
            "87.5% / 56.25%",
        ),
    ]
    table = render_table(
        ["block", "txs", "components", "single rate", "group rate",
         "paper reports"],
        rows,
        title="Fig. 1 worked examples",
    )

    speedups = render_table(
        ["block", "cores", "model speed-up", "paper reports"],
        [
            ("1000007", "n >= 5",
             f"{speculative_speedup_exact(5, 8, 0.4):.4f}", "5/3 = 1.67"),
            ("1000124", "n >= 16",
             f"{speculative_speedup_exact(16, 16, 0.875):.4f}",
             "16/15 = 1.07"),
            ("1000124", "8-15",
             f"{speculative_speedup_exact(16, 8, 0.875):.4f}", "1.00"),
            ("1000124", "4",
             f"{speculative_speedup_exact(16, 4, 0.875):.4f}", "< 1"),
        ],
        title="§V-A worked speed-ups (Eq. 1, exact phase counting)",
    )
    write_output("fig1_examples", table + "\n\n" + speedups)

    assert a.metrics.single_conflict_rate == pytest.approx(0.40)
    assert b.single_conflict_rate_with_coinbase == pytest.approx(0.875)
    assert b.group_conflict_rate_with_coinbase == pytest.approx(0.5625)
    assert speculative_speedup_exact(5, 8, 0.4) == pytest.approx(5 / 3)
    assert speculative_speedup_exact(16, 16, 0.875) == pytest.approx(16 / 15)
