"""UTXO data-model substrate (Bitcoin, Bitcoin Cash, Litecoin, Dogecoin)."""

from repro.utxo.script import (
    ScriptError,
    ScriptResult,
    can_spend,
    evaluate,
    multisig_script,
    p2pkh_script,
)
from repro.utxo.transaction import (
    TxOutputSpec,
    UTXOTransaction,
    make_coinbase,
    make_transaction,
)
from repro.utxo.txo import COIN, TXO, OutPoint
from repro.utxo.utxo_set import BlockUndo, UTXOSet
from repro.utxo.validation import (
    BITCOIN_CASH_POLICY,
    BITCOIN_POLICY,
    DOGECOIN_POLICY,
    LITECOIN_POLICY,
    ChainPolicy,
    validate_block_transactions,
)

__all__ = [
    "ScriptError",
    "ScriptResult",
    "can_spend",
    "evaluate",
    "multisig_script",
    "p2pkh_script",
    "TxOutputSpec",
    "UTXOTransaction",
    "make_coinbase",
    "make_transaction",
    "COIN",
    "TXO",
    "OutPoint",
    "BlockUndo",
    "UTXOSet",
    "BITCOIN_CASH_POLICY",
    "BITCOIN_POLICY",
    "DOGECOIN_POLICY",
    "LITECOIN_POLICY",
    "ChainPolicy",
    "validate_block_transactions",
]
