"""UTXO transactions.

A transaction lists the outpoints it spends and the outputs it creates.
Hashes are derived deterministically from the transaction content so the
same workload seed always yields the same chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.chain.hashing import hash_fields
from repro.utxo.txo import TXO, OutPoint


@dataclass(frozen=True)
class TxOutputSpec:
    """Specification of an output to create: a value locked to an owner."""

    value: int
    owner: str
    script: str = ""

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("output value must be non-negative")
        if not self.owner:
            raise ValueError("output owner must be non-empty")


@dataclass(frozen=True)
class UTXOTransaction:
    """A UTXO-model transaction.

    Attributes:
        inputs: outpoints consumed; empty exactly when ``is_coinbase``.
        outputs: TXOs created, indexed in order.
        tx_hash: content hash, computed at construction.
        fee: implicit miner fee (inputs total minus outputs total); it is
            stored denormalised so validation can be re-checked without
            the UTXO set.
    """

    inputs: tuple[OutPoint, ...]
    outputs: tuple[TXO, ...]
    tx_hash: str
    fee: int = 0
    size_bytes: int = field(default=250, compare=False)

    def __post_init__(self) -> None:
        if not self.outputs:
            raise ValueError("a transaction must create at least one output")
        if self.fee < 0:
            raise ValueError("fee must be non-negative")
        for index, txo in enumerate(self.outputs):
            if txo.outpoint.tx_hash != self.tx_hash:
                raise ValueError("output outpoint does not reference this tx")
            if txo.outpoint.index != index:
                raise ValueError("output indices must be contiguous")

    @property
    def is_coinbase(self) -> bool:
        return not self.inputs

    def outpoints_created(self) -> tuple[OutPoint, ...]:
        """Outpoints for every output this transaction creates."""
        return tuple(txo.outpoint for txo in self.outputs)

    def total_output_value(self) -> int:
        return sum(txo.value for txo in self.outputs)


def make_transaction(
    inputs: Sequence[OutPoint],
    outputs: Sequence[TxOutputSpec],
    *,
    fee: int = 0,
    nonce: object = 0,
    size_bytes: int = 250,
) -> UTXOTransaction:
    """Construct a transaction, deriving its hash and output outpoints.

    Args:
        inputs: outpoints to spend; empty creates a coinbase.
        outputs: output specifications in order.
        fee: declared fee (inputs minus outputs); validation checks it.
        nonce: extra entropy mixed into the hash so otherwise identical
            transactions (e.g. two coinbases with equal reward) still get
            distinct hashes.
        size_bytes: simulated serialised size, used as the block-size
            weight in aggregate metrics.
    """
    if not outputs:
        raise ValueError("a transaction must create at least one output")
    tx_hash = hash_fields(
        "utxo-tx",
        tuple((op.tx_hash, op.index) for op in inputs),
        tuple((spec.value, spec.owner, spec.script) for spec in outputs),
        fee,
        nonce,
    )
    txos = tuple(
        TXO(
            outpoint=OutPoint(tx_hash=tx_hash, index=index),
            value=spec.value,
            owner=spec.owner,
            script=spec.script,
        )
        for index, spec in enumerate(outputs)
    )
    return UTXOTransaction(
        inputs=tuple(inputs),
        outputs=txos,
        tx_hash=tx_hash,
        fee=fee,
        size_bytes=size_bytes,
    )


def make_coinbase(
    *,
    reward: int,
    miner: str,
    height: int,
    size_bytes: int = 150,
) -> UTXOTransaction:
    """Create the coinbase transaction for a block at *height*."""
    return make_transaction(
        inputs=(),
        outputs=(TxOutputSpec(value=reward, owner=miner),),
        nonce=("coinbase", height, miner),
        size_bytes=size_bytes,
    )
