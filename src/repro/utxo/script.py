"""A miniature output-locking script language.

Bitcoin "does not support smart contracts, but there is a simple
scripting language for transactions" (§II-B).  The paper conjectures that
higher-level protocols running over this scripting layer are one source
of the surprisingly frequent intra-block spend chains.  We model a tiny
stack language sufficient to express pay-to-pubkey-hash, multisig-style
thresholds, and anyone-can-spend outputs, so workloads can tag outputs
with protocol roles.

Grammar (whitespace-separated tokens, executed left to right):

    PUSH:<literal>    push a string literal
    DUP               duplicate top of stack
    EQUAL             pop two, push "1" if equal else "0"
    VERIFY            pop; fail script unless "1"
    CHECKSIG:<owner>  push "1" if the spender equals <owner> else "0"
    THRESHOLD:<k>:<a,b,c>  push "1" if spender is one of the listed
                      owners and k >= 1 (simplified multisig)

The empty script is anyone-can-spend.  A script *succeeds* when execution
completes without VERIFY failing and the top of stack (if any) is "1".
"""

from __future__ import annotations

from dataclasses import dataclass


class ScriptError(Exception):
    """Raised when a script is malformed or fails verification."""


@dataclass(frozen=True)
class ScriptResult:
    """Outcome of a script evaluation."""

    success: bool
    steps: int


def p2pkh_script(owner: str) -> str:
    """The standard pay-to-owner locking script."""
    return f"CHECKSIG:{owner} VERIFY PUSH:1"


def multisig_script(threshold: int, owners: list[str]) -> str:
    """A simplified k-of-n locking script."""
    if threshold < 1 or threshold > len(owners):
        raise ScriptError("threshold out of range")
    joined = ",".join(owners)
    return f"THRESHOLD:{threshold}:{joined} VERIFY PUSH:1"


def evaluate(script: str, spender: str) -> ScriptResult:
    """Execute *script* on behalf of *spender*.

    Returns a :class:`ScriptResult`; scripts never raise on mere
    verification failure, only on malformed programs.
    """
    stack: list[str] = []
    tokens = script.split()
    steps = 0
    for token in tokens:
        steps += 1
        if token.startswith("PUSH:"):
            stack.append(token[len("PUSH:"):])
        elif token == "DUP":
            if not stack:
                raise ScriptError("DUP on empty stack")
            stack.append(stack[-1])
        elif token == "EQUAL":
            if len(stack) < 2:
                raise ScriptError("EQUAL needs two operands")
            a, b = stack.pop(), stack.pop()
            stack.append("1" if a == b else "0")
        elif token == "VERIFY":
            if not stack:
                raise ScriptError("VERIFY on empty stack")
            if stack.pop() != "1":
                return ScriptResult(success=False, steps=steps)
        elif token.startswith("CHECKSIG:"):
            owner = token[len("CHECKSIG:"):]
            stack.append("1" if spender == owner else "0")
        elif token.startswith("THRESHOLD:"):
            parts = token.split(":", 2)
            if len(parts) != 3:
                raise ScriptError(f"malformed THRESHOLD token {token!r}")
            try:
                threshold = int(parts[1])
            except ValueError as exc:
                raise ScriptError("THRESHOLD k must be an integer") from exc
            owners = parts[2].split(",") if parts[2] else []
            if threshold < 1 or threshold > len(owners):
                raise ScriptError("THRESHOLD k out of range")
            stack.append("1" if spender in owners else "0")
        else:
            raise ScriptError(f"unknown token {token!r}")
    if not tokens:
        return ScriptResult(success=True, steps=0)
    success = bool(stack) and stack[-1] == "1"
    return ScriptResult(success=success, steps=steps)


def can_spend(script: str, spender: str) -> bool:
    """True when *spender* satisfies the locking *script*."""
    return evaluate(script, spender).success
