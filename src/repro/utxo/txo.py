"""Transaction outputs (TXOs) and outpoints for the UTXO data model.

In the UTXO model (§II-A of the paper) every transaction consumes
previously created outputs and creates fresh ones.  An *outpoint* is the
canonical reference to an output: the creating transaction's hash plus
the output index.  The paper's UTXO TDG draws an edge ``a -> b`` exactly
when some outpoint created by ``a`` appears among the inputs of ``b``
within the same block.
"""

from __future__ import annotations

from dataclasses import dataclass

# Values are in integer base units (satoshi-style) to avoid floating-point
# drift in value-conservation checks.
COIN = 100_000_000


@dataclass(frozen=True, order=True)
class OutPoint:
    """A reference to the *index*-th output of transaction *tx_hash*."""

    tx_hash: str
    index: int

    def __post_init__(self) -> None:
        if not self.tx_hash:
            raise ValueError("tx_hash must be non-empty")
        if self.index < 0:
            raise ValueError("output index must be non-negative")

    def __str__(self) -> str:
        return f"{self.tx_hash}:{self.index}"


@dataclass(frozen=True)
class TXO:
    """A transaction output: a value locked to an address.

    The locking condition is modelled as a bare address plus an optional
    script (see :mod:`repro.utxo.script`); full signature checking is out
    of scope for a concurrency study, but the script hook lets workloads
    attach higher-level protocols, one of the conflict sources the paper
    conjectures for Bitcoin.
    """

    outpoint: OutPoint
    value: int
    owner: str
    script: str = ""

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("TXO value must be non-negative")
        if not self.owner:
            raise ValueError("TXO owner must be non-empty")

    def value_in_coins(self) -> float:
        """The output value expressed in whole coins (display only)."""
        return self.value / COIN
