"""Block-level validation rules for UTXO chains.

This module layers chain-policy checks (coinbase placement, block size,
script satisfaction) on top of the per-transaction checks already
enforced by :class:`repro.utxo.utxo_set.UTXOSet`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.chain.errors import ValidationError
from repro.utxo.script import can_spend
from repro.utxo.transaction import UTXOTransaction
from repro.utxo.utxo_set import UTXOSet


@dataclass(frozen=True)
class ChainPolicy:
    """Consensus-policy parameters of a UTXO chain.

    These mirror the knobs that differentiate the Bitcoin family in
    Table I of the paper: Bitcoin Cash raised ``max_block_bytes`` from
    1 MB to 8 MB, Litecoin and Dogecoin changed the block interval.
    """

    name: str
    max_block_bytes: int = 1_000_000
    block_interval_seconds: float = 600.0
    coinbase_reward: int = 50 * 100_000_000
    require_scripts: bool = False

    def __post_init__(self) -> None:
        if self.max_block_bytes <= 0:
            raise ValueError("max_block_bytes must be positive")
        if self.block_interval_seconds <= 0:
            raise ValueError("block_interval_seconds must be positive")


BITCOIN_POLICY = ChainPolicy(name="bitcoin", max_block_bytes=1_000_000)
BITCOIN_CASH_POLICY = ChainPolicy(name="bitcoin_cash", max_block_bytes=8_000_000)
LITECOIN_POLICY = ChainPolicy(
    name="litecoin", max_block_bytes=1_000_000, block_interval_seconds=150.0
)
DOGECOIN_POLICY = ChainPolicy(
    name="dogecoin", max_block_bytes=1_000_000, block_interval_seconds=60.0
)


def validate_block_transactions(
    transactions: Sequence[UTXOTransaction],
    utxo_set: UTXOSet,
    policy: ChainPolicy,
    *,
    spenders: dict[str, str] | None = None,
) -> None:
    """Validate a block's transaction list against *utxo_set* and *policy*.

    The UTXO set is not mutated.  ``spenders`` optionally maps tx hashes
    to the claimed spender identity for script checking.

    Raises:
        ValidationError: on any policy violation.
        DoubleSpendError / ValueConservationError: from the state checks.
    """
    if not transactions:
        raise ValidationError("block has no transactions")
    if not transactions[0].is_coinbase:
        raise ValidationError("first transaction must be the coinbase")
    for tx in transactions[1:]:
        if tx.is_coinbase:
            raise ValidationError("coinbase transaction not in first position")
    total_bytes = sum(tx.size_bytes for tx in transactions)
    if total_bytes > policy.max_block_bytes:
        raise ValidationError(
            f"block size {total_bytes} exceeds policy limit "
            f"{policy.max_block_bytes}"
        )
    # Replay against a scratch copy so intra-block spends validate while
    # the caller's set stays untouched.
    scratch = utxo_set.snapshot()
    for tx in transactions:
        if policy.require_scripts and not tx.is_coinbase:
            spender = (spenders or {}).get(tx.tx_hash, "")
            for outpoint in tx.inputs:
                txo = scratch.get(outpoint)
                if txo is not None and txo.script:
                    if not can_spend(txo.script, spender):
                        raise ValidationError(
                            f"script of {outpoint} rejects spender "
                            f"{spender!r} in tx {tx.tx_hash}"
                        )
        scratch.apply_transaction(tx)
