"""The UTXO set: the global state of a UTXO-model chain.

Nodes "keep track of unspent TXOs" (§II-A); this class is that tracking
structure, with atomic block application and revert.  Revert support is
what a real client needs for chain reorganisations; here it additionally
powers failure-injection tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.chain.errors import DoubleSpendError, ValueConservationError
from repro.utxo.transaction import UTXOTransaction
from repro.utxo.txo import TXO, OutPoint


@dataclass(frozen=True)
class BlockUndo:
    """Everything needed to revert one applied block."""

    spent: tuple[TXO, ...]
    created: tuple[OutPoint, ...]


class UTXOSet:
    """Mutable set of unspent transaction outputs keyed by outpoint."""

    def __init__(self, initial: Iterable[TXO] = ()) -> None:
        self._utxos: dict[OutPoint, TXO] = {}
        for txo in initial:
            self._utxos[txo.outpoint] = txo

    def __len__(self) -> int:
        return len(self._utxos)

    def __contains__(self, outpoint: OutPoint) -> bool:
        return outpoint in self._utxos

    def __iter__(self) -> Iterator[TXO]:
        return iter(self._utxos.values())

    def get(self, outpoint: OutPoint) -> TXO | None:
        return self._utxos.get(outpoint)

    def total_value(self) -> int:
        """Sum of all unspent output values (the monetary base)."""
        return sum(txo.value for txo in self._utxos.values())

    def balance_of(self, owner: str) -> int:
        """Total unspent value locked to *owner* (linear scan)."""
        return sum(
            txo.value for txo in self._utxos.values() if txo.owner == owner
        )

    def outpoints_of(self, owner: str) -> list[OutPoint]:
        """All outpoints currently spendable by *owner*."""
        return [
            txo.outpoint
            for txo in self._utxos.values()
            if txo.owner == owner
        ]

    # -- transaction / block application ---------------------------------

    def validate_transaction(self, tx: UTXOTransaction) -> None:
        """Check *tx* against the current set without mutating it.

        Raises:
            DoubleSpendError: an input is absent from the set (spent,
                never created, or spent twice within the same tx).
            ValueConservationError: outputs plus fee exceed inputs.
        """
        if tx.is_coinbase:
            return
        seen: set[OutPoint] = set()
        input_value = 0
        for outpoint in tx.inputs:
            if outpoint in seen:
                raise DoubleSpendError(
                    f"transaction {tx.tx_hash} spends {outpoint} twice"
                )
            seen.add(outpoint)
            txo = self._utxos.get(outpoint)
            if txo is None:
                raise DoubleSpendError(
                    f"input {outpoint} of {tx.tx_hash} is not unspent"
                )
            input_value += txo.value
        output_value = tx.total_output_value()
        if output_value + tx.fee != input_value:
            raise ValueConservationError(
                f"transaction {tx.tx_hash}: inputs {input_value} != "
                f"outputs {output_value} + fee {tx.fee}"
            )

    def apply_transaction(self, tx: UTXOTransaction) -> tuple[TXO, ...]:
        """Validate and apply *tx*; returns the TXOs it spent."""
        self.validate_transaction(tx)
        spent = tuple(self._utxos.pop(outpoint) for outpoint in tx.inputs)
        for txo in tx.outputs:
            self._utxos[txo.outpoint] = txo
        return spent

    def apply_block(self, transactions: Iterable[UTXOTransaction]) -> BlockUndo:
        """Apply a block's transactions in order, atomically.

        Transactions later in the block may spend outputs created earlier
        in the same block — the intra-block chains of the paper's Fig. 6.
        On any validation failure the set is restored to its state before
        the call and the error re-raised.
        """
        spent_all: list[TXO] = []
        created_all: list[OutPoint] = []
        applied: list[UTXOTransaction] = []
        try:
            for tx in transactions:
                spent_all.extend(self.apply_transaction(tx))
                created_all.extend(tx.outpoints_created())
                applied.append(tx)
        except Exception:
            # Roll back partially applied transactions in reverse order.
            undo = BlockUndo(spent=tuple(spent_all), created=tuple(created_all))
            self.revert_block(undo)
            raise
        return BlockUndo(spent=tuple(spent_all), created=tuple(created_all))

    def revert_block(self, undo: BlockUndo) -> None:
        """Undo a previously applied block using its :class:`BlockUndo`."""
        for outpoint in undo.created:
            self._utxos.pop(outpoint, None)
        for txo in undo.spent:
            self._utxos[txo.outpoint] = txo

    def snapshot(self) -> "UTXOSet":
        """An independent copy (TXOs are immutable so sharing is safe)."""
        copy = UTXOSet()
        copy._utxos = dict(self._utxos)
        return copy
