"""Discrete-event P2P gossip simulation for block propagation.

Block propagation delay is the physical quantity behind two of the
paper's background facts: PoW chains keep block intervals long relative
to propagation (else orphan rates explode), and execution time adds
directly to propagation because a node validates (executes!) a block
before relaying it.  That last coupling is the systems-level reason the
paper's execution speed-ups matter beyond a single machine: cutting
validation time R-fold cuts the relay delay at every hop.

The simulator is a classic event-queue design: nodes connected by
latency-weighted links flood-relay a block after a per-node validation
delay.  :func:`propagation_experiment` measures how long a block takes
to reach given coverage percentiles, and :func:`orphan_rate_estimate`
converts propagation delay and block interval into the probability of
simultaneous competing blocks (the orphan/uncle rate).
"""

from __future__ import annotations

import heapq
import math
import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

from repro import obs

DEFAULT_SEEN_CAPACITY = 65_536


class BoundedSeenCache:
    """An LRU-bounded "have I seen this id?" set for relay dedup.

    A long-running gossip daemon cannot keep every tx/block hash it has
    ever relayed — that set grows O(all ids ever seen) and is exactly
    the kind of slow leak a soak test catches a week too late.  This
    cache keeps the most-recently-touched *capacity* ids and evicts the
    least recently seen, bumping an eviction counter metric so the
    operator can see dedup memory pressure (an evicted id that comes
    back is re-relayed once — wasteful but safe, since receivers dedup
    too).

    ``add`` returns True for a **new** id (relay it) and False for a
    duplicate (drop it), refreshing recency either way.
    """

    def __init__(self, capacity: int = DEFAULT_SEEN_CAPACITY, *,
                 metric: str = "gossip.seen_evicted") -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._metric = metric
        self._entries: OrderedDict[str, None] = OrderedDict()
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def evictions(self) -> int:
        return self._evictions

    def add(self, key: str) -> bool:
        """Mark *key* seen; True when it was new, False on a duplicate."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
            return False
        entries[key] = None
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self._evictions += 1
            if obs.enabled():
                obs.counter(self._metric).inc()
        return True

    def clear(self) -> None:
        self._entries.clear()


@dataclass(frozen=True)
class PropagationResult:
    """Outcome of flooding one block through the network.

    Attributes:
        arrival_times: node id -> first-arrival time (seconds); the
            origin has time 0.0.  Unreached nodes are absent.
        validation_delay: the per-node validation time used.
    """

    arrival_times: dict[str, float]
    validation_delay: float

    def coverage_time(self, fraction: float) -> float:
        """Time until *fraction* of reached nodes have the block."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        times = sorted(self.arrival_times.values())
        index = max(0, math.ceil(fraction * len(times)) - 1)
        return times[index]

    @property
    def reached(self) -> int:
        return len(self.arrival_times)


@dataclass
class GossipNetwork:
    """A static peer-to-peer topology with latency-weighted links.

    ``seen_capacity`` bounds the relay dedup memory: block ids passed
    to :meth:`propagate` are remembered in a :class:`BoundedSeenCache`
    (LRU, eviction-counted) instead of an ever-growing set, so a
    daemon flooding blocks forever stays O(capacity).
    """

    rng: random.Random = field(default_factory=random.Random)
    seen_capacity: int = DEFAULT_SEEN_CAPACITY
    _peers: dict[str, dict[str, float]] = field(default_factory=dict)
    _seen: BoundedSeenCache | None = field(default=None, repr=False)

    def seen_cache(self) -> BoundedSeenCache:
        """The relay dedup cache (created lazily)."""
        if self._seen is None:
            self._seen = BoundedSeenCache(self.seen_capacity)
        return self._seen

    def add_node(self, node_id: str) -> None:
        self._peers.setdefault(node_id, {})

    def connect(self, a: str, b: str, latency: float) -> None:
        """Create a bidirectional link with one-way *latency* seconds."""
        if latency <= 0:
            raise ValueError("latency must be positive")
        if a == b:
            raise ValueError("no self-links")
        self.add_node(a)
        self.add_node(b)
        self._peers[a][b] = latency
        self._peers[b][a] = latency

    def __len__(self) -> int:
        return len(self._peers)

    def degree(self, node_id: str) -> int:
        return len(self._peers.get(node_id, {}))

    @staticmethod
    def random_topology(
        num_nodes: int,
        *,
        degree: int = 8,
        latency_mean: float = 0.05,
        rng: random.Random | None = None,
    ) -> "GossipNetwork":
        """A connected random regular-ish topology.

        A ring guarantees connectivity; random chords bring the mean
        degree up to *degree*, mirroring real overlay networks.
        """
        if num_nodes < 2:
            raise ValueError("need at least 2 nodes")
        if degree < 2:
            raise ValueError("degree must be at least 2")
        rng = rng or random.Random(0)
        network = GossipNetwork(rng=rng)
        ids = [f"n{i}" for i in range(num_nodes)]
        for index, node in enumerate(ids):
            neighbour = ids[(index + 1) % num_nodes]
            network.connect(
                node, neighbour, rng.expovariate(1.0 / latency_mean)
            )
        chords_needed = max(0, num_nodes * (degree - 2) // 2)
        attempts = 0
        while chords_needed > 0 and attempts < 50 * num_nodes:
            attempts += 1
            a, b = rng.sample(ids, 2)
            if b in network._peers[a]:
                continue
            network.connect(a, b, rng.expovariate(1.0 / latency_mean))
            chords_needed -= 1
        return network

    # -- propagation --------------------------------------------------------

    def propagate(
        self,
        origin: str,
        *,
        validation_delay: float = 0.0,
        tx_hashes: Sequence[str] = (),
        block_id: str | None = None,
    ) -> PropagationResult | None:
        """Flood a block from *origin*; returns first-arrival times.

        With a *block_id*, the network dedups the flood through its
        bounded seen-cache: a repeated id is dropped (counted under
        ``gossip.duplicate_drops``) and the call returns ``None``
        instead of re-flooding — the push-relay contract a long-running
        daemon needs.  Without one, every call floods (the historical
        one-shot behaviour).

        A node relays only after validating (``validation_delay``), so
        total delay along a path is sum(link latencies) plus one
        validation per intermediate hop — which is how execution cost
        multiplies across the network.

        When lifecycle tracing is on, *tx_hashes* names the transactions
        riding in the flooded block: each gets one ``relayed`` event per
        hop depth (at that depth's first-arrival time, offset from the
        lifecycle clock) and a closing ``propagated`` event at full
        coverage, so traces expose where propagation time goes hop by
        hop.  With tracing off the argument costs nothing.
        """
        if origin not in self._peers:
            raise KeyError(f"unknown node {origin!r}")
        if validation_delay < 0:
            raise ValueError("validation_delay must be non-negative")
        if block_id is not None and not self.seen_cache().add(block_id):
            if obs.enabled():
                obs.counter("gossip.duplicate_drops").inc()
            return None
        with obs.trace_span("gossip.propagate", origin=origin) as span:
            arrival: dict[str, float] = {}
            hops_of: dict[str, int] = {}
            messages = 0
            queue: list[tuple[float, str, int]] = [(0.0, origin, 0)]
            while queue:
                time, node, hops = heapq.heappop(queue)
                if node in arrival:
                    continue
                arrival[node] = time
                hops_of[node] = hops
                relay_at = (
                    time if node == origin else time + validation_delay
                )
                for peer, latency in self._peers[node].items():
                    if peer not in arrival:
                        messages += 1
                        heapq.heappush(
                            queue, (relay_at + latency, peer, hops + 1)
                        )
            if obs.enabled():
                span.set(reached=len(arrival), messages=messages)
                obs.counter("gossip.propagations").inc()
                obs.counter("gossip.messages").inc(messages)
                obs.counter("gossip.nodes_reached").inc(len(arrival))
                hop_hist = obs.histogram("gossip.hops")
                for hops in hops_of.values():
                    hop_hist.observe(hops)
                if tx_hashes:
                    self._trace_relays(tx_hashes, arrival, hops_of)
        return PropagationResult(
            arrival_times=arrival, validation_delay=validation_delay
        )

    @staticmethod
    def _trace_relays(
        tx_hashes: Sequence[str],
        arrival: dict[str, float],
        hops_of: dict[str, int],
    ) -> None:
        """Record per-hop ``relayed`` + closing ``propagated`` events.

        One event per hop depth (not per node): the depth's first
        arrival is when the block front crossed that ring of the
        overlay, which is the latency structure worth tracing; per-node
        events would add volume without information.
        """
        life = obs.lifecycle()
        if not life.enabled:
            return
        base = life.clock
        first_at_depth: dict[int, float] = {}
        for node, hops in hops_of.items():
            if hops == 0:
                continue
            time = arrival[node]
            best = first_at_depth.get(hops)
            if best is None or time < best:
                first_at_depth[hops] = time
        full_coverage = max(arrival.values()) if arrival else 0.0
        for tx_hash in tx_hashes:
            for hops in sorted(first_at_depth):
                life.record(
                    tx_hash, "relayed",
                    at=base + first_at_depth[hops], hop=hops,
                )
            life.record(
                tx_hash, "propagated",
                at=base + full_coverage, reached=len(arrival),
            )


def propagation_experiment(
    *,
    num_nodes: int,
    degree: int = 8,
    latency_mean: float = 0.05,
    validation_delay: float = 0.25,
    trials: int = 5,
    seed: int = 0,
) -> dict[str, float]:
    """Median 50%/90%/100% coverage times over random origins."""
    rng = random.Random(seed)
    network = GossipNetwork.random_topology(
        num_nodes, degree=degree, latency_mean=latency_mean, rng=rng
    )
    ids = [f"n{i}" for i in range(num_nodes)]
    p50, p90, p100 = [], [], []
    for _ in range(trials):
        origin = rng.choice(ids)
        result = network.propagate(
            origin, validation_delay=validation_delay
        )
        p50.append(result.coverage_time(0.5))
        p90.append(result.coverage_time(0.9))
        p100.append(result.coverage_time(1.0))

    def median(values: list[float]) -> float:
        ordered = sorted(values)
        return ordered[len(ordered) // 2]

    return {
        "t50": median(p50),
        "t90": median(p90),
        "t100": median(p100),
    }


def orphan_rate_estimate(
    propagation_delay: float, block_interval: float
) -> float:
    """Probability a competing block is found during propagation.

    Block discovery is Poisson with rate 1/interval; a fork arises when
    another block appears within the propagation window:
    ``1 - exp(-delay / interval)`` — the standard first-order model.
    Faster validation (execution!) shrinks ``delay`` and with it the
    orphan rate, the network-level benefit of the paper's speed-ups.
    """
    if propagation_delay < 0:
        raise ValueError("propagation_delay must be non-negative")
    if block_interval <= 0:
        raise ValueError("block_interval must be positive")
    return 1.0 - math.exp(-propagation_delay / block_interval)
