"""P2P gossip substrate: block propagation and orphan-rate modelling."""

from repro.network.gossip import (
    GossipNetwork,
    PropagationResult,
    orphan_rate_estimate,
    propagation_experiment,
)

__all__ = [
    "GossipNetwork",
    "PropagationResult",
    "orphan_rate_estimate",
    "propagation_experiment",
]
