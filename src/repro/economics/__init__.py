"""Economics of verification: the Verifier's Dilemma model (§II-C)."""

from repro.economics.verifier import (
    SecurityGain,
    VerifierParams,
    expected_reward_skipper,
    expected_reward_verifier,
    invalid_block_survival,
    security_gain_from_speedup,
    verification_equilibrium,
)

__all__ = [
    "SecurityGain",
    "VerifierParams",
    "expected_reward_skipper",
    "expected_reward_verifier",
    "invalid_block_survival",
    "security_gain_from_speedup",
    "verification_equilibrium",
]
