"""The Verifier's Dilemma — the paper's third motivation (§II-C).

"The cost of transaction execution negatively affects the security of
public blockchains ... a rational node has considerable incentive to
skip the transaction execution, and to spend all of its resources on
consensus.  But without a large number of nodes executing the same
transactions, the overall security becomes lower ... reducing the cost
of transaction execution helps to strengthen security."

This module makes that argument quantitative with a simple rational-
miner model (in the spirit of Luu et al., the paper's ref. [13]):

* a miner splits one unit of resource between mining and verification;
* verifying a block costs ``verification_time / block_interval`` of the
  mining budget — exactly the fraction execution speed-ups shrink;
* skipping verification risks building on an invalid block: with
  probability ``invalid_rate`` the head is invalid and the skipper's
  reward is lost (plus a penalty when fraud proofs exist).

:func:`verification_equilibrium` computes the fraction of rational
hashpower that verifies at equilibrium, and
:func:`security_gain_from_speedup` maps an execution speed-up R (from
the paper's Eq. 1/Eq. 2 models) to the change in that fraction —
closing the loop from concurrency to security.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VerifierParams:
    """Parameters of the rational-verification game.

    Attributes:
        execution_time: seconds to execute/verify one block's
            transactions (sequentially, before any speed-up).
        block_interval: seconds between blocks.
        invalid_rate: probability a freshly received block is invalid
            when nobody verifies (attacker pressure).
        penalty: extra loss (in block rewards) for mining on an invalid
            block, e.g. through fraud proofs or reorg depth.
        reward: block reward (normalised to 1 by default).
    """

    execution_time: float
    block_interval: float
    invalid_rate: float = 0.01
    penalty: float = 0.0
    reward: float = 1.0

    def __post_init__(self) -> None:
        if self.execution_time < 0:
            raise ValueError("execution_time must be non-negative")
        if self.block_interval <= 0:
            raise ValueError("block_interval must be positive")
        if not 0.0 <= self.invalid_rate <= 1.0:
            raise ValueError("invalid_rate must be a probability")
        if self.penalty < 0 or self.reward <= 0:
            raise ValueError("penalty >= 0 and reward > 0 required")

    @property
    def verification_cost_share(self) -> float:
        """Fraction of the mining budget verification consumes."""
        return min(1.0, self.execution_time / self.block_interval)

    def with_speedup(self, speedup: float) -> "VerifierParams":
        """The same game after an execution speed-up of R."""
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        return VerifierParams(
            execution_time=self.execution_time / speedup,
            block_interval=self.block_interval,
            invalid_rate=self.invalid_rate,
            penalty=self.penalty,
            reward=self.reward,
        )


def expected_reward_verifier(params: VerifierParams) -> float:
    """Expected reward rate of a verifying miner (per block period).

    Verifiers lose ``verification_cost_share`` of their mining power
    but never build on invalid blocks.
    """
    return params.reward * (1.0 - params.verification_cost_share)


def expected_reward_skipper(
    params: VerifierParams, verifying_fraction: float
) -> float:
    """Expected reward rate of a verification-skipping miner.

    Skippers mine at full power, but when the network's verifying
    fraction is low, invalid blocks survive long enough to be built on:
    the probability of wasting work on an invalid parent scales with
    ``invalid_rate * (1 - verifying_fraction)``.
    """
    if not 0.0 <= verifying_fraction <= 1.0:
        raise ValueError("verifying_fraction must be a probability")
    exposure = params.invalid_rate * (1.0 - verifying_fraction)
    return params.reward * (1.0 - exposure) - params.penalty * exposure


def verification_equilibrium(params: VerifierParams) -> float:
    """Equilibrium fraction of rational hashpower that verifies.

    The game has the usual free-rider structure: verification is more
    attractive when few others verify (invalid blocks abound) and less
    attractive when many do.  The interior equilibrium equates the two
    expected rewards:

        1 - cost = 1 - e + penalty-terms,  e = invalid_rate * (1 - v)

    Solving for v and clamping to [0, 1]: a cheap-to-verify chain
    (small cost share) supports a high verifying fraction; an expensive
    one drives v to 0 — the Verifier's Dilemma.
    """
    cost = params.verification_cost_share
    pressure = params.invalid_rate * (1.0 + params.penalty / params.reward)
    if pressure <= 0:
        return 0.0 if cost > 0 else 1.0
    # cost == exposure at equilibrium: cost = pressure * (1 - v).
    v = 1.0 - cost / pressure
    return min(1.0, max(0.0, v))


@dataclass(frozen=True)
class SecurityGain:
    """Before/after comparison of the verification equilibrium."""

    speedup: float
    baseline_fraction: float
    improved_fraction: float

    @property
    def absolute_gain(self) -> float:
        return self.improved_fraction - self.baseline_fraction


def security_gain_from_speedup(
    params: VerifierParams, speedup: float
) -> SecurityGain:
    """How much an execution speed-up R raises the verifying fraction.

    This is the §II-C chain of reasoning made computable: the paper's
    Eq. 1/Eq. 2 speed-ups shrink the verification cost share by R,
    which raises the equilibrium verifying fraction, which lowers the
    survival probability of invalid blocks.
    """
    baseline = verification_equilibrium(params)
    improved = verification_equilibrium(params.with_speedup(speedup))
    return SecurityGain(
        speedup=speedup,
        baseline_fraction=baseline,
        improved_fraction=improved,
    )


def invalid_block_survival(
    params: VerifierParams, verifying_fraction: float
) -> float:
    """Probability an invalid block is extended by the next miner."""
    if not 0.0 <= verifying_fraction <= 1.0:
        raise ValueError("verifying_fraction must be a probability")
    return (1.0 - verifying_fraction) * params.invalid_rate
