"""Instrumentation layer: metrics, span tracer, flight recorder, exporters.

The rest of the codebase talks to this package through four module
functions that dispatch to a process-global observability state::

    from repro import obs

    with obs.trace_span("tdg.build", model="utxo") as span:
        ...
        span.set(edges=n)
    obs.counter("mempool.admitted").inc()
    if obs.enabled():                     # guard anything non-trivial
        obs.histogram("exec.occ.queue_depth").observe(len(pending))

By default the state holds :data:`NOOP_REGISTRY` and
:data:`NOOP_TRACER`, so every call above is a near-free no-op and the
tier-1 timings are unaffected.  Recording is switched on either for a
scope::

    with obs.instrumented() as state:
        run_pipeline()
    state.registry.snapshot(); state.tracer.spans()

or process-wide with :func:`install` / :func:`uninstall` (the CLI
``profile`` subcommand and the bench harness use the scoped form).
Tests swap in private registries the same way, so they never observe
each other's counts.

Naming scheme (full catalogue in ``docs/observability.md``):

* ``tdg.*`` — dependency-graph construction,
* ``pipeline.*`` — per-chain / per-block analysis spans,
* ``exec.<engine>.*`` — executor runs, aborts, retries, utilization,
* ``mempool.*`` — admission, eviction, packing,
* ``gossip.*`` — propagation message counts and hop depths,
* ``lifecycle.*`` — per-transaction stage transitions and latencies
  (see :mod:`repro.obs.lifecycle`),
* ``consensus.*`` / ``sharding.*`` — round latencies, dispatch counts.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs.lifecycle import (
    NOOP_LIFECYCLE,
    LifecycleTracer,
    NoopLifecycleTracer,
    StitchedTrace,
    TraceContext,
)
from repro.obs.metrics import (
    NOOP_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopMetricsRegistry,
)
from repro.obs.timeline import (
    NOOP_RECORDER,
    FlightRecorder,
    NoopFlightRecorder,
    TimelineEvent,
)
from repro.obs.tracer import NOOP_TRACER, NoopTracer, Span, Tracer

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LifecycleTracer",
    "MetricsRegistry",
    "NoopFlightRecorder",
    "NoopLifecycleTracer",
    "NoopMetricsRegistry",
    "NoopTracer",
    "ObservabilityState",
    "Span",
    "StitchedTrace",
    "TimelineEvent",
    "TraceContext",
    "Tracer",
    "counter",
    "enabled",
    "gauge",
    "get_recorder",
    "get_registry",
    "get_tracer",
    "histogram",
    "install",
    "instrumented",
    "lifecycle",
    "trace_span",
    "uninstall",
]


@dataclass(frozen=True)
class ObservabilityState:
    """One (registry, tracer, recorder, lifecycle) set — ``instrumented``
    yields it."""

    registry: MetricsRegistry
    tracer: Tracer
    recorder: FlightRecorder = NOOP_RECORDER
    lifecycle: LifecycleTracer = NOOP_LIFECYCLE

    @property
    def enabled(self) -> bool:
        return (self.registry.enabled or self.tracer.enabled
                or self.recorder.enabled or self.lifecycle.enabled)


_NOOP_STATE = ObservabilityState(
    registry=NOOP_REGISTRY, tracer=NOOP_TRACER, recorder=NOOP_RECORDER,
    lifecycle=NOOP_LIFECYCLE,
)
_state: ObservabilityState = _NOOP_STATE


def enabled() -> bool:
    """True when a recording registry or tracer is installed.

    Hot paths use this to guard instrumentation that would otherwise
    compute something (an extra pass, a division) even when disabled.
    """
    return _state.enabled


def get_registry() -> MetricsRegistry:
    return _state.registry


def get_tracer() -> Tracer:
    return _state.tracer


def get_recorder() -> FlightRecorder:
    return _state.recorder


def lifecycle() -> LifecycleTracer:
    """The current lifecycle tracer (:data:`NOOP_LIFECYCLE` when off)."""
    return _state.lifecycle


def install(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    recorder: FlightRecorder | None = None,
    lifecycle: LifecycleTracer | None = None,
) -> ObservabilityState:
    """Install a recording state process-wide; returns it.

    Any component left ``None`` gets a fresh recording instance; pass
    the explicit no-op singleton (e.g. ``NOOP_RECORDER``) to keep one
    component disabled while the others record.  A fresh lifecycle
    tracer observes its stage metrics into the installed registry.
    """
    global _state
    resolved_registry = registry if registry is not None else MetricsRegistry()
    _state = ObservabilityState(
        registry=resolved_registry,
        tracer=tracer if tracer is not None else Tracer(),
        recorder=recorder if recorder is not None else FlightRecorder(),
        lifecycle=lifecycle if lifecycle is not None
        else LifecycleTracer(registry=resolved_registry),
    )
    return _state


def uninstall() -> None:
    """Restore the zero-cost no-op state."""
    global _state
    _state = _NOOP_STATE


@contextmanager
def instrumented(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    recorder: FlightRecorder | None = None,
    lifecycle: LifecycleTracer | None = None,
) -> Iterator[ObservabilityState]:
    """Scoped recording: install on entry, restore the prior state after."""
    global _state
    previous = _state
    state = install(registry=registry, tracer=tracer, recorder=recorder,
                    lifecycle=lifecycle)
    try:
        yield state
    finally:
        _state = previous


# -- dispatching helpers (the only API instrumented modules call) ------------


def trace_span(name: str, **attrs: object):
    """Open a span on the current tracer (no-op context when disabled)."""
    return _state.tracer.span(name, **attrs)


def counter(name: str, **labels: object) -> Counter:
    return _state.registry.counter(name, **labels)


def gauge(name: str, **labels: object) -> Gauge:
    return _state.registry.gauge(name, **labels)


def histogram(name: str, **labels: object) -> Histogram:
    return _state.registry.histogram(name, **labels)
