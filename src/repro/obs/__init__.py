"""Instrumentation layer: metrics, span tracer, flight recorder, exporters.

The rest of the codebase talks to this package through four module
functions that dispatch to a process-global observability state::

    from repro import obs

    with obs.trace_span("tdg.build", model="utxo") as span:
        ...
        span.set(edges=n)
    obs.counter("mempool.admitted").inc()
    if obs.enabled():                     # guard anything non-trivial
        obs.histogram("exec.occ.queue_depth").observe(len(pending))

By default the state holds :data:`NOOP_REGISTRY` and
:data:`NOOP_TRACER`, so every call above is a near-free no-op and the
tier-1 timings are unaffected.  Recording is switched on either for a
scope::

    with obs.instrumented() as state:
        run_pipeline()
    state.registry.snapshot(); state.tracer.spans()

or process-wide with :func:`install` / :func:`uninstall` (the CLI
``profile`` subcommand and the bench harness use the scoped form).
Tests swap in private registries the same way, so they never observe
each other's counts.

Naming scheme (full catalogue in ``docs/observability.md``):

* ``tdg.*`` — dependency-graph construction,
* ``pipeline.*`` — per-chain / per-block analysis spans,
* ``exec.<engine>.*`` — executor runs, aborts, retries, utilization,
* ``mempool.*`` — admission, eviction, packing,
* ``gossip.*`` — propagation message counts and hop depths,
* ``lifecycle.*`` — per-transaction stage transitions and latencies
  (see :mod:`repro.obs.lifecycle`),
* ``consensus.*`` / ``sharding.*`` — round latencies, dispatch counts.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs.lifecycle import (
    NOOP_LIFECYCLE,
    LifecycleTracer,
    NoopLifecycleTracer,
    StitchedTrace,
    TraceContext,
)
from repro.obs.metrics import (
    NOOP_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopMetricsRegistry,
)
from repro.obs.sampling import (
    SampledLifecycleTracer,
    SampleRate,
    parse_rate,
    sample_decision,
)
from repro.obs.sketch import SketchHistogram
from repro.obs.timeline import (
    NOOP_RECORDER,
    FlightRecorder,
    NoopFlightRecorder,
    TimelineEvent,
)
from repro.obs.tracer import NOOP_TRACER, NoopTracer, Span, Tracer

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LifecycleTracer",
    "MetricsRegistry",
    "NoopFlightRecorder",
    "NoopLifecycleTracer",
    "NoopMetricsRegistry",
    "NoopTracer",
    "ObservabilityState",
    "SampleRate",
    "SampledLifecycleTracer",
    "SketchHistogram",
    "Span",
    "StitchedTrace",
    "TimelineEvent",
    "TraceContext",
    "Tracer",
    "counter",
    "parse_rate",
    "sample_decision",
    "enabled",
    "gauge",
    "get_recorder",
    "get_registry",
    "get_tracer",
    "histogram",
    "install",
    "instrumented",
    "lifecycle",
    "scoped",
    "trace_span",
    "uninstall",
]


@dataclass(frozen=True)
class ObservabilityState:
    """One (registry, tracer, recorder, lifecycle) set — ``instrumented``
    yields it."""

    registry: MetricsRegistry
    tracer: Tracer
    recorder: FlightRecorder = NOOP_RECORDER
    lifecycle: LifecycleTracer = NOOP_LIFECYCLE

    @property
    def enabled(self) -> bool:
        return (self.registry.enabled or self.tracer.enabled
                or self.recorder.enabled or self.lifecycle.enabled)


_NOOP_STATE = ObservabilityState(
    registry=NOOP_REGISTRY, tracer=NOOP_TRACER, recorder=NOOP_RECORDER,
    lifecycle=NOOP_LIFECYCLE,
)
_state: ObservabilityState = _NOOP_STATE

# Thread-local override: lets concurrent chunks (thread-backend parallel
# replay) each record into a private state without touching the process
# global.  ``_current()`` is the single resolution point every dispatch
# helper goes through; the common case (no override) is one attribute
# probe on a thread-local, so the no-op fast path stays flat.
class _LocalOverride(threading.local):
    # Class-level default: threads that never set an override resolve
    # ``state`` through the class attribute instead of raising (and
    # catching) AttributeError inside getattr — that hidden exception
    # costs several hundred nanoseconds per dispatch, which is the
    # difference between a free and a measurable disabled guard.
    state: "ObservabilityState | None" = None


_local = _LocalOverride()

# Number of scoped() overrides currently active across all threads.
# While zero (the overwhelmingly common case — overrides only exist
# inside thread-backend replay chunks) dispatch skips the thread-local
# probe entirely: reading one module global is ~3x cheaper, and the
# disabled-pipeline guard budget (benchmarks/bench_obs_sampling.py) is
# priced in tens of nanoseconds.  Reads are deliberately lock-free: a
# thread inside scoped() always observes its own increment, so it can
# never miss its override; other threads at worst probe needlessly.
_override_count = 0
_override_lock = threading.Lock()


def _current() -> ObservabilityState:
    if _override_count:
        override = _local.state
        if override is not None:
            return override
    return _state


def enabled() -> bool:
    """True when a recording registry or tracer is installed.

    Hot paths use this to guard instrumentation that would otherwise
    compute something (an extra pass, a division) even when disabled.
    """
    return _current().enabled


def get_registry() -> MetricsRegistry:
    return _current().registry


def get_tracer() -> Tracer:
    return _current().tracer


def get_recorder() -> FlightRecorder:
    return _current().recorder


def lifecycle() -> LifecycleTracer:
    """The current lifecycle tracer (:data:`NOOP_LIFECYCLE` when off)."""
    # Inlined _current(): this is the guard every lifecycle call site
    # runs per transaction hop, so one avoided function call matters at
    # the disabled-overhead budget's scale.
    if _override_count:
        override = _local.state
        if override is not None:
            return override.lifecycle
    return _state.lifecycle


@contextmanager
def scoped(state: ObservabilityState) -> Iterator[ObservabilityState]:
    """Route this thread's obs dispatch into *state* for the scope.

    Unlike :func:`instrumented`, which swaps the process-global state,
    ``scoped`` binds the override to the calling thread only — two
    threads can each replay a chunk under their own private recorder
    without interleaving events.  Scopes nest; the previous override
    (or none) is restored on exit.
    """
    global _override_count
    previous = _local.state
    with _override_lock:
        _override_count += 1
    _local.state = state
    try:
        yield state
    finally:
        _local.state = previous
        with _override_lock:
            _override_count -= 1


def install(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    recorder: FlightRecorder | None = None,
    lifecycle: LifecycleTracer | None = None,
) -> ObservabilityState:
    """Install a recording state process-wide; returns it.

    Any component left ``None`` gets a fresh recording instance; pass
    the explicit no-op singleton (e.g. ``NOOP_RECORDER``) to keep one
    component disabled while the others record.  A fresh lifecycle
    tracer observes its stage metrics into the installed registry.
    """
    global _state
    resolved_registry = registry if registry is not None else MetricsRegistry()
    _state = ObservabilityState(
        registry=resolved_registry,
        tracer=tracer if tracer is not None else Tracer(),
        recorder=recorder if recorder is not None else FlightRecorder(),
        lifecycle=lifecycle if lifecycle is not None
        else LifecycleTracer(registry=resolved_registry),
    )
    return _state


def uninstall() -> None:
    """Restore the zero-cost no-op state."""
    global _state
    _state = _NOOP_STATE


@contextmanager
def instrumented(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    recorder: FlightRecorder | None = None,
    lifecycle: LifecycleTracer | None = None,
) -> Iterator[ObservabilityState]:
    """Scoped recording: install on entry, restore the prior state after."""
    global _state
    previous = _state
    state = install(registry=registry, tracer=tracer, recorder=recorder,
                    lifecycle=lifecycle)
    try:
        yield state
    finally:
        _state = previous


# -- dispatching helpers (the only API instrumented modules call) ------------


def trace_span(name: str, **attrs: object):
    """Open a span on the current tracer (no-op context when disabled)."""
    return _current().tracer.span(name, **attrs)


def counter(name: str, **labels: object) -> Counter:
    return _current().registry.counter(name, **labels)


def gauge(name: str, **labels: object) -> Gauge:
    return _current().registry.gauge(name, **labels)


def histogram(name: str, **labels: object) -> Histogram:
    return _current().registry.histogram(name, **labels)
