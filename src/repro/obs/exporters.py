"""Exporters: JSON-lines traces, Prometheus text, summary tables.

Three consumers, three formats:

* :func:`write_trace_jsonl` — machine-readable dump for the perf
  trajectory: one JSON object per completed span, then a final
  ``{"type": "metrics", ...}`` snapshot line.  :func:`read_trace_jsonl`
  round-trips it for tests and downstream tooling.
* :func:`render_prometheus` — the standard text exposition format, so
  snapshots can be scraped or diffed with existing tooling.
* :func:`render_summary` — human-readable tables (reusing the bench
  report renderer) aggregating spans by name and listing counters.
* :func:`chrome_trace_events` / :func:`write_chrome_trace` — the
  flight recorder's timeline as Chrome trace-event JSON, loadable in
  ``chrome://tracing`` or Perfetto (executors as processes, lanes as
  threads, one slice per task execution).
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Sequence

from repro.analysis.report import render_table
from repro.obs.lifecycle import StitchedTrace
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.timeline import EDGE_SEPARATOR, QUEUE_LANE, TimelineEvent
from repro.obs.tracer import Span, Tracer

TRACE_SCHEMA_VERSION = 1


# -- JSON lines ---------------------------------------------------------------


def span_record(span: Span) -> dict[str, object]:
    """The JSONL dict form of one span."""
    return {
        "type": "span",
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start_ns": span.start_ns,
        "duration_ns": span.duration_ns,
        "attrs": span.attrs,
    }


def span_from_record(record: dict[str, object]) -> Span:
    """Inverse of :func:`span_record`."""
    return Span(
        name=str(record["name"]),
        span_id=int(record["span_id"]),  # type: ignore[arg-type]
        parent_id=(
            None if record.get("parent_id") is None
            else int(record["parent_id"])  # type: ignore[arg-type]
        ),
        start_ns=int(record["start_ns"]),  # type: ignore[arg-type]
        duration_ns=int(record["duration_ns"]),  # type: ignore[arg-type]
        attrs=dict(record.get("attrs") or {}),  # type: ignore[arg-type]
    )


def write_trace_jsonl(
    path: str | Path, tracer: Tracer, registry: MetricsRegistry
) -> int:
    """Write spans then a final metrics-snapshot line; returns span count.

    The first line is a header carrying the schema version, so readers
    can reject traces written by a future incompatible format.
    """
    spans = tracer.spans()
    lines = [json.dumps({"type": "header",
                         "schema_version": TRACE_SCHEMA_VERSION})]
    lines.extend(json.dumps(span_record(span)) for span in spans)
    lines.append(json.dumps({"type": "metrics",
                             "snapshot": registry.snapshot()}))
    Path(path).write_text("\n".join(lines) + "\n")
    return len(spans)


def read_trace_jsonl(
    path: str | Path,
) -> tuple[list[Span], dict[str, dict[str, object]]]:
    """Parse a trace file back into (spans, metrics snapshot)."""
    spans: list[Span] = []
    snapshot: dict[str, dict[str, object]] = {
        "counters": {}, "gauges": {}, "histograms": {},
    }
    for line_number, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        if not line.strip():
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "header":
            version = record.get("schema_version")
            if version != TRACE_SCHEMA_VERSION:
                raise ValueError(
                    f"unsupported trace schema version {version!r}"
                )
        elif kind == "span":
            spans.append(span_from_record(record))
        elif kind == "metrics":
            snapshot = record["snapshot"]
        else:
            raise ValueError(
                f"line {line_number}: unknown record type {kind!r}"
            )
    return spans, snapshot


# -- Prometheus text format ---------------------------------------------------


_NAME_OK = re.compile(r"[a-zA-Z0-9_:]")
_LABEL_OK = re.compile(r"[a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    """Sanitize a metric name to the exposition-format charset.

    Metric names must match ``[a-zA-Z_:][a-zA-Z0-9_:]*``: every
    out-of-charset character (dots, dashes, spaces, quotes, ...) becomes
    ``_``, and a leading digit gains a ``_`` prefix.
    """
    sanitized = "".join(
        ch if _NAME_OK.fullmatch(ch) else "_" for ch in name
    )
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_label_name(name: str) -> str:
    """Label names follow the metric-name rule, minus colons."""
    sanitized = "".join(
        ch if _LABEL_OK.fullmatch(ch) else "_" for ch in name
    )
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_label_value(value: str) -> str:
    """Escape a label value per the exposition format.

    Backslash, double quote and newline are the three characters the
    format escapes; everything else passes through verbatim.
    """
    return (
        value.replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _prom_labels(labels: tuple[tuple[str, str], ...],
                 extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = labels + extra
    if not items:
        return ""
    rendered = ",".join(
        f'{_prom_label_name(key)}="{_prom_label_value(value)}"'
        for key, value in items
    )
    return f"{{{rendered}}}"


def render_prometheus(
    registry: MetricsRegistry, *, legacy_counter_names: bool = False
) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters follow the Prometheus naming convention: a ``_total``
    suffix is appended unless the metric name already carries one.
    Pass ``legacy_counter_names=True`` to additionally emit each
    counter under its old unsuffixed name (a migration alias for
    scrape configs written against earlier releases).

    Histograms (exact or sketch — both share the ``summary()`` API)
    are exported as summaries: ``<name>{quantile="0.5"}`` lines plus
    ``_sum`` and ``_count``.  A histogram with no observations renders
    only ``_sum``/``_count`` — quantiles of an empty distribution are
    undefined, and fabricating zeros would read as measurements.
    """
    lines: list[str] = []
    for metric in registry.iter_metrics():
        name = _prom_name(metric.name)
        if isinstance(metric, Counter):
            total_name = (
                name if name.endswith("_total") else f"{name}_total"
            )
            labels = _prom_labels(metric.labels)
            lines.append(f"# TYPE {total_name} counter")
            lines.append(f"{total_name}{labels} {metric.value:g}")
            if legacy_counter_names and total_name != name:
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name}{labels} {metric.value:g}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(
                f"{name}{_prom_labels(metric.labels)} {metric.value:g}"
            )
        elif isinstance(metric, Histogram):
            summary = metric.summary()
            lines.append(f"# TYPE {name} summary")
            if summary["count"]:
                for quantile, key in (("0.5", "p50"), ("0.9", "p90"),
                                      ("0.99", "p99")):
                    label_str = _prom_labels(
                        metric.labels, (("quantile", quantile),)
                    )
                    lines.append(f"{name}{label_str} {summary[key]:g}")
            base = _prom_labels(metric.labels)
            lines.append(f"{name}_sum{base} {summary['sum']:g}")
            lines.append(f"{name}_count{base} {summary['count']:g}")
    return "\n".join(lines)


# -- human-readable summary ---------------------------------------------------


def render_summary(tracer: Tracer, registry: MetricsRegistry) -> str:
    """Aggregate spans by name and list counters/histograms as tables."""
    parts: list[str] = []
    spans = tracer.spans()
    if spans:
        by_name: dict[str, list[Span]] = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        rows = []
        for name in sorted(by_name):
            durations = sorted(s.duration_ms for s in by_name[name])
            total = sum(durations)
            rows.append((
                name,
                len(durations),
                f"{total:.2f}",
                f"{total / len(durations):.3f}",
                f"{durations[-1]:.3f}",
            ))
        parts.append(render_table(
            ["span", "count", "total ms", "mean ms", "max ms"],
            rows,
            title="spans by name",
        ))
    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    if counters:
        parts.append(render_table(
            ["counter", "value"],
            [(key, f"{value:g}")
             for key, value in sorted(counters.items())],
            title="counters",
        ))
    gauges = snapshot["gauges"]
    if gauges:
        parts.append(render_table(
            ["gauge", "value"],
            [(key, f"{value:g}") for key, value in sorted(gauges.items())],
            title="gauges",
        ))
    histograms = snapshot["histograms"]
    if histograms:
        # Zero-count histograms carry no percentile keys; show a dash
        # rather than inventing numbers.
        rows = [
            (
                key,
                summary["count"],
                f"{summary['mean']:.4g}" if summary["count"] else "-",
                f"{summary['p50']:.4g}" if summary["count"] else "-",
                f"{summary['p90']:.4g}" if summary["count"] else "-",
                f"{summary['max']:.4g}" if summary["count"] else "-",
            )
            for key, summary in sorted(histograms.items())
        ]
        parts.append(render_table(
            ["histogram", "count", "mean", "p50", "p90", "max"],
            rows,
            title="histograms",
        ))
    if not parts:
        return "(no spans or metrics recorded)"
    return "\n\n".join(parts)


def registry_snapshot_json(registry: MetricsRegistry) -> str:
    """Stable JSON form of a registry snapshot (for bench artifacts)."""
    return json.dumps(registry.snapshot(), indent=2, sort_keys=True)


# -- Chrome trace-event format ------------------------------------------------

# One simulated cost unit renders as 1 ms (1000 µs) on the trace
# timeline — wide enough that unit-cost transactions are visible in
# chrome://tracing / Perfetto without zooming.
COST_UNIT_US = 1000.0

_QUEUE_TID = 0


def _lane_tid(lane: int) -> int:
    """Map recorder lanes onto trace thread ids (queue gets tid 0)."""
    return _QUEUE_TID if lane == QUEUE_LANE else lane + 1


def chrome_trace_events(
    events: Sequence[TimelineEvent],
    *,
    clock_unit_us: float = COST_UNIT_US,
) -> list[dict[str, object]]:
    """Convert flight-recorder events into Chrome trace-event dicts.

    The mapping, loadable in ``chrome://tracing`` or Perfetto:

    * each executor becomes a *process* (``pid`` in first-appearance
      order, named via ``process_name`` metadata);
    * each lane becomes a *thread* (``tid = lane + 1``; the queue
      pseudo-lane is ``tid 0``), named via ``thread_name`` metadata;
    * each start→commit/abort pair becomes a complete (``"X"``) slice
      whose ``args`` carry the block, round and outcome;
    * ``schedule``/``retry`` events become thread-scoped instants
      (``"i"``) on the queue thread;
    * ``edge`` events (``task = "pred->succ"``) become flow event pairs
      (``"s"`` at the predecessor's commit, ``"f"`` at the successor's
      start), drawing the DAG executor's handoff chains as arrows.

    Executors replay every block from logical clock 0, so blocks are
    laid out side by side: each block gets a global offset equal to the
    cumulative extent of the blocks recorded before it (shared across
    executors, keeping per-block columns comparable).
    """
    # Global per-block offsets, first-appearance order.
    extents: dict[int | None, float] = {}
    block_order: list[int | None] = []
    for event in events:
        if event.block not in extents:
            block_order.append(event.block)
            extents[event.block] = 0.0
        end = event.clock + (event.cost if event.kind == "start" else 0.0)
        extents[event.block] = max(extents[event.block], end)
    offsets: dict[int | None, float] = {}
    cursor = 0.0
    for block in block_order:
        offsets[block] = cursor
        cursor += extents[block]

    out: list[dict[str, object]] = []
    pid_of: dict[str, int] = {}
    named_threads: set[tuple[int, int]] = set()
    open_starts: dict[tuple[str, str, int, int], TimelineEvent] = {}
    # For edge flows: each task's executed slice extent + placement,
    # keyed by (executor, block, task).  Filled as slices close; the
    # edge pass below runs after every slice exists.
    slice_bounds: dict[
        tuple[str, int | None, str], tuple[float, float, int, int]
    ] = {}
    edge_events: list[TimelineEvent] = []

    def pid_for(executor: str) -> int:
        pid = pid_of.get(executor)
        if pid is None:
            pid = len(pid_of) + 1
            pid_of[executor] = pid
            out.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": executor},
            })
        return pid

    def name_thread(pid: int, tid: int) -> None:
        if (pid, tid) in named_threads:
            return
        named_threads.add((pid, tid))
        label = "queue" if tid == _QUEUE_TID else f"lane {tid - 1}"
        out.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": label},
        })

    for event in events:
        pid = pid_for(event.executor)
        ts = (offsets[event.block] + event.clock) * clock_unit_us
        if event.kind == "start":
            key = (event.executor, event.task, event.round, event.lane)
            open_starts[key] = event
        elif event.kind in ("commit", "abort"):
            key = (event.executor, event.task, event.round, event.lane)
            begun = open_starts.pop(key, None)
            if begun is None:
                continue
            tid = _lane_tid(event.lane)
            name_thread(pid, tid)
            start_ts = (offsets[event.block] + begun.clock) * clock_unit_us
            out.append({
                "ph": "X",
                "name": event.task,
                "cat": "execution",
                "pid": pid,
                "tid": tid,
                "ts": start_ts,
                "dur": max(0.0, ts - start_ts),
                "args": {
                    "block": event.block,
                    "round": event.round,
                    "cost": event.cost,
                    "outcome": event.kind,
                },
            })
            slice_bounds[(event.executor, event.block, event.task)] = (
                start_ts, ts, pid, tid
            )
        elif event.kind == "edge":
            edge_events.append(event)
        else:  # schedule / retry — queue-side instants
            tid = _lane_tid(QUEUE_LANE)
            name_thread(pid, tid)
            out.append({
                "ph": "i",
                "name": f"{event.kind} {event.task}",
                "cat": event.kind,
                "s": "t",
                "pid": pid,
                "tid": tid,
                "ts": ts,
                "args": {"block": event.block, "round": event.round},
            })

    # Edge pass: every slice is closed by now, so each dependency can
    # bind its arrow to real slice endpoints.  Edges whose endpoints
    # never executed (shouldn't happen, but recorders are append-only
    # logs, not validated graphs) are skipped rather than drawn dangling.
    for flow_id, event in enumerate(edge_events, start=1):
        pred, sep, succ = event.task.partition(EDGE_SEPARATOR)
        if not sep:
            continue
        pred_bounds = slice_bounds.get((event.executor, event.block, pred))
        succ_bounds = slice_bounds.get((event.executor, event.block, succ))
        if pred_bounds is None or succ_bounds is None:
            continue
        _, pred_end, pred_pid, pred_tid = pred_bounds
        succ_start, _, succ_pid, succ_tid = succ_bounds
        common = {
            "cat": "handoff",
            "name": "dependency",
            "id": flow_id,
            "args": {"from": pred, "to": succ, "block": event.block},
        }
        out.append({
            "ph": "s", "pid": pred_pid, "tid": pred_tid,
            "ts": pred_end, **common,
        })
        out.append({
            "ph": "f", "bp": "e", "pid": succ_pid, "tid": succ_tid,
            "ts": succ_start, **common,
        })
    return out


# The lifecycle pseudo-process sits far above executor pids so the two
# id spaces never collide in a joined trace file.
LIFECYCLE_PID = 1000

# Lifecycle timestamps are simulated seconds; render them at 1 ms of
# trace time per simulated second so multi-minute block intervals stay
# navigable next to the (cost-unit-scaled) execution slices.
SECOND_US = 1000.0


def lifecycle_trace_events(
    traces: Sequence[StitchedTrace],
    *,
    second_us: float = SECOND_US,
    pid: int = LIFECYCLE_PID,
) -> list[dict[str, object]]:
    """Convert stitched lifecycle traces into Chrome trace-event dicts.

    One ``lifecycle`` pseudo-process; each stage of the vocabulary is a
    thread, so the view reads as a swimlane per pipeline stage.  Each
    trace renders as one ``"X"`` slice per stage event (extending to the
    next event) plus a flow chain (``"s"``/``"t"``/``"f"`` sharing the
    trace's id) arrowing the transaction's hop from stage to stage —
    this is what joins the executor timeline in ``repro.cli timeline``
    output so a transaction can be followed from admission to commit.
    """
    from repro.obs.lifecycle import STAGES

    out: list[dict[str, object]] = []
    if not traces:
        return out
    out.append({
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
        "args": {"name": "lifecycle"},
    })
    tid_of = {stage: index for index, stage in enumerate(STAGES)}
    used_tids: set[int] = set()
    for flow_id, trace in enumerate(traces, start=1):
        events = trace.events
        for index, event in enumerate(events):
            tid = tid_of[event.stage]
            if tid not in used_tids:
                used_tids.add(tid)
                out.append({
                    "ph": "M", "name": "thread_name", "pid": pid,
                    "tid": tid, "args": {"name": event.stage},
                })
            ts = event.at * second_us
            next_at = (
                events[index + 1].at if index + 1 < len(events)
                else event.at
            )
            out.append({
                "ph": "X",
                "name": trace.trace_id,
                "cat": "lifecycle",
                "pid": pid,
                "tid": tid,
                "ts": ts,
                "dur": max(0.0, (next_at - event.at) * second_us),
                "args": {"stage": event.stage, **event.attrs},
            })
            if len(events) < 2:
                continue
            phase = ("s" if index == 0
                     else "f" if index == len(events) - 1 else "t")
            flow: dict[str, object] = {
                "ph": phase,
                "cat": "lifecycle",
                "name": "tx",
                "id": flow_id,
                "pid": pid,
                "tid": tid,
                "ts": ts,
                "args": {"trace_id": trace.trace_id,
                         "stage": event.stage},
            }
            if phase == "f":
                flow["bp"] = "e"
            out.append(flow)
    return out


def write_chrome_trace(
    path: str | Path,
    events: Sequence[TimelineEvent],
    *,
    clock_unit_us: float = COST_UNIT_US,
    lifecycle_traces: Sequence[StitchedTrace] = (),
    second_us: float = SECOND_US,
) -> int:
    """Write *events* as a Chrome trace JSON file; returns event count.

    The file is the object form (``{"traceEvents": [...]}``) with
    ``displayTimeUnit: "ms"``, which both catapult and Perfetto accept.
    *lifecycle_traces*, when given, join the file as a separate
    ``lifecycle`` process (see :func:`lifecycle_trace_events`).
    """
    trace_events = chrome_trace_events(events, clock_unit_us=clock_unit_us)
    trace_events.extend(
        lifecycle_trace_events(lifecycle_traces, second_us=second_us)
    )
    payload = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"schema_version": TRACE_SCHEMA_VERSION,
                      "clock_unit_us": clock_unit_us,
                      "second_us": second_us},
    }
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))
    return len(trace_events)


__all__ = [
    "COST_UNIT_US",
    "LIFECYCLE_PID",
    "SECOND_US",
    "TRACE_SCHEMA_VERSION",
    "chrome_trace_events",
    "lifecycle_trace_events",
    "read_trace_jsonl",
    "registry_snapshot_json",
    "render_prometheus",
    "render_summary",
    "span_from_record",
    "span_record",
    "write_chrome_trace",
    "write_trace_jsonl",
]
