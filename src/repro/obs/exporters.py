"""Exporters: JSON-lines traces, Prometheus text, summary tables.

Three consumers, three formats:

* :func:`write_trace_jsonl` — machine-readable dump for the perf
  trajectory: one JSON object per completed span, then a final
  ``{"type": "metrics", ...}`` snapshot line.  :func:`read_trace_jsonl`
  round-trips it for tests and downstream tooling.
* :func:`render_prometheus` — the standard text exposition format, so
  snapshots can be scraped or diffed with existing tooling.
* :func:`render_summary` — human-readable tables (reusing the bench
  report renderer) aggregating spans by name and listing counters.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.report import render_table
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import Span, Tracer

TRACE_SCHEMA_VERSION = 1


# -- JSON lines ---------------------------------------------------------------


def span_record(span: Span) -> dict[str, object]:
    """The JSONL dict form of one span."""
    return {
        "type": "span",
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start_ns": span.start_ns,
        "duration_ns": span.duration_ns,
        "attrs": span.attrs,
    }


def span_from_record(record: dict[str, object]) -> Span:
    """Inverse of :func:`span_record`."""
    return Span(
        name=str(record["name"]),
        span_id=int(record["span_id"]),  # type: ignore[arg-type]
        parent_id=(
            None if record.get("parent_id") is None
            else int(record["parent_id"])  # type: ignore[arg-type]
        ),
        start_ns=int(record["start_ns"]),  # type: ignore[arg-type]
        duration_ns=int(record["duration_ns"]),  # type: ignore[arg-type]
        attrs=dict(record.get("attrs") or {}),  # type: ignore[arg-type]
    )


def write_trace_jsonl(
    path: str | Path, tracer: Tracer, registry: MetricsRegistry
) -> int:
    """Write spans then a final metrics-snapshot line; returns span count.

    The first line is a header carrying the schema version, so readers
    can reject traces written by a future incompatible format.
    """
    spans = tracer.spans()
    lines = [json.dumps({"type": "header",
                         "schema_version": TRACE_SCHEMA_VERSION})]
    lines.extend(json.dumps(span_record(span)) for span in spans)
    lines.append(json.dumps({"type": "metrics",
                             "snapshot": registry.snapshot()}))
    Path(path).write_text("\n".join(lines) + "\n")
    return len(spans)


def read_trace_jsonl(
    path: str | Path,
) -> tuple[list[Span], dict[str, dict[str, object]]]:
    """Parse a trace file back into (spans, metrics snapshot)."""
    spans: list[Span] = []
    snapshot: dict[str, dict[str, object]] = {
        "counters": {}, "gauges": {}, "histograms": {},
    }
    for line_number, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        if not line.strip():
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "header":
            version = record.get("schema_version")
            if version != TRACE_SCHEMA_VERSION:
                raise ValueError(
                    f"unsupported trace schema version {version!r}"
                )
        elif kind == "span":
            spans.append(span_from_record(record))
        elif kind == "metrics":
            snapshot = record["snapshot"]
        else:
            raise ValueError(
                f"line {line_number}: unknown record type {kind!r}"
            )
    return spans, snapshot


# -- Prometheus text format ---------------------------------------------------


def _prom_name(name: str) -> str:
    """Dotted names become underscore names (``exec.occ.aborts`` ->
    ``exec_occ_aborts``) per the exposition-format charset."""
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: tuple[tuple[str, str], ...],
                 extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = labels + extra
    if not items:
        return ""
    rendered = ",".join(f'{_prom_name(key)}="{value}"'
                        for key, value in items)
    return f"{{{rendered}}}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format.

    Histograms are exported as summaries: ``<name>{quantile="0.5"}``
    lines plus ``_sum`` and ``_count``.
    """
    lines: list[str] = []
    for metric in registry.iter_metrics():
        name = _prom_name(metric.name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(
                f"{name}{_prom_labels(metric.labels)} {metric.value:g}"
            )
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(
                f"{name}{_prom_labels(metric.labels)} {metric.value:g}"
            )
        elif isinstance(metric, Histogram):
            summary = metric.summary()
            lines.append(f"# TYPE {name} summary")
            for quantile, key in (("0.5", "p50"), ("0.9", "p90"),
                                  ("0.99", "p99")):
                label_str = _prom_labels(
                    metric.labels, (("quantile", quantile),)
                )
                lines.append(f"{name}{label_str} {summary[key]:g}")
            base = _prom_labels(metric.labels)
            lines.append(f"{name}_sum{base} {summary['sum']:g}")
            lines.append(f"{name}_count{base} {summary['count']:g}")
    return "\n".join(lines)


# -- human-readable summary ---------------------------------------------------


def render_summary(tracer: Tracer, registry: MetricsRegistry) -> str:
    """Aggregate spans by name and list counters/histograms as tables."""
    parts: list[str] = []
    spans = tracer.spans()
    if spans:
        by_name: dict[str, list[Span]] = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        rows = []
        for name in sorted(by_name):
            durations = sorted(s.duration_ms for s in by_name[name])
            total = sum(durations)
            rows.append((
                name,
                len(durations),
                f"{total:.2f}",
                f"{total / len(durations):.3f}",
                f"{durations[-1]:.3f}",
            ))
        parts.append(render_table(
            ["span", "count", "total ms", "mean ms", "max ms"],
            rows,
            title="spans by name",
        ))
    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    if counters:
        parts.append(render_table(
            ["counter", "value"],
            [(key, f"{value:g}")
             for key, value in sorted(counters.items())],
            title="counters",
        ))
    gauges = snapshot["gauges"]
    if gauges:
        parts.append(render_table(
            ["gauge", "value"],
            [(key, f"{value:g}") for key, value in sorted(gauges.items())],
            title="gauges",
        ))
    histograms = snapshot["histograms"]
    if histograms:
        rows = [
            (key, summary["count"], f"{summary['mean']:.4g}",
             f"{summary['p50']:.4g}", f"{summary['p90']:.4g}",
             f"{summary['max']:.4g}")
            for key, summary in sorted(histograms.items())
        ]
        parts.append(render_table(
            ["histogram", "count", "mean", "p50", "p90", "max"],
            rows,
            title="histograms",
        ))
    if not parts:
        return "(no spans or metrics recorded)"
    return "\n\n".join(parts)


def registry_snapshot_json(registry: MetricsRegistry) -> str:
    """Stable JSON form of a registry snapshot (for bench artifacts)."""
    return json.dumps(registry.snapshot(), indent=2, sort_keys=True)


__all__ = [
    "TRACE_SCHEMA_VERSION",
    "read_trace_jsonl",
    "registry_snapshot_json",
    "render_prometheus",
    "render_summary",
    "span_from_record",
    "span_record",
    "write_trace_jsonl",
]
