"""Bounded-memory distribution sketches behind the ``Histogram`` API.

The exact :class:`repro.obs.metrics.Histogram` keeps every observation,
so a million-transaction sweep holds a million floats *per metric*.
:class:`SketchHistogram` replaces that with two fixed-size structures:

* **Log-linear buckets** (DDSketch-style).  A positive value ``v`` maps
  to bucket ``ceil(log(v) / log(gamma))`` with
  ``gamma = (1 + alpha) / (1 - alpha)``; the bucket's representative
  value ``2 * gamma^i / (gamma + 1)`` is within a *relative* error of
  ``alpha`` of every value in the bucket.  Negative values use a
  mirrored store, zeros (and magnitudes below ``ZERO_EPSILON``) a
  dedicated zero bucket.  Bucket counts are plain integers, so merging
  two sketches is exact: ingestion over any chunking yields the same
  bucket table as single-stream ingestion.
* **A deterministic bottom-k reservoir.**  Each observation carries a
  priority — the blake2b hash of its caller-supplied ``key`` (the trace
  hash at lifecycle call sites) or, keyless, its arrival index — and the
  reservoir keeps the ``reservoir_size`` observations with the smallest
  priorities.  While ``count <= reservoir_size`` nothing has ever been
  evicted, so the reservoir *is* the full sample and percentiles are
  computed exactly (same interpolation as the exact histogram —
  byte-identical summaries).  Past that point percentiles fall back to
  a bucket walk.

Accuracy contract (documented tolerance, asserted by
``tests/obs/test_sketch.py`` and ``benchmarks/bench_obs_sampling.py``):

* ``count``/``sum``/``min``/``max``/``mean`` are always exact.
* While ``count <= reservoir_size``: percentiles are exact.
* Once ``count > reservoir_size``: ``percentile(p)`` returns the
  representative of the bucket holding the rank-``floor(p*(n-1))``
  order statistic, so it is within relative error ``alpha`` of that
  order statistic (absolute error ``ZERO_EPSILON`` around zero).  The
  interpolated exact percentile lies between adjacent order statistics,
  so the practical tolerance versus an exact histogram is
  ``2 * alpha`` relative once samples are dense.
* Merging is chunking-invariant: splitting a stream into chunks,
  sketching each, and merging reports *identical* percentiles to
  sketching the whole stream (the hypothesis property in
  ``tests/obs/test_sketch.py`` asserts equality, not tolerance).
"""

from __future__ import annotations

import heapq
import math
from hashlib import blake2b
from typing import Mapping

from repro.obs.metrics import Histogram, LabelItems

# Relative-error target of the log-linear buckets.
DEFAULT_ALPHA = 0.01
# Observations kept verbatim; below this count percentiles are exact.
DEFAULT_RESERVOIR_SIZE = 256
# Magnitudes below this collapse into the zero bucket (bounds the
# bucket index range; log-linear buckets cannot represent zero).
ZERO_EPSILON = 1e-12

_PRIORITY_BYTES = 8


def reservoir_priority(key: str) -> int:
    """Deterministic priority of a reservoir key (stable across
    processes and start methods — unlike the salted builtin ``hash``)."""
    digest = blake2b(key.encode("utf-8"), digest_size=_PRIORITY_BYTES)
    return int.from_bytes(digest.digest(), "big")


class SketchHistogram(Histogram):
    """Drop-in ``Histogram`` with O(1)-per-metric memory.

    Construction matches the exact histogram's ``(name, labels)``
    signature so :meth:`MetricsRegistry._get` can use it as a factory;
    ``alpha``/``reservoir_size`` are keyword-only tuning knobs.
    """

    __slots__ = (
        "_alpha", "_gamma", "_log_gamma", "_buckets", "_neg_buckets",
        "_zero_count", "_count", "_sum", "_min", "_max",
        "_reservoir_size", "_reservoir", "_sequence",
    )

    def __init__(self, name: str, labels: LabelItems = (), *,
                 alpha: float = DEFAULT_ALPHA,
                 reservoir_size: int = DEFAULT_RESERVOIR_SIZE):
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be at least 1")
        super().__init__(name, labels)
        self._alpha = alpha
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self._buckets: dict[int, int] = {}
        self._neg_buckets: dict[int, int] = {}
        self._zero_count = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._reservoir_size = reservoir_size
        # Max-heap on priority via negation: the root is the *largest*
        # priority, i.e. the first entry to evict.
        self._reservoir: list[tuple[int, float]] = []
        self._sequence = 0

    # -- configuration ---------------------------------------------------------

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def reservoir_size(self) -> int:
        return self._reservoir_size

    @property
    def is_exact(self) -> bool:
        """True while no observation has ever left the reservoir."""
        return self._count <= self._reservoir_size

    # -- ingestion -------------------------------------------------------------

    def _bucket_index(self, magnitude: float) -> int:
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def _bucket_value(self, index: int) -> float:
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def observe(self, value: float, key: str | None = None) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            magnitude = abs(value)
            if magnitude < ZERO_EPSILON:
                self._zero_count += 1
            elif value > 0:
                index = self._bucket_index(magnitude)
                self._buckets[index] = self._buckets.get(index, 0) + 1
            else:
                index = self._bucket_index(magnitude)
                self._neg_buckets[index] = \
                    self._neg_buckets.get(index, 0) + 1
            if key is not None:
                priority = reservoir_priority(key)
            else:
                # Keyless observations still need a *stable* priority
                # within one stream; the arrival index gives determinism
                # for repeated runs (chunk-invariance only matters once
                # the bucket walk takes over anyway).
                priority = reservoir_priority(str(self._sequence))
            self._sequence += 1
            entry = (-priority, value)
            if len(self._reservoir) < self._reservoir_size:
                heapq.heappush(self._reservoir, entry)
            elif entry > self._reservoir[0]:
                heapq.heapreplace(self._reservoir, entry)

    # -- reading ---------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def _sorted_buckets(self) -> list[tuple[float, int]]:
        """(representative value, count) in ascending value order."""
        items: list[tuple[float, int]] = [
            (-self._bucket_value(index), count)
            for index, count in sorted(
                self._neg_buckets.items(), reverse=True
            )
        ]
        if self._zero_count:
            items.append((0.0, self._zero_count))
        items.extend(
            (self._bucket_value(index), count)
            for index, count in sorted(self._buckets.items())
        )
        return items

    def percentile(self, p: float) -> float:
        if not 0.0 <= p <= 1.0:
            raise ValueError("percentile must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            if self.is_exact:
                ordered = sorted(value for _, value in self._reservoir)
                rank = p * (len(ordered) - 1)
                lower = int(rank)
                upper = min(lower + 1, len(ordered) - 1)
                fraction = rank - lower
                return ordered[lower] \
                    + (ordered[upper] - ordered[lower]) * fraction
            target = int(p * (self._count - 1))
            cumulative = 0
            result = self._min
            for value, count in self._sorted_buckets():
                cumulative += count
                if cumulative > target:
                    result = value
                    break
            return min(max(result, self._min), self._max)

    def summary(self) -> dict[str, float]:
        with self._lock:
            count = self._count
        if count == 0:
            return {"count": 0, "sum": 0.0}
        return {
            "count": count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "mean": self.mean,
            "p50": self.percentile(0.5),
            "p90": self.percentile(0.9),
            "p99": self.percentile(0.99),
        }

    # -- merging / transport ---------------------------------------------------

    def state(self) -> dict[str, object]:
        """Picklable, JSON-safe dump for ``MetricsRegistry.dump()``."""
        with self._lock:
            return {
                "alpha": self._alpha,
                "reservoir_size": self._reservoir_size,
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "zero_count": self._zero_count,
                "buckets": sorted(self._buckets.items()),
                "neg_buckets": sorted(self._neg_buckets.items()),
                "reservoir": [
                    [priority, value]
                    for priority, value in sorted(self._reservoir)
                ],
            }

    def merge_state(self, state: Mapping[str, object]) -> None:
        """Fold another sketch's :meth:`state` into this one.

        Bucket counts add exactly, so any chunking of one stream merges
        to the same sketch; the merged reservoir keeps the bottom-k of
        the union, so exact-mode percentiles also survive merging.
        """
        if float(state["alpha"]) != self._alpha:  # type: ignore[arg-type]
            raise ValueError(
                "cannot merge sketches with different alpha "
                f"({state['alpha']!r} != {self._alpha!r})"
            )
        with self._lock:
            count = int(state["count"])  # type: ignore[arg-type]
            if count == 0:
                return
            self._count += count
            self._sum += float(state["sum"])  # type: ignore[arg-type]
            self._min = min(self._min, float(state["min"]))  # type: ignore[arg-type]
            self._max = max(self._max, float(state["max"]))  # type: ignore[arg-type]
            self._zero_count += int(state["zero_count"])  # type: ignore[arg-type]
            for index, bucket_count in state["buckets"]:  # type: ignore[union-attr]
                index = int(index)
                self._buckets[index] = \
                    self._buckets.get(index, 0) + int(bucket_count)
            for index, bucket_count in state["neg_buckets"]:  # type: ignore[union-attr]
                index = int(index)
                self._neg_buckets[index] = \
                    self._neg_buckets.get(index, 0) + int(bucket_count)
            incoming = [
                (int(priority), float(value))
                for priority, value in state["reservoir"]  # type: ignore[union-attr]
            ]
            merged = heapq.nlargest(
                self._reservoir_size, self._reservoir + incoming
            )
            heapq.heapify(merged)
            self._reservoir = merged
            self._sequence = max(self._sequence, self._count)


__all__ = [
    "DEFAULT_ALPHA",
    "DEFAULT_RESERVOIR_SIZE",
    "ZERO_EPSILON",
    "SketchHistogram",
    "reservoir_priority",
]
