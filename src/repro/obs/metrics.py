"""Metric primitives: counters, gauges, histograms, and their registry.

Metrics are keyed by a dotted name (``exec.speculative.reexecuted``)
plus an optional label set (``executor="occ", cores=8``); the same
(name, labels) pair always resolves to the same metric object, so hot
paths can call ``registry.counter(...)`` repeatedly without allocating.

Two registry implementations share one interface:

* :class:`MetricsRegistry` — records everything, thread-safe;
* :class:`NoopMetricsRegistry` — the zero-cost default installed when
  instrumentation is disabled.  Every accessor returns a shared no-op
  metric whose mutators do nothing, so instrumented code paths cost a
  few attribute lookups and nothing else.
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator, Mapping

LabelItems = tuple[tuple[str, str], ...]


def label_key(labels: Mapping[str, object]) -> LabelItems:
    """Canonical, hashable form of a label set (sorted, stringified)."""
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def render_metric_key(name: str, labels: LabelItems) -> str:
    """Flat string form used in snapshots: ``name{k=v,...}``."""
    if not labels:
        return name
    rendered = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value (queue depth, pool weight, utilization)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A distribution with exact percentile summaries.

    Observations are retained in full (the simulation scale keeps these
    small); percentiles use linear interpolation between order
    statistics, so ``percentile(0.0)`` is the minimum, ``percentile(1.0)``
    the maximum, and ``percentile(0.5)`` of ``[1, 2, 3, 4]`` is ``2.5``.
    """

    __slots__ = ("name", "labels", "_values", "_lock")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self._values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float, key: str | None = None) -> None:
        # ``key`` is the reservoir key used by the sketch subclass
        # (repro.obs.sketch); the exact histogram ignores it so call
        # sites can pass it regardless of the registry policy.
        with self._lock:
            self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        values = self._values
        return sum(values) / len(values) if values else 0.0

    def percentile(self, p: float) -> float:
        """Interpolated percentile of the observations, ``p`` in [0, 1]."""
        if not 0.0 <= p <= 1.0:
            raise ValueError("percentile must be in [0, 1]")
        with self._lock:
            ordered = sorted(self._values)
        if not ordered:
            return 0.0
        rank = p * (len(ordered) - 1)
        lower = int(rank)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = rank - lower
        return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction

    def summary(self) -> dict[str, float]:
        """Count, sum, extremes, and the standard percentile trio.

        An empty histogram reports only ``count``/``sum``: its extremes
        and percentiles are undefined, and exporting zeros for them
        would be indistinguishable from real zero observations.
        """
        with self._lock:
            values = list(self._values)
        if not values:
            return {"count": 0, "sum": 0.0}
        return {
            "count": len(values),
            "sum": sum(values),
            "min": min(values),
            "max": max(values),
            "mean": sum(values) / len(values),
            "p50": self.percentile(0.5),
            "p90": self.percentile(0.9),
            "p99": self.percentile(0.99),
        }


Metric = Counter | Gauge | Histogram


METRIC_POLICIES = ("exact", "sketch")


class MetricsRegistry:
    """Create-or-get store of metrics keyed by (name, labels).

    Thread-safe: registration takes a lock; the metric objects guard
    their own mutation.  ``enabled`` is True so instrumentation helpers
    can branch cheaply on it.

    ``policy`` selects the histogram implementation: ``"exact"`` (the
    default — full sample retention, byte-identical to every golden and
    regress baseline) or ``"sketch"`` (bounded-memory log-linear
    sketches from :mod:`repro.obs.sketch`, for 100k+-transaction
    sweeps).  Counters and gauges are unaffected by the policy.
    """

    enabled = True

    def __init__(self, policy: str = "exact") -> None:
        if policy not in METRIC_POLICIES:
            raise ValueError(
                f"unknown metrics policy {policy!r}; expected one of "
                f"{', '.join(METRIC_POLICIES)}"
            )
        self.policy = policy
        if policy == "sketch":
            from repro.obs.sketch import SketchHistogram
            self._histogram_kind: type[Histogram] = SketchHistogram
        else:
            self._histogram_kind = Histogram
        self._metrics: dict[tuple[type, str, LabelItems], Metric] = {}
        self._lock = threading.Lock()

    def _get(self, kind: type, name: str,
             labels: Mapping[str, object]) -> Metric:
        key = (kind, name, label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(key, kind(name, key[2]))
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)  # type: ignore[return-value]

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)  # type: ignore[return-value]

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get(self._histogram_kind, name, labels)  # type: ignore[return-value]

    def __len__(self) -> int:
        return len(self._metrics)

    def iter_metrics(self) -> Iterator[Metric]:
        """All registered metrics, in registration order."""
        return iter(list(self._metrics.values()))

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Machine-readable dump: flat metric keys to values/summaries."""
        counters: dict[str, object] = {}
        gauges: dict[str, object] = {}
        histograms: dict[str, object] = {}
        for metric in self.iter_metrics():
            key = render_metric_key(metric.name, metric.labels)
            if isinstance(metric, Counter):
                counters[key] = metric.value
            elif isinstance(metric, Gauge):
                gauges[key] = metric.value
            else:
                histograms[key] = metric.summary()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def dump(self) -> list[dict[str, object]]:
        """Lossless, picklable dump for cross-process merging.

        Unlike :meth:`snapshot` (which summarises histograms), the dump
        retains raw histogram observations so a parent registry can
        merge a worker's recordings without losing percentile fidelity.
        One record per metric: ``{"kind", "name", "labels", ...}`` with
        ``value`` for counters/gauges, ``values`` for exact histograms,
        and ``state`` for bounded-memory sketches (kind ``"sketch"``).
        """
        from repro.obs.sketch import SketchHistogram

        records: list[dict[str, object]] = []
        for metric in self.iter_metrics():
            record: dict[str, object] = {
                "name": metric.name,
                "labels": list(metric.labels),
            }
            if isinstance(metric, Counter):
                record["kind"] = "counter"
                record["value"] = metric.value
            elif isinstance(metric, Gauge):
                record["kind"] = "gauge"
                record["value"] = metric.value
            elif isinstance(metric, SketchHistogram):
                record["kind"] = "sketch"
                record["state"] = metric.state()
            else:
                record["kind"] = "histogram"
                with metric._lock:
                    record["values"] = list(metric._values)
            records.append(record)
        return records

    def merge_dump(self, records: Iterable[dict[str, object]]) -> None:
        """Fold a :meth:`dump` from another registry into this one.

        Counters sum, histograms concatenate their observations, and
        gauges adopt the dumped value (last write wins — gauges are
        point-in-time readings, not accumulators).  Used to fold
        process-pool workers' recordings into the parent registry at
        join, closing the ``--backend process`` observability gap.

        Sketch records (kind ``"sketch"``) merge bucket-exactly into a
        sketch-policy parent; folding one into an ``exact``-policy
        registry raises — the raw observations are gone, and silently
        accepting the sketch would corrupt a baseline that promises
        full-fidelity percentiles.  Exact ``"histogram"`` records merge
        under either policy (observations re-observe into whatever the
        policy builds).
        """
        from repro.obs.sketch import SketchHistogram

        for record in records:
            labels = dict(record["labels"])  # type: ignore[arg-type]
            name = str(record["name"])
            kind = record["kind"]
            if kind == "counter":
                self.counter(name, **labels).inc(
                    float(record["value"])  # type: ignore[arg-type]
                )
            elif kind == "gauge":
                self.gauge(name, **labels).set(
                    float(record["value"])  # type: ignore[arg-type]
                )
            elif kind == "histogram":
                histogram = self.histogram(name, **labels)
                for value in record["values"]:  # type: ignore[union-attr]
                    histogram.observe(float(value))  # type: ignore[arg-type]
            elif kind == "sketch":
                target = self.histogram(name, **labels)
                if not isinstance(target, SketchHistogram):
                    raise ValueError(
                        f"cannot merge sketch dump for {name!r} into a "
                        f"{self.policy!r}-policy registry; construct "
                        "MetricsRegistry(policy='sketch') on the "
                        "receiving side"
                    )
                target.merge_state(record["state"])  # type: ignore[arg-type]
            else:
                raise ValueError(f"unknown metric kind {kind!r}")


class _NoopCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NoopGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NoopHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float, key: str | None = None) -> None:
        pass


_NOOP_COUNTER = _NoopCounter("noop")
_NOOP_GAUGE = _NoopGauge("noop")
_NOOP_HISTOGRAM = _NoopHistogram("noop")


class NoopMetricsRegistry(MetricsRegistry):
    """The disabled registry: every accessor returns a shared no-op.

    Nothing is ever stored, so leaving instrumentation calls in hot
    paths costs a method call returning a singleton — the
    zero-cost-when-disabled guarantee the tier-1 timings rely on.
    """

    enabled = False

    def counter(self, name: str, **labels: object) -> Counter:
        return _NOOP_COUNTER

    def gauge(self, name: str, **labels: object) -> Gauge:
        return _NOOP_GAUGE

    def histogram(self, name: str, **labels: object) -> Histogram:
        return _NOOP_HISTOGRAM

    def snapshot(self) -> dict[str, dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NOOP_REGISTRY = NoopMetricsRegistry()
