"""Critical-path profiling of recorded execution timelines.

The flight recorder (:mod:`repro.obs.timeline`) captures *what the
executor actually did*: which task ran on which lane, when, and whether
it committed.  This module turns that event stream back into the
quantities the paper reasons about analytically:

* **empirical makespan** — the last finish clock, which must equal the
  executor's reported wall time (the events are the schedule);
* **per-lane utilization** — busy time over makespan for each lane,
  exposing the stragglers Eq. 1's ``floor(x/n) + 1`` term models;
* **empirical critical path** — the longest chain of executions linked
  by ``finish == start`` hand-offs, the measured counterpart of the
  LCC-sequential assumption behind Eq. 2;
* **measured-vs-analytical bounds** — the observed speed-up next to
  Eq. 1 ``R = x/(⌊x/n⌋ + 1 + c·x)`` and Eq. 2 ``R = min(n, 1/l)``,
  with ``x``/``c``/``l`` derived from the *same* runtime conflict
  relation the executors use (:func:`repro.execution.engine.conflict_groups`),
  so both sides of the comparison share one ground truth.

Which executors the Eq. 2 bound actually binds: the speculative family
and the grouped executor serialize every conflict component, so their
measured speed-up can never exceed ``min(n, 1/l)`` under unit costs
(:data:`EQ2_STRICT_EXECUTORS`; asserted in tests and the timeline CLI).
The OCC and DAG engines exploit the partial order *inside* a component
and may legitimately beat the bound — the LCC-sequential assumption is
pessimistic for them (see :mod:`repro.execution.dag`), so they are
flagged, not failed.

Import direction: this module imports :mod:`repro.execution` and
:mod:`repro.core.speedup`, therefore :mod:`repro.obs.__init__` must
never import it (the executors import ``repro.obs``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import obs
from repro.core.speedup import group_speedup_bound, speculative_speedup
from repro.execution.engine import ExecutionReport, TxTask, conflict_groups
from repro.obs.timeline import TimelineEvent

# Executors whose model serializes whole conflict components; for these
# the measured speed-up is provably <= Eq. 2's min(n, 1/l) under unit
# costs.  OCC and DAG schedule inside components and may exceed it.
EQ2_STRICT_EXECUTORS = (
    "speculative",
    "speculative-informed",
    "static-informed",
    "grouped",
)

_EPS = 1e-9


@dataclass(frozen=True)
class Execution:
    """One matched start/finish pair from the event stream."""

    task: str
    lane: int
    round: int
    start: float
    finish: float
    cost: float
    committed: bool


@dataclass(frozen=True)
class LaneStats:
    """Busy time and task count for one worker lane."""

    lane: int
    busy: float
    executions: int
    utilization: float


@dataclass(frozen=True)
class TimelineProfile:
    """Everything the profiler recomputes from one event slice."""

    executor: str
    blocks: tuple[int | None, ...]
    executions: int
    committed: int
    aborted: int
    retries: int
    rounds: int
    makespan: float
    total_cost: float
    useful_cost: float
    lanes: tuple[LaneStats, ...]
    critical_chain: tuple[str, ...]
    critical_chain_cost: float

    @property
    def mean_utilization(self) -> float:
        if not self.lanes:
            return 0.0
        return sum(s.utilization for s in self.lanes) / len(self.lanes)

    def as_dict(self) -> dict[str, object]:
        return {
            "executor": self.executor,
            "blocks": list(self.blocks),
            "executions": self.executions,
            "committed": self.committed,
            "aborted": self.aborted,
            "retries": self.retries,
            "rounds": self.rounds,
            "makespan": self.makespan,
            "total_cost": self.total_cost,
            "useful_cost": self.useful_cost,
            "mean_utilization": self.mean_utilization,
            "lanes": [
                {
                    "lane": s.lane,
                    "busy": s.busy,
                    "executions": s.executions,
                    "utilization": s.utilization,
                }
                for s in self.lanes
            ],
            "critical_chain": list(self.critical_chain),
            "critical_chain_cost": self.critical_chain_cost,
        }


def extract_executions(
    events: Sequence[TimelineEvent],
) -> list[Execution]:
    """Pair ``start`` events with their ``commit``/``abort`` finishes.

    An execution is keyed by ``(task, round, lane)`` — a task aborted in
    round 0 and re-run in round 1 yields two executions.  Unfinished
    starts (no matching finish) are dropped; a finish without a start is
    a malformed stream and raises ``ValueError``.
    """
    open_starts: dict[tuple[str, int, int], TimelineEvent] = {}
    executions: list[Execution] = []
    for event in events:
        key = (event.task, event.round, event.lane)
        if event.kind == "start":
            open_starts[key] = event
        elif event.kind in ("commit", "abort"):
            begun = open_starts.pop(key, None)
            if begun is None:
                raise ValueError(
                    f"{event.kind} without start for task {event.task!r} "
                    f"round {event.round} lane {event.lane}"
                )
            executions.append(Execution(
                task=event.task,
                lane=event.lane,
                round=event.round,
                start=begun.clock,
                finish=event.clock,
                cost=event.cost,
                committed=event.kind == "commit",
            ))
    return executions


def longest_handoff_chain(
    executions: Sequence[Execution], *, eps: float = _EPS
) -> tuple[tuple[str, ...], float]:
    """The empirical critical path: back-walk ``finish == start`` links.

    Starting from the last-finishing execution, repeatedly step to a
    predecessor whose finish coincides (within *eps*) with the current
    start — preferring the costliest, then the earliest-starting
    candidate — until no link exists.  Returns the chain's task names in
    execution order and its summed cost.
    """
    if not executions:
        return (), 0.0
    current = max(executions, key=lambda e: (e.finish, e.cost))
    chain = [current]
    used = {id(current)}
    while True:
        candidates = [
            e for e in executions
            if id(e) not in used and abs(e.finish - current.start) <= eps
        ]
        if not candidates:
            break
        current = max(candidates, key=lambda e: (e.cost, -e.start))
        chain.append(current)
        used.add(id(current))
    chain.reverse()
    return tuple(e.task for e in chain), sum(e.cost for e in chain)


def profile_events(
    events: Sequence[TimelineEvent], *, executor: str | None = None
) -> TimelineProfile:
    """Recompute makespan, lane stats and the critical chain from events.

    *events* should be one executor's slice (pass ``executor=`` to
    filter here instead); clocks are taken as absolute, so the makespan
    is simply the latest finish.
    """
    if executor is not None:
        events = [e for e in events if e.executor == executor]
    names = {e.executor for e in events}
    if len(names) > 1:
        raise ValueError(
            f"events span executors {sorted(names)}; profile one at a time"
        )
    executions = extract_executions(events)
    retries = sum(1 for e in events if e.kind == "retry")
    makespan = max((e.finish for e in executions), default=0.0)
    busy: dict[int, float] = {}
    counts: dict[int, int] = {}
    for execution in executions:
        busy[execution.lane] = busy.get(execution.lane, 0.0) \
            + execution.cost
        counts[execution.lane] = counts.get(execution.lane, 0) + 1
    lanes = tuple(
        LaneStats(
            lane=lane,
            busy=busy[lane],
            executions=counts[lane],
            utilization=busy[lane] / makespan if makespan > 0 else 0.0,
        )
        for lane in sorted(busy)
    )
    chain, chain_cost = longest_handoff_chain(executions)
    blocks: dict[int | None, None] = {}
    for event in events:
        blocks.setdefault(event.block)
    return TimelineProfile(
        executor=names.pop() if names else (executor or ""),
        blocks=tuple(blocks),
        executions=len(executions),
        committed=sum(1 for e in executions if e.committed),
        aborted=sum(1 for e in executions if not e.committed),
        retries=retries,
        rounds=1 + max((e.round for e in executions), default=0),
        makespan=makespan,
        total_cost=sum(e.cost for e in executions),
        useful_cost=sum(e.cost for e in executions if e.committed),
        lanes=lanes,
        critical_chain=chain,
        critical_chain_cost=chain_cost,
    )


# -- measured vs analytical ---------------------------------------------------


@dataclass(frozen=True)
class ConflictProfile:
    """The paper's block parameters derived from the runtime conflicts.

    ``x`` transactions, of which ``conflicted`` sit in a multi-member
    conflict group (rate ``c = conflicted/x``); the largest group has
    ``lcc`` members (relative size ``l = lcc/x``).  Derived with
    :func:`repro.execution.engine.conflict_groups`, i.e. the same
    relation the executors validate against.
    """

    x: int
    conflicted: int
    lcc: int

    @property
    def c(self) -> float:
        return self.conflicted / self.x if self.x else 0.0

    @property
    def l(self) -> float:  # noqa: E741 - the paper's symbol
        return self.lcc / self.x if self.x else 0.0


def task_conflict_profile(tasks: Sequence[TxTask]) -> ConflictProfile:
    """Measure ``x`` / ``c`` / ``l`` for one block's task set."""
    groups = conflict_groups(tasks)
    conflicted = sum(len(g) for g in groups if len(g) > 1)
    lcc = max((len(g) for g in groups), default=0)
    return ConflictProfile(x=len(tasks), conflicted=conflicted, lcc=lcc)


@dataclass(frozen=True)
class BoundComparison:
    """One block's measured speed-up next to the Eq. 1 / Eq. 2 values."""

    executor: str
    cores: int
    measured: float
    eq1: float
    eq2: float
    strict: bool

    @property
    def within_eq2(self) -> bool:
        return self.measured <= self.eq2 + 1e-9

    @property
    def violates(self) -> bool:
        """True only when a *strict* executor exceeds the Eq. 2 bound."""
        return self.strict and not self.within_eq2

    def as_dict(self) -> dict[str, object]:
        return {
            "executor": self.executor,
            "cores": self.cores,
            "measured": self.measured,
            "eq1": self.eq1,
            "eq2": self.eq2,
            "strict": self.strict,
            "within_eq2": self.within_eq2,
        }


def compare_to_bounds(
    report: ExecutionReport, profile: ConflictProfile
) -> BoundComparison:
    """Put a report's measured speed-up next to its analytical bounds."""
    if profile.x:
        eq1 = speculative_speedup(profile.x, report.cores, profile.c)
        eq2 = group_speedup_bound(report.cores, profile.l)
    else:
        eq1 = 1.0
        eq2 = float(report.cores)
    return BoundComparison(
        executor=report.executor,
        cores=report.cores,
        measured=report.speedup,
        eq1=eq1,
        eq2=eq2,
        strict=report.executor in EQ2_STRICT_EXECUTORS,
    )


def record_timeline_metrics(
    profile: TimelineProfile,
    comparison: BoundComparison | None = None,
) -> None:
    """Feed a profile into the registry as ``exec.<engine>.timeline.*``.

    Emits histograms ``...timeline.makespan`` / ``.critical_path`` /
    ``.lane_utilization`` (one observation per profiled slice) and
    counters ``...timeline.executions`` / ``.aborts`` / ``.retries``;
    with a *comparison*, also ``...timeline.bound_gap`` (Eq. 2 bound
    minus measured — negative means the bound was exceeded) and counter
    ``...timeline.bound_violations`` for strict executors.
    """
    if not obs.enabled():
        return
    prefix = f"exec.{profile.executor}.timeline"
    obs.histogram(f"{prefix}.makespan").observe(profile.makespan)
    obs.histogram(f"{prefix}.critical_path").observe(
        profile.critical_chain_cost
    )
    obs.histogram(f"{prefix}.lane_utilization").observe(
        profile.mean_utilization
    )
    obs.counter(f"{prefix}.executions").inc(profile.executions)
    obs.counter(f"{prefix}.aborts").inc(profile.aborted)
    obs.counter(f"{prefix}.retries").inc(profile.retries)
    if comparison is not None:
        obs.histogram(f"{prefix}.bound_gap").observe(
            comparison.eq2 - comparison.measured
        )
        if comparison.violates:
            obs.counter(f"{prefix}.bound_violations").inc()


def profile_recorder(
    recorder, *, per_block: bool = False
) -> Mapping[str, list[TimelineProfile]]:
    """Profile every executor captured by *recorder*.

    Returns ``executor -> [profile, ...]`` — one profile per executor
    (whole capture), or one per (executor, block) with ``per_block``.
    """
    out: dict[str, list[TimelineProfile]] = {}
    for name in recorder.executors():
        events = recorder.events(executor=name)
        if per_block:
            by_block: dict[int | None, list[TimelineEvent]] = {}
            for event in events:
                by_block.setdefault(event.block, []).append(event)
            out[name] = [
                profile_events(chunk) for chunk in by_block.values()
            ]
        else:
            out[name] = [profile_events(events)]
    return out


__all__ = [
    "EQ2_STRICT_EXECUTORS",
    "BoundComparison",
    "ConflictProfile",
    "Execution",
    "LaneStats",
    "TimelineProfile",
    "compare_to_bounds",
    "extract_executions",
    "longest_handoff_chain",
    "profile_events",
    "profile_recorder",
    "record_timeline_metrics",
    "task_conflict_profile",
]
