"""End-to-end lifecycle pipeline: mempool → gossip → consensus → execute.

:func:`run_lifecycle` drives one seeded chain workload through the
*whole* transaction pipeline so every stage of the lifecycle vocabulary
(:mod:`repro.obs.lifecycle`) actually fires:

1. each block's transactions are admitted to a fee-market
   :class:`~repro.mempool.pool.Mempool` with staggered arrival times
   (minting the ``admitted`` root spans, and ``dropped`` closures when
   a capacity-bounded pool evicts);
2. the pending set floods a gossip topology
   (:class:`~repro.network.gossip.GossipNetwork`), producing per-hop
   ``relayed`` events and a ``propagated`` mark at full coverage;
3. sharded profiles dispatch each transaction to its committee
   (``assigned``);
4. the miner packs a block (``included``) and a consensus round runs —
   a PBFT committee for sharded chains, a PoW interval draw otherwise
   (``consensus``);
5. the block replays through one of the simulated executors under the
   flight recorder, and :func:`~repro.obs.lifecycle.stitch_execution_events`
   folds the recorded ``schedule``/``abort``/``retry``/``commit``
   events into the traces (``scheduled``/``aborted``/``retried``/
   ``committed``), closing each one.

All timing is simulated seconds on the lifecycle tracer's clock: block
intervals come from the chain profile, gossip latencies from the
topology, consensus from the round model, and execution from the
executor's logical clock scaled by ``cost_unit_seconds``.  The run is
fully deterministic under a fixed seed — the regress gate snapshots it
— and it degrades to a cheap plain run when observability is disabled
(the bench measures exactly that delta).

Like :mod:`repro.obs.critical_path` and :mod:`repro.obs.regress`, this
module imports the execution/workload layers and must never be imported
from ``repro.obs.__init__``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.mempool.pool import Mempool, PoolEntry
from repro.network.gossip import GossipNetwork
from repro.obs.critical_path import profile_events
from repro.obs.lifecycle import (
    StageStats,
    StitchedTrace,
    join_shard_traces,
    shard_subtrace_id,
    stage_breakdown,
    stitch_execution_events,
)
from repro.obs.monitor import BlockSample
from repro.obs.regress import (
    chain_task_blocks,
    make_executor,
)

DEFAULT_NODES = 24
DEFAULT_COST_UNIT_SECONDS = 0.001
DEFAULT_VALIDATION_DELAY = 0.05
PBFT_COMMITTEE_SIZE = 7


@dataclass(frozen=True)
class LifecycleRunResult:
    """Everything one pipeline run produced, ready for reporting."""

    chain: str
    executor: str
    blocks: int
    admitted: int
    committed: int
    dropped: int
    traces: tuple[StitchedTrace, ...]

    @property
    def closed(self) -> int:
        return self.committed + self.dropped

    @property
    def open(self) -> int:
        return len(self.traces) - self.closed

    def breakdown(self) -> dict[str, StageStats]:
        return stage_breakdown(self.traces)


def _block_dag(profile, payload, packed_hashes: set[str], cores: int):
    """The dependency-DAG engine over the *packed* subset of a block."""
    from repro.execution import account_dag, run_dag, utxo_dag

    subset = [tx for tx in payload if tx.tx_hash in packed_hashes]
    if profile.data_model == "utxo":
        dag = utxo_dag(subset)
    else:
        dag = account_dag(subset)
    return run_dag(dag, cores)


def run_lifecycle(
    profile,
    *,
    blocks: int,
    seed: int,
    cores: int,
    executor: str = "dag",
    scale: float = 1.0,
    nodes: int = DEFAULT_NODES,
    mempool_weight: int | None = None,
    cost_unit_seconds: float = DEFAULT_COST_UNIT_SECONDS,
    validation_delay: float = DEFAULT_VALIDATION_DELAY,
    on_block: Callable[[BlockSample], None] | None = None,
) -> LifecycleRunResult:
    """Run *profile*'s seeded workload through the full pipeline.

    Args:
        profile: a :class:`~repro.workload.profiles.ChainProfile`.
        blocks: number of blocks to generate and commit.
        seed: workload + pipeline randomness seed (deterministic).
        cores: simulated cores for the execution engine.
        executor: engine name (``dag`` or any task-executor name from
            :data:`repro.obs.regress.EXECUTOR_CHOICES`).
        scale: workload scale factor passed to the chain builder.
        nodes: gossip topology size.
        mempool_weight: pool capacity; ``None`` sizes the pool to never
            evict, an explicit small cap forces ``dropped`` traces.
        cost_unit_seconds: simulated seconds per execution cost unit.
        validation_delay: per-hop block validation delay (seconds).
        on_block: optional streaming hook — called with one
            :class:`~repro.obs.monitor.BlockSample` after each executed
            block, so a :class:`~repro.obs.monitor.StreamingMonitor`
            can watch the run without holding the whole trace.

    Raises:
        ValueError: unknown executor name or non-positive parameters
            (the CLI maps these to exit 2).
    """
    if blocks < 1:
        raise ValueError("blocks must be at least 1")
    if cores < 1:
        raise ValueError("cores must be at least 1")
    if nodes < 2:
        raise ValueError("nodes must be at least 2")
    if cost_unit_seconds <= 0:
        raise ValueError("cost_unit_seconds must be positive")
    if mempool_weight is not None and mempool_weight < 1:
        raise ValueError("mempool_weight must be positive")
    task_executor = (
        None if executor == "dag" else make_executor(executor, cores)
    )

    rng = random.Random(seed)
    network = GossipNetwork.random_topology(
        nodes, rng=random.Random(seed)
    )
    origin = "n0"
    pbft = None
    if profile.num_shards > 0:
        from repro.consensus.pbft import PBFTCommittee

        pbft = PBFTCommittee(
            size=PBFT_COMMITTEE_SIZE, rng=random.Random(seed)
        )

    life = obs.lifecycle()
    recorder = obs.get_recorder()
    pool: Mempool = Mempool(
        max_weight=mempool_weight if mempool_weight is not None
        else 2 ** 62,
        min_fee_rate=1.0,
    )

    admitted = 0
    executed_hashes: set[str] = set()
    closed_seen = 0
    shard_subs: dict[str, tuple[str, ...]] = {}
    with obs.trace_span(
        "lifecycle.run", chain=profile.name, executor=executor
    ):
        for height, tasks, payload in chain_task_blocks(
            profile, blocks=blocks, seed=seed, scale=scale
        ):
            if not tasks:
                continue
            block_started = time.perf_counter()
            sim_started = life.clock
            # 1. Admission: transactions arrive spread across the block
            # interval, each minting its lifecycle root span.
            step = profile.block_interval / max(1, len(tasks))
            for task in tasks:
                life.advance(step)
                weight = max(1, round(task.cost))
                fee = int(weight * (1.0 + 4.0 * rng.random())) + weight
                pool.submit(PoolEntry(
                    tx_hash=task.tx_hash, fee=fee, weight=weight,
                    payload=task,
                ))
                admitted += 1

            pending = pool.entries_by_fee_rate()
            if not pending:
                continue
            # 2. Gossip: the pending set floods the topology; relays
            # and the propagated mark land on each trace.
            result = network.propagate(
                origin,
                validation_delay=validation_delay,
                tx_hashes=[entry.tx_hash for entry in pending],
            )
            life.advance(result.coverage_time(1.0))

            # 3. Sharded profiles dispatch to committees.  A transaction
            # whose write set touches state homed on *other* shards
            # spans those committees (Zilliqa-style inter-committee
            # state sync): each extra shard gets a ``tx#shard=k``
            # sub-trace, joined back into one trace at the end of the
            # run (join_shard_traces) — the PR 5 cross-shard open item.
            if profile.num_shards > 0:
                from repro.sharding.committee import shard_for_address

                for entry in pending:
                    shard = shard_for_address(
                        entry.tx_hash, profile.num_shards
                    )
                    life.record(entry.tx_hash, "assigned", shard=shard)
                    task = entry.payload
                    if task is None or entry.tx_hash in shard_subs:
                        continue
                    spans = tuple(sorted(
                        {
                            shard_for_address(
                                location, profile.num_shards
                            )
                            for location in task.writes
                        } - {shard}
                    ))
                    if not spans:
                        continue
                    subs = []
                    for other in spans:
                        sub = shard_subtrace_id(entry.tx_hash, other)
                        life.begin(
                            sub, parent_trace=entry.tx_hash,
                            shard=other,
                        )
                        life.record(
                            sub, "assigned",
                            shard=other, home_shard=shard,
                        )
                        subs.append(sub)
                    shard_subs[entry.tx_hash] = tuple(subs)

            # 4. Packing + consensus.  The budget spans the whole pool,
            # so every surviving (non-evicted) transaction is included.
            packed = pool.pack_block(max(1, pool.total_weight))
            if not packed:
                continue
            if pbft is not None:
                round_result = pbft.run_round()
                latency = round_result.latency
                mechanism = "pbft"
            else:
                latency = rng.expovariate(1.0 / profile.block_interval)
                mechanism = "pow"
            life.advance(latency)
            for entry in packed:
                life.record(
                    entry.tx_hash, "consensus",
                    block=height, mechanism=mechanism,
                )
                for sub in shard_subs.get(entry.tx_hash, ()):
                    life.record(
                        sub, "consensus",
                        block=height, mechanism=mechanism,
                    )

            # 5. Execution replay + stitch.
            packed_hashes = {entry.tx_hash for entry in packed}
            executed_hashes |= packed_hashes
            execute_at = life.clock
            with recorder.block(height):
                if task_executor is None:
                    report = _block_dag(
                        profile, payload, packed_hashes, cores
                    )
                else:
                    packed_tasks = [entry.payload for entry in packed]
                    report = task_executor.run(packed_tasks)
            stitch_execution_events(
                life,
                recorder.events(block=height),
                at=execute_at,
                cost_unit_seconds=cost_unit_seconds,
            )
            life.advance(report.wall_time * cost_unit_seconds)

            # Cross-shard sub-traces close when the home commit's state
            # delta reaches the remote committees — the parent's commit
            # time (falls back to the block clock for unsampled txs,
            # whose sub-traces are not materialised either).
            for entry in packed:
                subs = shard_subs.pop(entry.tx_hash, ())
                if not subs:
                    continue
                parent = life.trace(entry.tx_hash)
                synced_at = (
                    parent.ended_at
                    if parent is not None and parent.closed
                    else life.clock
                )
                for sub in subs:
                    life.close(
                        sub, "committed", at=synced_at,
                        sync="state_delta",
                    )

            if on_block is not None:
                newly_closed = life.closed_traces()[closed_seen:]
                closed_seen += len(newly_closed)
                stage_latencies: dict[str, list[float]] = {}
                for trace in join_shard_traces(newly_closed):
                    for stage, stage_wait in trace.stage_latencies():
                        stage_latencies.setdefault(
                            stage, []
                        ).append(stage_wait)
                block_events = recorder.events(block=height)
                utilization = (
                    profile_events(block_events).mean_utilization
                    if block_events else 0.0
                )
                on_block(BlockSample(
                    height=height,
                    txs=len(packed),
                    committed=report.num_tasks,
                    aborted=report.aborts,
                    retried=report.reexecuted,
                    wall_clock_s=time.perf_counter() - block_started,
                    sim_seconds=life.clock - sim_started,
                    mempool_depth=len(pool),
                    lane_utilization=utilization,
                    stage_latencies={
                        stage: tuple(values)
                        for stage, values in stage_latencies.items()
                    },
                ))

    traces = tuple(join_shard_traces(life.traces()))
    committed = sum(1 for t in traces if t.outcome == "committed")
    dropped = sum(1 for t in traces if t.outcome == "dropped")
    return LifecycleRunResult(
        chain=profile.name,
        executor=executor,
        blocks=blocks,
        admitted=admitted,
        committed=committed,
        dropped=dropped,
        traces=traces,
    )


__all__ = [
    "DEFAULT_COST_UNIT_SECONDS",
    "DEFAULT_NODES",
    "DEFAULT_VALIDATION_DELAY",
    "PBFT_COMMITTEE_SIZE",
    "LifecycleRunResult",
    "run_lifecycle",
]
