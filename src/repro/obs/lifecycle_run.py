"""End-to-end lifecycle pipeline: mempool → gossip → consensus → execute.

:func:`run_lifecycle` drives one seeded chain workload through the
*whole* transaction pipeline so every stage of the lifecycle vocabulary
(:mod:`repro.obs.lifecycle`) actually fires:

1. each block's transactions are admitted to a fee-market
   :class:`~repro.mempool.pool.Mempool` with staggered arrival times
   (minting the ``admitted`` root spans, and ``dropped`` closures when
   a capacity-bounded pool evicts);
2. the pending set floods a gossip topology
   (:class:`~repro.network.gossip.GossipNetwork`), producing per-hop
   ``relayed`` events and a ``propagated`` mark at full coverage;
3. sharded profiles dispatch each transaction to its committee
   (``assigned``);
4. the miner packs a block (``included``) and a consensus round runs —
   a PBFT committee for sharded chains, a PoW interval draw otherwise
   (``consensus``);
5. the block replays through one of the simulated executors under the
   flight recorder, and :func:`~repro.obs.lifecycle.stitch_execution_events`
   folds the recorded ``schedule``/``abort``/``retry``/``commit``
   events into the traces (``scheduled``/``aborted``/``retried``/
   ``committed``), closing each one.

All timing is simulated seconds on the lifecycle tracer's clock: block
intervals come from the chain profile, gossip latencies from the
topology, consensus from the round model, and execution from the
executor's logical clock scaled by ``cost_unit_seconds``.  The run is
fully deterministic under a fixed seed — the regress gate snapshots it
— and it degrades to a cheap plain run when observability is disabled
(the bench measures exactly that delta).

Like :mod:`repro.obs.critical_path` and :mod:`repro.obs.regress`, this
module imports the execution/workload layers and must never be imported
from ``repro.obs.__init__``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import obs
from repro.mempool.pool import Mempool, PoolEntry
from repro.network.gossip import GossipNetwork
from repro.obs.lifecycle import (
    StageStats,
    StitchedTrace,
    stage_breakdown,
    stitch_execution_events,
)
from repro.obs.regress import (
    chain_task_blocks,
    make_executor,
)

DEFAULT_NODES = 24
DEFAULT_COST_UNIT_SECONDS = 0.001
DEFAULT_VALIDATION_DELAY = 0.05
PBFT_COMMITTEE_SIZE = 7


@dataclass(frozen=True)
class LifecycleRunResult:
    """Everything one pipeline run produced, ready for reporting."""

    chain: str
    executor: str
    blocks: int
    admitted: int
    committed: int
    dropped: int
    traces: tuple[StitchedTrace, ...]

    @property
    def closed(self) -> int:
        return self.committed + self.dropped

    @property
    def open(self) -> int:
        return len(self.traces) - self.closed

    def breakdown(self) -> dict[str, StageStats]:
        return stage_breakdown(self.traces)


def _block_dag(profile, payload, packed_hashes: set[str], cores: int):
    """The dependency-DAG engine over the *packed* subset of a block."""
    from repro.execution import account_dag, run_dag, utxo_dag

    subset = [tx for tx in payload if tx.tx_hash in packed_hashes]
    if profile.data_model == "utxo":
        dag = utxo_dag(subset)
    else:
        dag = account_dag(subset)
    return run_dag(dag, cores)


def run_lifecycle(
    profile,
    *,
    blocks: int,
    seed: int,
    cores: int,
    executor: str = "dag",
    scale: float = 1.0,
    nodes: int = DEFAULT_NODES,
    mempool_weight: int | None = None,
    cost_unit_seconds: float = DEFAULT_COST_UNIT_SECONDS,
    validation_delay: float = DEFAULT_VALIDATION_DELAY,
) -> LifecycleRunResult:
    """Run *profile*'s seeded workload through the full pipeline.

    Args:
        profile: a :class:`~repro.workload.profiles.ChainProfile`.
        blocks: number of blocks to generate and commit.
        seed: workload + pipeline randomness seed (deterministic).
        cores: simulated cores for the execution engine.
        executor: engine name (``dag`` or any task-executor name from
            :data:`repro.obs.regress.EXECUTOR_CHOICES`).
        scale: workload scale factor passed to the chain builder.
        nodes: gossip topology size.
        mempool_weight: pool capacity; ``None`` sizes the pool to never
            evict, an explicit small cap forces ``dropped`` traces.
        cost_unit_seconds: simulated seconds per execution cost unit.
        validation_delay: per-hop block validation delay (seconds).

    Raises:
        ValueError: unknown executor name or non-positive parameters
            (the CLI maps these to exit 2).
    """
    if blocks < 1:
        raise ValueError("blocks must be at least 1")
    if cores < 1:
        raise ValueError("cores must be at least 1")
    if nodes < 2:
        raise ValueError("nodes must be at least 2")
    if cost_unit_seconds <= 0:
        raise ValueError("cost_unit_seconds must be positive")
    if mempool_weight is not None and mempool_weight < 1:
        raise ValueError("mempool_weight must be positive")
    task_executor = (
        None if executor == "dag" else make_executor(executor, cores)
    )

    rng = random.Random(seed)
    network = GossipNetwork.random_topology(
        nodes, rng=random.Random(seed)
    )
    origin = "n0"
    pbft = None
    if profile.num_shards > 0:
        from repro.consensus.pbft import PBFTCommittee

        pbft = PBFTCommittee(
            size=PBFT_COMMITTEE_SIZE, rng=random.Random(seed)
        )

    life = obs.lifecycle()
    recorder = obs.get_recorder()
    pool: Mempool = Mempool(
        max_weight=mempool_weight if mempool_weight is not None
        else 2 ** 62,
        min_fee_rate=1.0,
    )

    admitted = 0
    executed_hashes: set[str] = set()
    with obs.trace_span(
        "lifecycle.run", chain=profile.name, executor=executor
    ):
        for height, tasks, payload in chain_task_blocks(
            profile, blocks=blocks, seed=seed, scale=scale
        ):
            if not tasks:
                continue
            # 1. Admission: transactions arrive spread across the block
            # interval, each minting its lifecycle root span.
            step = profile.block_interval / max(1, len(tasks))
            for task in tasks:
                life.advance(step)
                weight = max(1, round(task.cost))
                fee = int(weight * (1.0 + 4.0 * rng.random())) + weight
                pool.submit(PoolEntry(
                    tx_hash=task.tx_hash, fee=fee, weight=weight,
                    payload=task,
                ))
                admitted += 1

            pending = pool.entries_by_fee_rate()
            if not pending:
                continue
            # 2. Gossip: the pending set floods the topology; relays
            # and the propagated mark land on each trace.
            result = network.propagate(
                origin,
                validation_delay=validation_delay,
                tx_hashes=[entry.tx_hash for entry in pending],
            )
            life.advance(result.coverage_time(1.0))

            # 3. Sharded profiles dispatch to committees.
            if profile.num_shards > 0:
                from repro.sharding.committee import shard_for_address

                for entry in pending:
                    shard = shard_for_address(
                        entry.tx_hash, profile.num_shards
                    )
                    life.record(entry.tx_hash, "assigned", shard=shard)

            # 4. Packing + consensus.  The budget spans the whole pool,
            # so every surviving (non-evicted) transaction is included.
            packed = pool.pack_block(max(1, pool.total_weight))
            if not packed:
                continue
            if pbft is not None:
                round_result = pbft.run_round()
                latency = round_result.latency
                mechanism = "pbft"
            else:
                latency = rng.expovariate(1.0 / profile.block_interval)
                mechanism = "pow"
            life.advance(latency)
            for entry in packed:
                life.record(
                    entry.tx_hash, "consensus",
                    block=height, mechanism=mechanism,
                )

            # 5. Execution replay + stitch.
            packed_hashes = {entry.tx_hash for entry in packed}
            executed_hashes |= packed_hashes
            execute_at = life.clock
            with recorder.block(height):
                if task_executor is None:
                    report = _block_dag(
                        profile, payload, packed_hashes, cores
                    )
                else:
                    packed_tasks = [entry.payload for entry in packed]
                    report = task_executor.run(packed_tasks)
            stitch_execution_events(
                life,
                recorder.events(block=height),
                at=execute_at,
                cost_unit_seconds=cost_unit_seconds,
            )
            life.advance(report.wall_time * cost_unit_seconds)

    traces = tuple(life.traces())
    committed = sum(1 for t in traces if t.outcome == "committed")
    dropped = sum(1 for t in traces if t.outcome == "dropped")
    return LifecycleRunResult(
        chain=profile.name,
        executor=executor,
        blocks=blocks,
        admitted=admitted,
        committed=committed,
        dropped=dropped,
        traces=traces,
    )


__all__ = [
    "DEFAULT_COST_UNIT_SECONDS",
    "DEFAULT_NODES",
    "DEFAULT_VALIDATION_DELAY",
    "PBFT_COMMITTEE_SIZE",
    "LifecycleRunResult",
    "run_lifecycle",
]
