"""End-to-end transaction lifecycle tracing: causal trace propagation.

The paper's speed-up model (Eq. 1 / Eq. 2) covers only the execution
phase, but the *system-level* win depends on where each transaction's
wall-clock actually goes across the whole pipeline: mempool admission,
gossip propagation, committee assignment, consensus, and execution.
This module is the OpenTelemetry-style causal layer that makes that
visible: a :class:`TraceContext` (trace_id / span_id / parent link) is
minted at mempool admission and propagated with the transaction through
every stage, so one transaction yields one *stitched trace*::

    admitted → relayed* → propagated → assigned? → included
             → consensus → scheduled → (aborted/retried)* → committed

(or a terminal ``dropped`` when the mempool evicts or replaces it).

Design points, mirroring the rest of :mod:`repro.obs`:

* **Simulated clock.** Stage timestamps are *simulated seconds* on a
  clock the pipeline driver advances (:meth:`LifecycleTracer.set_clock`
  / :meth:`advance`); instrumented modules (mempool, gossip) record at
  the current clock without knowing the driver.  Timestamps within a
  trace are clamped monotonic, so a stitched trace is always a valid
  timeline — the property the tests assert.
* **Causal chain.** Every event's ``parent_id`` is the previous event's
  ``span_id`` in the same trace (admission is the root), so the export
  reconstructs the per-transaction causal chain without a span stack.
* **Deterministic ids.** ``trace_id`` is the transaction hash; span ids
  come from a per-tracer counter — traces are diffable between runs.
* **Zero-cost when disabled.** :data:`NOOP_LIFECYCLE` drops everything;
  the instrumented call sites guard on ``tracer.enabled`` exactly like
  the metrics/span layers, keeping the disabled overhead within the 1%
  budget enforced by ``benchmarks/bench_lifecycle_trace.py``.
* **Stage metrics.** Each recorded transition observes the latency
  since the previous stage into ``lifecycle.stage.<stage>`` histograms
  (simulated seconds, so they are deterministic and regress-gateable)
  plus ``lifecycle.opened`` / ``lifecycle.closed`` counters.

:func:`stitch_execution_events` joins the pipeline-side trace with the
existing flight-recorder events (:mod:`repro.obs.timeline`): the
executor's ``schedule``/``abort``/``retry``/``commit`` events become
``scheduled``/``aborted``/``retried``/``committed`` lifecycle stages on
a caller-supplied cost-unit-to-seconds conversion, closing the trace.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.timeline import TimelineEvent

# Stage vocabulary (docs/observability.md has the full stitching rules).
ADMITTED = "admitted"        # minted at Mempool.submit
RELAYED = "relayed"          # per-hop gossip relay (one per hop depth)
PROPAGATED = "propagated"    # gossip coverage reached
ASSIGNED = "assigned"        # sharding committee assignment
INCLUDED = "included"        # selected by block packing
CONSENSUS = "consensus"      # consensus round committed the block
SCHEDULED = "scheduled"      # executor queued the task
ABORTED = "aborted"          # execution attempt failed validation
RETRIED = "retried"          # re-queued after an abort
COMMITTED = "committed"      # terminal: executed for good
DROPPED = "dropped"          # terminal: evicted / replaced / expired

STAGES = (
    ADMITTED, RELAYED, PROPAGATED, ASSIGNED, INCLUDED, CONSENSUS,
    SCHEDULED, ABORTED, RETRIED, COMMITTED, DROPPED,
)
TERMINAL_STAGES = (COMMITTED, DROPPED)

# A transaction spanning several shard committees (a Zilliqa-style
# cross-shard state sync) yields per-shard sub-traces named
# ``<tx_hash>#shard=<k>``; join_shard_traces folds them back into one
# stitched trace per transaction.
SHARD_TRACE_SEPARATOR = "#"


@dataclass(frozen=True)
class TraceContext:
    """The causal coordinates carried with one transaction.

    Plain picklable data (no locks, no tracer reference), so it can ride
    through process-pool chunk workers and return intact — the
    cross-process test in ``tests/obs/test_lifecycle.py`` asserts this.
    """

    trace_id: str
    span_id: int
    parent_id: int | None = None

    def child(self, span_id: int) -> "TraceContext":
        """The context a follow-up stage records under."""
        return TraceContext(
            trace_id=self.trace_id, span_id=span_id,
            parent_id=self.span_id,
        )


@dataclass(frozen=True)
class LifecycleEvent:
    """One recorded stage transition of one transaction."""

    trace_id: str
    span_id: int
    parent_id: int | None
    stage: str
    at: float                # simulated seconds
    duration: float = 0.0    # >0 for stages modelling an extent
    attrs: dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "stage": self.stage,
            "at": self.at,
            "duration": self.duration,
            "attrs": self.attrs,
        }


@dataclass(frozen=True)
class StitchedTrace:
    """One transaction's full lifecycle, admission to terminal stage."""

    trace_id: str
    events: tuple[LifecycleEvent, ...]

    def __post_init__(self) -> None:
        if not self.events:
            raise ValueError("a stitched trace needs at least one event")

    @property
    def outcome(self) -> str | None:
        """``committed`` / ``dropped`` when closed, else ``None``."""
        last = self.events[-1].stage
        return last if last in TERMINAL_STAGES else None

    @property
    def closed(self) -> bool:
        return self.outcome is not None

    @property
    def started_at(self) -> float:
        return self.events[0].at

    @property
    def ended_at(self) -> float:
        return self.events[-1].at

    @property
    def total_latency(self) -> float:
        """Admission-to-terminal simulated seconds."""
        return self.ended_at - self.started_at

    @property
    def stages(self) -> tuple[str, ...]:
        return tuple(event.stage for event in self.events)

    def is_monotonic(self) -> bool:
        """Timestamps never run backwards (clamped at record time)."""
        return all(
            later.at >= earlier.at
            for earlier, later in zip(self.events, self.events[1:])
        )

    def stage_latencies(self) -> list[tuple[str, float]]:
        """Per-transition waits: (stage, seconds since previous stage)."""
        out: list[tuple[str, float]] = []
        previous = self.events[0].at
        for event in self.events[1:]:
            out.append((event.stage, event.at - previous))
            previous = event.at
        return out

    def as_dict(self) -> dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "outcome": self.outcome,
            "total_latency": self.total_latency,
            "events": [event.as_dict() for event in self.events],
        }


class LifecycleTracer:
    """Collects per-transaction lifecycle traces; thread-safe.

    One open trace per transaction hash: :meth:`begin` mints the root
    (admission) span, :meth:`record` appends causal stage events, and a
    terminal stage (:data:`COMMITTED` / :data:`DROPPED`, via
    :meth:`close`) seals the trace.  Events recorded for unknown or
    already-closed transactions are counted (``lifecycle.unknown`` /
    ``lifecycle.late_events``) and otherwise ignored, so instrumented
    modules never need to know whether a transaction is being traced.
    """

    enabled = True

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self._registry = registry
        self._open: dict[str, list[LifecycleEvent]] = {}
        self._closed: dict[str, StitchedTrace] = {}
        self._clock = 0.0
        self._next_span = 1
        self._lock = threading.Lock()
        # Metric handles are resolved once per stage, not per event —
        # registry lookups (label hashing) would otherwise dominate the
        # per-record cost and blow the 10% enabled-overhead budget.
        # Histograms are cached lazily so only observed stages appear
        # in snapshots.
        if registry is not None and registry.enabled:
            self._events_counter = registry.counter("lifecycle.events")
        else:
            self._events_counter = None
        self._stage_histograms: dict[str, object] = {}

    # -- simulated clock ------------------------------------------------------

    @property
    def clock(self) -> float:
        return self._clock

    def set_clock(self, at: float) -> None:
        """Move the simulated clock (drivers own the time base)."""
        self._clock = float(at)

    def advance(self, seconds: float) -> float:
        """Advance the clock by *seconds*; returns the new time."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._clock += seconds
        return self._clock

    # -- metrics --------------------------------------------------------------

    def _observe(self, stage: str, latency: float,
                 key: str | None = None) -> None:
        counter = self._events_counter
        if counter is None:
            return
        counter.inc()
        histogram = self._stage_histograms.get(stage)
        if histogram is None:
            histogram = self._registry.histogram(
                f"lifecycle.stage.{stage}"
            )
            self._stage_histograms[stage] = histogram
        # The trace hash keys the sketch reservoir (ignored by exact
        # histograms), keeping reservoir contents chunking-independent.
        histogram.observe(latency, key)

    def _count(self, name: str, **labels: object) -> None:
        registry = self._registry
        if registry is None or not registry.enabled:
            return
        registry.counter(name, **labels).inc()

    # -- recording ------------------------------------------------------------

    def begin(self, tx_hash: str, *, at: float | None = None,
              **attrs: object) -> TraceContext:
        """Mint the root (admission) span for *tx_hash*.

        Raises:
            ValueError: a trace for *tx_hash* is already open or closed
                — every transaction gets exactly one lifecycle trace.
        """
        when = self._clock if at is None else float(at)
        with self._lock:
            if tx_hash in self._open or tx_hash in self._closed:
                raise ValueError(
                    f"lifecycle trace for {tx_hash!r} already exists"
                )
            span_id = self._next_span
            self._next_span += 1
            event = LifecycleEvent(
                trace_id=tx_hash, span_id=span_id, parent_id=None,
                stage=ADMITTED, at=when, attrs=dict(attrs),
            )
            self._open[tx_hash] = [event]
        self._count("lifecycle.opened")
        self._observe(ADMITTED, 0.0, tx_hash)
        return TraceContext(trace_id=tx_hash, span_id=span_id)

    def record(self, tx_hash: str, stage: str, *,
               at: float | None = None, duration: float = 0.0,
               **attrs: object) -> TraceContext | None:
        """Append a stage event to *tx_hash*'s open trace.

        The timestamp is clamped to the trace's last event, keeping
        every stitched trace monotonic.  Returns the new context, or
        ``None`` when the transaction has no open trace (unknown or
        already closed — counted, never raised).
        """
        if stage not in STAGES:
            raise ValueError(
                f"unknown lifecycle stage {stage!r}; expected one of "
                f"{', '.join(STAGES)}"
            )
        when = self._clock if at is None else float(at)
        with self._lock:
            events = self._open.get(tx_hash)
            if events is None:
                known = tx_hash in self._closed
                counter = "lifecycle.late_events" if known \
                    else "lifecycle.unknown"
                # Counted outside the lock via _count below.
            else:
                previous = events[-1]
                when = max(when, previous.at)
                span_id = self._next_span
                self._next_span += 1
                event = LifecycleEvent(
                    trace_id=tx_hash, span_id=span_id,
                    parent_id=previous.span_id, stage=stage, at=when,
                    duration=duration, attrs=dict(attrs),
                )
                events.append(event)
                latency = when - previous.at
                if stage in TERMINAL_STAGES:
                    self._closed[tx_hash] = StitchedTrace(
                        trace_id=tx_hash, events=tuple(events)
                    )
                    del self._open[tx_hash]
        if events is None:
            self._count(counter)
            return None
        self._observe(stage, latency, tx_hash)
        if stage in TERMINAL_STAGES:
            self._count("lifecycle.closed", outcome=stage)
        return TraceContext(
            trace_id=tx_hash, span_id=span_id, parent_id=previous.span_id
        )

    def close(self, tx_hash: str, stage: str = COMMITTED, *,
              at: float | None = None, **attrs: object) -> bool:
        """Seal *tx_hash* with a terminal stage; True when it was open."""
        if stage not in TERMINAL_STAGES:
            raise ValueError(
                f"{stage!r} is not terminal; expected one of "
                f"{', '.join(TERMINAL_STAGES)}"
            )
        return self.record(tx_hash, stage, at=at, **attrs) is not None

    # -- reading --------------------------------------------------------------

    def trace(self, tx_hash: str) -> StitchedTrace | None:
        """The stitched trace for *tx_hash* (open traces stitch as-is)."""
        with self._lock:
            closed = self._closed.get(tx_hash)
            if closed is not None:
                return closed
            events = self._open.get(tx_hash)
            if events is None:
                return None
            return StitchedTrace(trace_id=tx_hash, events=tuple(events))

    def traces(self) -> list[StitchedTrace]:
        """All traces, closed first (completion order), then open."""
        with self._lock:
            out = list(self._closed.values())
            out.extend(
                StitchedTrace(trace_id=tx_hash, events=tuple(events))
                for tx_hash, events in self._open.items()
            )
        return out

    def closed_traces(self) -> list[StitchedTrace]:
        """Closed traces in completion order.

        The dict preserves insertion (= completion) order, so callers
        that remember a previous :attr:`closed_count` can slice this
        list to get exactly the traces sealed since — the streaming
        monitor uses that to attribute closures to block windows.
        """
        with self._lock:
            return list(self._closed.values())

    @property
    def open_count(self) -> int:
        return len(self._open)

    @property
    def closed_count(self) -> int:
        return len(self._closed)

    def clear(self) -> None:
        with self._lock:
            self._open.clear()
            self._closed.clear()
            self._clock = 0.0
            self._next_span = 1


class NoopLifecycleTracer(LifecycleTracer):
    """The disabled tracer: every mutator is a near-free no-op."""

    enabled = False

    def begin(self, tx_hash: str, *, at: float | None = None,
              **attrs: object) -> TraceContext:
        return _NOOP_CONTEXT

    def record(self, tx_hash: str, stage: str, *,
               at: float | None = None, duration: float = 0.0,
               **attrs: object) -> TraceContext | None:
        return None

    def close(self, tx_hash: str, stage: str = COMMITTED, *,
              at: float | None = None, **attrs: object) -> bool:
        return False

    def set_clock(self, at: float) -> None:
        pass

    def advance(self, seconds: float) -> float:
        return 0.0

    def traces(self) -> list[StitchedTrace]:
        return []


_NOOP_CONTEXT = TraceContext(trace_id="noop", span_id=0)
NOOP_LIFECYCLE = NoopLifecycleTracer()


# -- stitching with the flight recorder ---------------------------------------


_KIND_TO_STAGE = {
    "schedule": SCHEDULED,
    "abort": ABORTED,
    "retry": RETRIED,
    "commit": COMMITTED,
}


def stitch_execution_events(
    tracer: LifecycleTracer,
    events: Sequence["TimelineEvent"],
    *,
    at: float,
    cost_unit_seconds: float = 1.0,
) -> int:
    """Fold flight-recorder events into lifecycle traces.

    Each ``schedule`` / ``abort`` / ``retry`` / ``commit`` event becomes
    the corresponding lifecycle stage at ``at + clock *
    cost_unit_seconds`` (the executor's logical clock converted to
    simulated seconds); ``start`` and ``edge`` events carry no lifecycle
    stage and are skipped.  ``commit`` closes the trace.  Returns the
    number of stitched stage events.
    """
    if not tracer.enabled:
        return 0
    if cost_unit_seconds <= 0:
        raise ValueError("cost_unit_seconds must be positive")
    stitched = 0
    for event in events:
        stage = _KIND_TO_STAGE.get(event.kind)
        if stage is None:
            continue
        context = tracer.record(
            event.task, stage,
            at=at + event.clock * cost_unit_seconds,
            executor=event.executor, lane=event.lane, round=event.round,
        )
        if context is not None:
            stitched += 1
    return stitched


# -- cross-shard stitching ----------------------------------------------------


def shard_subtrace_id(tx_hash: str, shard: int) -> str:
    """The trace id of *tx_hash*'s sub-trace on committee *shard*."""
    return f"{tx_hash}{SHARD_TRACE_SEPARATOR}shard={shard}"


def join_shard_traces(
    traces: Iterable[StitchedTrace],
) -> list[StitchedTrace]:
    """Fold per-shard sub-traces into one trace per transaction.

    Sub-traces are named ``<tx_hash>#shard=<k>`` (see
    :func:`shard_subtrace_id`).  All parts sharing a base id merge into
    a single stitched trace: events are interleaved by timestamp (span
    id breaks ties, so the ordering is total and deterministic) and
    re-labelled with the base trace id — each event keeps its ``shard``
    attribute, so the joined trace still shows *where* each hop ran.
    Traces without a separator pass through untouched, making this an
    identity (and near-free) transform for unsharded chains — the
    regress baseline never sees a difference.
    """
    groups: dict[str, list[StitchedTrace]] = {}
    for trace in traces:
        base = trace.trace_id.split(SHARD_TRACE_SEPARATOR, 1)[0]
        groups.setdefault(base, []).append(trace)
    out: list[StitchedTrace] = []
    for base, parts in groups.items():
        if len(parts) == 1 and parts[0].trace_id == base:
            out.append(parts[0])
            continue
        events = sorted(
            (event for part in parts for event in part.events),
            key=lambda event: (event.at, event.span_id),
        )
        out.append(StitchedTrace(
            trace_id=base,
            events=tuple(
                replace(event, trace_id=base) for event in events
            ),
        ))
    return out


# -- aggregation --------------------------------------------------------------


@dataclass(frozen=True)
class StageStats:
    """Latency distribution of one stage across a set of traces."""

    stage: str
    count: int
    total: float
    p50: float
    p95: float
    p99: float
    max: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


def _percentile(ordered: Sequence[float], p: float) -> float:
    if not ordered:
        return 0.0
    rank = p * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


def stage_breakdown(
    traces: Iterable[StitchedTrace],
) -> dict[str, StageStats]:
    """Per-stage latency stats (p50/p95/p99) across *traces*.

    The latency attributed to a stage is the wait since the trace's
    previous stage — summing a trace's stage latencies recovers its
    total admission-to-terminal latency, so the ``share`` column of the
    rendered table genuinely decomposes end-to-end time.
    """
    samples: dict[str, list[float]] = {}
    for trace in traces:
        for stage, latency in trace.stage_latencies():
            samples.setdefault(stage, []).append(latency)
    out: dict[str, StageStats] = {}
    for stage in STAGES:
        values = samples.get(stage)
        if not values:
            continue
        values.sort()
        out[stage] = StageStats(
            stage=stage,
            count=len(values),
            total=sum(values),
            p50=_percentile(values, 0.50),
            p95=_percentile(values, 0.95),
            p99=_percentile(values, 0.99),
            max=values[-1],
        )
    return out


def stage_shares(
    breakdown: Mapping[str, StageStats],
) -> dict[str, float]:
    """Each stage's fraction of total traced latency (sums to 1.0)."""
    total = sum(stats.total for stats in breakdown.values())
    if total <= 0:
        return {stage: 0.0 for stage in breakdown}
    return {
        stage: stats.total / total for stage, stats in breakdown.items()
    }


def slowest_traces(
    traces: Iterable[StitchedTrace], *, limit: int = 3
) -> list[StitchedTrace]:
    """The *limit* closed traces with the largest end-to-end latency."""
    if limit < 1:
        raise ValueError("limit must be at least 1")
    closed = [trace for trace in traces if trace.closed]
    closed.sort(key=lambda t: (-t.total_latency, t.trace_id))
    return closed[:limit]


__all__ = [
    "ABORTED",
    "ADMITTED",
    "ASSIGNED",
    "COMMITTED",
    "CONSENSUS",
    "DROPPED",
    "INCLUDED",
    "NOOP_LIFECYCLE",
    "PROPAGATED",
    "RELAYED",
    "RETRIED",
    "SCHEDULED",
    "SHARD_TRACE_SEPARATOR",
    "STAGES",
    "TERMINAL_STAGES",
    "LifecycleEvent",
    "LifecycleTracer",
    "NoopLifecycleTracer",
    "StageStats",
    "StitchedTrace",
    "TraceContext",
    "join_shard_traces",
    "shard_subtrace_id",
    "slowest_traces",
    "stage_breakdown",
    "stage_shares",
    "stitch_execution_events",
]
