"""Deterministic head-based trace sampling for large sweeps.

At a million transactions, minting a full causal trace per transaction
(:mod:`repro.obs.lifecycle`) costs O(tx) memory.  Head-based sampling
keeps the familiar shape — *every* hop of a sampled transaction is
traced (gossip, committee assignment, packing, consensus, execution) —
while unsampled transactions cost only a hash and a counter bump.

The sampling decision is a **pure function of the trace id**::

    keep  iff  crc32(trace_id) % out_of < keep

so it is reproducible everywhere the transaction travels: serial,
thread, and process executors, fork and spawn start methods, and
re-runs of the same workload all sample the same transactions.  (The
builtin ``hash`` is salted per interpreter and would break exactly
this property — ``tests/obs/test_sampling.py`` pins it across pools.)
Cross-shard sub-traces (``txhash#shard=K``, see
:func:`repro.obs.lifecycle.join_shard_traces`) inherit the parent's
decision: the decision hashes only the id up to the ``#`` separator,
so a sampled transaction is sampled on every shard it spans.

Exactness contract: *rates stay exact while latency detail is
sampled*.  :class:`SampledLifecycleTracer` bumps a per-stage counter
(``lifecycle.stage_count.<stage>``) for **all** transactions — sampled
or not — so abort/commit/drop rates computed from counters are exact;
only the per-stage latency histograms and stitched traces are limited
to the sampled subset.

Head sampling alone is blind to the tail: the 1-in-N lottery is
equally likely to keep a fast trace as the pathological one the
operator actually wants.  **Tail-based sampling** (``tail_seconds``)
closes that gap — head-dropped traces are buffered provisionally and
promoted to full traces at close if their simulated duration reaches
the threshold, with exact ``lifecycle.sampled.tail_kept`` /
``tail_evicted`` counters.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence
from zlib import crc32

from repro.obs.lifecycle import (
    ADMITTED,
    SHARD_TRACE_SEPARATOR,
    STAGES,
    TERMINAL_STAGES,
    LifecycleTracer,
    TraceContext,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.obs.metrics import Counter, MetricsRegistry

_RATE_PATTERN = re.compile(r"^\s*(\d+)\s*/\s*(\d+)\s*$")

# Membership testing against the tuple is a linear scan; the sampled
# fast path validates the stage on every unsampled hop, so use a set.
_STAGE_SET = frozenset(STAGES)

# The tracer memoises per-trace-id decisions (a dict probe is ~10x
# cheaper than re-hashing the id on every hop).  The memo is bounded so
# unsampled transactions stay O(1) memory overall; the cap comfortably
# covers a block's worth of in-flight ids, which is the reuse window
# (admission → packing → consensus → execution happen blocks apart at
# most).  Evicted ids simply re-hash — the decision is pure, so the
# cache can never change an outcome.
_DECISION_MEMO_CAP = 65_536

# Tail sampling buffers provisional events for head-dropped traces
# until they close; the buffer is bounded so a flood of never-closing
# transactions cannot grow O(open traces) behind the operator's back.
# Evictions are counted (``lifecycle.sampled.tail_evicted``) — an
# evicted trace simply loses its tail chance, it is never corrupted.
DEFAULT_TAIL_BUFFER = 65_536


@dataclass(frozen=True)
class SampleRate:
    """Keep ``keep`` out of every ``out_of`` trace ids."""

    keep: int
    out_of: int

    def __post_init__(self) -> None:
        if self.out_of < 1:
            raise ValueError("sample rate denominator must be >= 1")
        if not 0 < self.keep <= self.out_of:
            raise ValueError(
                "sample rate numerator must be in [1, denominator]; "
                f"got {self.keep}/{self.out_of}"
            )

    @property
    def is_full(self) -> bool:
        """True when every trace is kept (sampling disabled)."""
        return self.keep == self.out_of

    @property
    def fraction(self) -> float:
        return self.keep / self.out_of

    def __str__(self) -> str:
        return f"{self.keep}/{self.out_of}"


FULL_RATE = SampleRate(1, 1)


def parse_rate(text: str) -> SampleRate:
    """Parse ``"k/n"`` (e.g. ``"1/100"``) into a :class:`SampleRate`.

    Raises ``ValueError`` with a usage-style message on anything else —
    the CLI maps that to exit code 2.
    """
    match = _RATE_PATTERN.match(text)
    if match is None:
        raise ValueError(
            f"invalid sample rate {text!r}; expected K/N, e.g. 1/100"
        )
    try:
        return SampleRate(int(match.group(1)), int(match.group(2)))
    except ValueError as exc:
        raise ValueError(f"invalid sample rate {text!r}: {exc}") from exc


def sample_decision(trace_id: str, rate: SampleRate) -> bool:
    """Keep *trace_id*?  Pure, deterministic, process-independent.

    ``crc32`` rather than a cryptographic hash: the decision needs
    determinism and uniformity modulo small denominators, not collision
    resistance, and at one hash per transaction hop the ~5x cost gap
    to ``blake2b`` is what keeps the unsampled fast path inside the
    enabled-overhead budget (``benchmarks/bench_obs_sampling.py``).
    """
    if rate.is_full:
        return True
    base = trace_id.split(SHARD_TRACE_SEPARATOR, 1)[0]
    return crc32(base.encode("utf-8")) % rate.out_of < rate.keep


def sample_decisions(
    trace_ids: Iterable[str], keep: int, out_of: int
) -> list[bool]:
    """Vector form with plain-int args — picklable by qualified name,
    so tests can ``Pool.map`` it under fork *and* spawn."""
    rate = SampleRate(keep, out_of)
    return [sample_decision(trace_id, rate) for trace_id in trace_ids]


# The context unsampled transactions receive from ``begin``: span id 0
# marks "not traced" (real spans start at 1), mirroring the noop
# tracer's shared ``_NOOP_CONTEXT``.  Sharing one instance keeps the
# unsampled admission path allocation-free — at a million transactions
# the frozen-dataclass construction alone would dominate the budget.
UNSAMPLED_CONTEXT = TraceContext(trace_id="", span_id=0)


class SampledLifecycleTracer(LifecycleTracer):
    """A :class:`LifecycleTracer` that traces a deterministic subset.

    Drop-in at every existing call site (mempool, gossip, sharding,
    consensus, execution stitching): sampled transactions follow the
    full begin/record/close path; unsampled ones bump
    ``lifecycle.stage_count.<stage>`` and ``lifecycle.sampled.dropped``
    and return immediately (``begin`` hands back the shared
    :data:`UNSAMPLED_CONTEXT` sentinel).  ``lifecycle.stage_count.*``
    is bumped for *sampled* transactions too, so those counters are
    exact totals over the whole workload.

    Stage/kept/dropped counts accumulate in plain-int batches and sync
    into the registry's counters at every flush point — clock movement
    (:meth:`set_clock` / :meth:`advance`), any trace read
    (:meth:`trace` / :meth:`traces` / :meth:`closed_traces`), and
    explicit :meth:`flush_counts`.  Pipeline drivers move the clock at
    least once per block, so registry counters are exact at every
    block boundary and after any read; a per-event locked
    ``Counter.inc`` would cost more than the rest of the unsampled
    path combined.

    Note: duplicate-``begin`` detection only applies to sampled
    transactions — unsampled ids keep no state at all (that is the
    point), so a duplicate unsampled admission is indistinguishable
    from the first.

    **Tail-based sampling** (``tail_seconds``): traces whose simulated
    duration (first event → terminal event) reaches the threshold are
    kept *regardless* of the head decision.  Head-dropped traces
    buffer their events provisionally; when a terminal stage arrives,
    a slow trace is materialised through the parent tracer (original
    timestamps preserved, so head+tail merging is deterministic — the
    same workload always yields the same trace set) and counted under
    ``lifecycle.sampled.tail_kept``; a fast one is discarded.  The
    provisional buffer is LRU-bounded by ``tail_buffer`` with evictions
    counted under ``lifecycle.sampled.tail_evicted``.
    """

    def __init__(self, rate: SampleRate = FULL_RATE,
                 registry: "MetricsRegistry | None" = None,
                 *, tail_seconds: float | None = None,
                 tail_buffer: int = DEFAULT_TAIL_BUFFER) -> None:
        super().__init__(registry)
        if tail_seconds is not None and tail_seconds < 0:
            raise ValueError("tail_seconds must be non-negative")
        if tail_buffer < 1:
            raise ValueError("tail_buffer must be positive")
        self._rate = rate
        self._counting = registry is not None and registry.enabled
        self._stage_counters: dict[str, "Counter"] = {}
        self._decisions: dict[str, bool] = {}
        self._pending_counts: dict[str, int] = {}
        self._pending_kept = 0
        self._pending_dropped = 0
        self._tail_seconds = tail_seconds
        self._tail_buffer = tail_buffer
        # trace id -> [(stage, at, duration, attrs), ...] for
        # head-dropped traces still awaiting their terminal stage.
        self._provisional: dict[str, list] = {}
        self._pending_tail_kept = 0
        self._pending_tail_evicted = 0
        self.tail_kept_total = 0
        self.tail_evicted_total = 0

    @property
    def rate(self) -> SampleRate:
        return self._rate

    @property
    def tail_seconds(self) -> float | None:
        return self._tail_seconds

    @property
    def provisional_open(self) -> int:
        """Head-dropped traces currently buffered for a tail decision."""
        return len(self._provisional)

    def sampled(self, trace_id: str) -> bool:
        return self._decide(trace_id)

    def _decide(self, trace_id: str) -> bool:
        decisions = self._decisions
        decision = decisions.get(trace_id)
        if decision is None:
            decision = sample_decision(trace_id, self._rate)
            if len(decisions) >= _DECISION_MEMO_CAP:
                # Flush wholesale.  One-at-a-time FIFO eviction
                # (``del d[next(iter(d))]``) is quadratic on CPython —
                # iteration rescans the tombstones earlier deletes left
                # behind — and a halving rebuild still costs ~0.6 µs
                # amortised per miss.  ``clear()`` is C-speed and
                # in-flight ids simply re-hash once; the decision is
                # pure, so no outcome can change.
                decisions.clear()
            decisions[trace_id] = decision
        return decision

    def flush_counts(self) -> None:
        """Sync batched stage/kept/dropped counts into the registry."""
        if not self._counting:
            return
        pending = self._pending_counts
        if pending:
            counters = self._stage_counters
            registry = self._registry
            for stage, count in pending.items():
                counter = counters.get(stage)
                if counter is None:
                    counter = registry.counter(
                        f"lifecycle.stage_count.{stage}"
                    )
                    counters[stage] = counter
                counter.inc(count)
            pending.clear()
        if self._pending_kept:
            self._registry.counter("lifecycle.sampled.kept").inc(
                self._pending_kept
            )
            self._pending_kept = 0
        if self._pending_dropped:
            self._registry.counter("lifecycle.sampled.dropped").inc(
                self._pending_dropped
            )
            self._pending_dropped = 0
        if self._pending_tail_kept:
            self._registry.counter("lifecycle.sampled.tail_kept").inc(
                self._pending_tail_kept
            )
            self._pending_tail_kept = 0
        if self._pending_tail_evicted:
            self._registry.counter("lifecycle.sampled.tail_evicted").inc(
                self._pending_tail_evicted
            )
            self._pending_tail_evicted = 0

    # Every clock movement and trace read is a flush point, so drivers
    # and readers always see exact counters without extra calls.

    def set_clock(self, at: float) -> None:
        self.flush_counts()
        super().set_clock(at)

    def advance(self, seconds: float) -> float:
        self.flush_counts()
        return super().advance(seconds)

    def trace(self, tx_hash: str):
        self.flush_counts()
        return super().trace(tx_hash)

    def traces(self):
        self.flush_counts()
        return super().traces()

    def closed_traces(self):
        self.flush_counts()
        return super().closed_traces()

    def clear(self) -> None:
        super().clear()
        self._decisions.clear()
        self._pending_counts.clear()
        self._pending_kept = 0
        self._pending_dropped = 0
        self._provisional.clear()
        self._pending_tail_kept = 0
        self._pending_tail_evicted = 0
        self.tail_kept_total = 0
        self.tail_evicted_total = 0

    def begin(self, tx_hash: str, *, at: float | None = None,
              **attrs: object) -> TraceContext:
        pending = self._pending_counts
        pending[ADMITTED] = pending.get(ADMITTED, 0) + 1
        if self._decide(tx_hash):
            self._pending_kept += 1
            return super().begin(tx_hash, at=at, **attrs)
        self._pending_dropped += 1
        if self._tail_seconds is not None:
            when = self._clock if at is None else float(at)
            self._tail_begin(tx_hash, when, attrs)
        return UNSAMPLED_CONTEXT

    def record(self, tx_hash: str, stage: str, *,
               at: float | None = None, duration: float = 0.0,
               **attrs: object) -> TraceContext | None:
        if stage not in _STAGE_SET:
            raise ValueError(
                f"unknown lifecycle stage {stage!r}; expected one of "
                f"{', '.join(STAGES)}"
            )
        pending = self._pending_counts
        pending[stage] = pending.get(stage, 0) + 1
        decision = self._decisions.get(tx_hash)
        if decision is None:
            decision = self._decide(tx_hash)
        if not decision:
            if self._tail_seconds is not None:
                when = self._clock if at is None else float(at)
                self._tail_record(tx_hash, stage, when, duration, attrs)
            return None
        return super().record(
            tx_hash, stage, at=at, duration=duration, **attrs
        )

    # -- tail-based promotion --------------------------------------------------

    def _tail_begin(self, tx_hash: str, when: float,
                    attrs: dict[str, object]) -> None:
        provisional = self._provisional
        if tx_hash in provisional:
            # Head-dropped begins must stay idempotent: callers dedup
            # begins with ``trace() is None`` (see Mempool.submit),
            # which cannot see this buffer, so a transaction admitted
            # at several nodes legitimately re-begins here.  Keep the
            # originally buffered root span.
            return
        if len(provisional) >= self._tail_buffer:
            # FIFO eviction: the oldest open trace loses its tail
            # chance.  One pop per overflowing begin keeps this O(1);
            # the counter makes the loss visible to operators.
            del provisional[next(iter(provisional))]
            self._pending_tail_evicted += 1
            self.tail_evicted_total += 1
        provisional[tx_hash] = [(ADMITTED, when, 0.0, attrs)]

    def _tail_record(self, tx_hash: str, stage: str, when: float,
                     duration: float, attrs: dict[str, object]) -> None:
        events = self._provisional.get(tx_hash)
        if events is None:
            # Never began here (or evicted): no tail chance, mirroring
            # the unsampled fast path's statelessness.
            return
        events.append((stage, when, duration, attrs))
        if stage not in TERMINAL_STAGES:
            return
        del self._provisional[tx_hash]
        # Same monotonic clamp the parent applies on replay: the
        # trace's duration is first event -> latest (clamped) event.
        start = events[0][1]
        end = start
        for _stage, event_at, _duration, _attrs in events:
            end = max(end, event_at)
        if end - start < self._tail_seconds:  # type: ignore[operator]
            return
        # Slow trace: materialise it through the parent with the
        # original timestamps, bypassing the head decision.  Replaying
        # in event order through the parent's own begin/record keeps
        # clamping, sealing, and metrics identical to a head-kept
        # trace, so merged head+tail output is deterministic.
        _stage0, first_at, _d0, first_attrs = events[0]
        LifecycleTracer.begin(self, tx_hash, at=first_at, **first_attrs)
        for event_stage, event_at, event_duration, event_attrs in events[1:]:
            LifecycleTracer.record(
                self, tx_hash, event_stage, at=event_at,
                duration=event_duration, **event_attrs
            )
        self._pending_tail_kept += 1
        self.tail_kept_total += 1


__all__ = [
    "DEFAULT_TAIL_BUFFER",
    "FULL_RATE",
    "UNSAMPLED_CONTEXT",
    "SampleRate",
    "SampledLifecycleTracer",
    "parse_rate",
    "sample_decision",
    "sample_decisions",
]
