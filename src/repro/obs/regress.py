"""Perf-regression gate: deterministic snapshots diffed against a baseline.

The simulation is deterministic: under a fixed seed, every conflict
count, simulated wall time, abort tally and timeline event is a pure
function of the code.  That makes perf regressions *exactly* detectable
— no statistical noise bands needed — by snapshotting a canonical
instrumented workload and diffing it against a checked-in baseline:

1. :func:`build_snapshot` replays a seeded chain through the execution
   engines under full instrumentation and reduces the result to a flat,
   JSON-stable document: deterministic metric values (real-time
   histograms are reduced to their counts), per-executor timeline
   aggregates (makespan, critical path, aborts, utilization) and
   measured-vs-Eq. 2 bound checks.
2. :func:`compare_snapshots` diffs a fresh snapshot against the
   baseline, key by key, under per-metric tolerance bands
   (:class:`Tolerance`; exact by default, glob-pattern overrides).  Any
   out-of-band drift — higher *or* lower — is a regression: the gate
   protects determinism and the analytical invariants, not just "don't
   get slower".
3. ``repro.cli regress`` wires this into CI: exit 0 when the fresh run
   matches the baseline, 1 on any regression, 2 on usage errors; the
   checked-in baseline under ``tests/obs/baseline/`` is refreshed with
   ``--update`` when a change *intends* to shift the numbers.

Like :mod:`repro.obs.critical_path`, this module imports the execution
and workload layers and therefore must never be imported from
``repro.obs.__init__``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from repro import obs
from repro.obs.critical_path import (
    compare_to_bounds,
    profile_events,
    task_conflict_profile,
)

SNAPSHOT_SCHEMA_VERSION = 1

DEFAULT_CHAIN = "ethereum"
DEFAULT_BLOCKS = 10
DEFAULT_CORES = 4
DEFAULT_SEED = 2020
DEFAULT_EXECUTORS = (
    "speculative",
    "speculative-informed",
    "occ",
    "grouped",
    "static-informed",
    "static-grouped",
    "dag",
)

# Histogram families measured in real time (host-dependent seconds)
# keep only their observation counts in a snapshot; everything else in
# the registry is simulated units and fully deterministic.  Lifecycle
# stage histograms are simulated seconds on the pipeline clock, so
# their names deliberately avoid these markers and their sums gate.
_REALTIME_MARKERS = ("seconds", "_ns", "duration")

# Metric families the lifecycle pipeline pass contributes to the main
# snapshot.  The pass replays the executors a second time, so its
# exec.*/tdg.* recordings are dropped — merging them would double-count
# the canonical executor pass above.
_LIFECYCLE_METRIC_PREFIXES = (
    "lifecycle.", "mempool.", "gossip.", "consensus.", "sharding.",
)


# -- canonical workload -------------------------------------------------------


def chain_task_blocks(
    profile, *, blocks: int, seed: int, scale: float = 1.0
) -> Iterator[tuple[int, list, tuple]]:
    """Yield ``(height, tasks, payload)`` for a seeded chain's blocks.

    ``payload`` is the raw per-block transaction sequence (UTXO
    transactions or executed account transactions) from which the
    dependency DAG can be built; ``tasks`` the executor-ready
    :class:`~repro.execution.engine.TxTask` list.
    """
    from repro.execution.engine import (
        tasks_from_account_block,
        tasks_from_utxo_block,
    )
    from repro.workload.account_workload import build_account_chain
    from repro.workload.utxo_workload import build_utxo_chain

    if profile.data_model == "utxo":
        ledger = build_utxo_chain(
            profile, num_blocks=blocks, seed=seed, scale=scale
        )
        for block in ledger:
            yield (
                block.height,
                tasks_from_utxo_block(block.transactions),
                tuple(block.transactions),
            )
    else:
        builder = build_account_chain(
            profile, num_blocks=blocks, seed=seed, scale=scale
        )
        for block, executed in builder.executed_blocks:
            yield (
                block.height,
                tasks_from_account_block(executed),
                tuple(executed),
            )


def chain_prediction_blocks(
    profile, *, blocks: int, seed: int, scale: float = 1.0
) -> list[tuple[int, tuple]]:
    """Per-block static access predictions for a seeded chain.

    Returns ``(height, predictions)`` pairs aligned with
    :func:`chain_task_blocks` — the chain construction is deterministic
    under a fixed seed, so rebuilding it here yields the exact blocks
    the task snapshot walked.  The rebuild runs under a silenced
    observability scope (an instrumented caller must not double-count
    the ``consensus.*`` chain-construction metrics); the static
    analysis itself runs in the ambient scope, so ``staticcheck.*``
    counters land where the caller records.

    Account chains analyze the final code registry/bindings (contracts
    only ever *gain* code mid-chain, so the final closure is a sound
    over-approximation for every height); UTXO predictions are exact by
    construction.
    """
    from repro.obs import ObservabilityState
    from repro.obs.metrics import NOOP_REGISTRY
    from repro.obs.tracer import NOOP_TRACER
    from repro.staticcheck.interproc import ContractAnalyzer, code_bindings
    from repro.staticcheck.predict import predict_block, predict_utxo_block
    from repro.workload.account_workload import build_account_chain
    from repro.workload.utxo_workload import build_utxo_chain

    silent = ObservabilityState(registry=NOOP_REGISTRY, tracer=NOOP_TRACER)
    if profile.data_model == "utxo":
        with obs.scoped(silent):
            ledger = build_utxo_chain(
                profile, num_blocks=blocks, seed=seed, scale=scale
            )
        return [
            (block.height, tuple(predict_utxo_block(block.transactions)))
            for block in ledger
        ]
    with obs.scoped(silent):
        builder = build_account_chain(
            profile, num_blocks=blocks, seed=seed, scale=scale
        )
    analyzer = ContractAnalyzer(
        builder.registry, code_bindings(builder.state)
    )
    return [
        (
            block.height,
            tuple(
                predict_block([item.tx for item in executed], analyzer)
            ),
        )
        for block, executed in builder.executed_blocks
    ]


def make_executor(name: str, cores: int, predictions=None):
    """Instantiate one of the task executors by registry name.

    ``dag`` is not constructible here — it consumes the raw payload via
    :func:`run_block_dag`, not a task list.  Unknown names raise
    :class:`ValueError` listing the choices.  *predictions* (``tx_hash``
    → :class:`~repro.staticcheck.predict.PredictedAccess`) feeds the
    ``static-grouped`` executor; other executors ignore it, and with no
    predictions that executor degrades soundly to sequential block
    order.
    """
    from repro.execution import (
        GroupedExecutor,
        InformedSpeculativeExecutor,
        OCCExecutor,
        SequentialExecutor,
        SpeculativeExecutor,
        StaticGroupedExecutor,
        StaticInformedExecutor,
    )

    factories = {
        "sequential": lambda: SequentialExecutor(),
        "speculative": lambda: SpeculativeExecutor(cores),
        "speculative-informed": lambda: InformedSpeculativeExecutor(cores),
        "occ": lambda: OCCExecutor(cores),
        "grouped": lambda: GroupedExecutor(cores),
        "static-informed": lambda: StaticInformedExecutor(cores),
        "static-grouped": lambda: StaticGroupedExecutor(
            cores, predictions=dict(predictions or {})
        ),
    }
    try:
        return factories[name]()
    except KeyError:
        known = ", ".join((*sorted(factories), "dag"))
        raise ValueError(
            f"unknown executor {name!r}; expected one of: {known}"
        ) from None


def run_block_dag(profile, payload: Sequence, cores: int):
    """Run one block's payload through the dependency-DAG engine."""
    from repro.execution import account_dag, run_dag, utxo_dag

    if profile.data_model == "utxo":
        dag = utxo_dag(payload)
    else:
        dag = account_dag(payload)
    return run_dag(dag, cores)


EXECUTOR_CHOICES = (
    "sequential",
    "speculative",
    "speculative-informed",
    "occ",
    "grouped",
    "static-informed",
    "static-grouped",
    "dag",
)


# -- snapshot construction ----------------------------------------------------


def deterministic_metrics(
    snapshot: Mapping[str, Mapping[str, object]],
) -> dict[str, dict[str, object]]:
    """Reduce a registry snapshot to its deterministic content.

    Counters and gauges pass through; histograms keep ``count`` always
    and ``sum``/``min``/``max`` only when their name is in simulated
    units (real-time families — names containing ``seconds``/``_ns``/
    ``duration`` — vary run to run and would make the gate flap).
    """
    out: dict[str, dict[str, object]] = {
        "counters": dict(snapshot["counters"]),
        "gauges": dict(snapshot["gauges"]),
        "histograms": {},
    }
    for key, summary in snapshot["histograms"].items():
        realtime = any(marker in key for marker in _REALTIME_MARKERS)
        entry: dict[str, object] = {"count": summary["count"]}
        if not realtime and summary["count"]:
            entry["sum"] = summary["sum"]
            entry["min"] = summary["min"]
            entry["max"] = summary["max"]
        out["histograms"][key] = entry
    return out


def build_snapshot(
    *,
    chain: str = DEFAULT_CHAIN,
    blocks: int = DEFAULT_BLOCKS,
    cores: int = DEFAULT_CORES,
    seed: int = DEFAULT_SEED,
    executors: Sequence[str] = DEFAULT_EXECUTORS,
    policy: str = "exact",
) -> dict[str, object]:
    """Run the canonical instrumented workload; return its snapshot.

    Raises :class:`ValueError` on an unknown chain or executor name and
    on ``cores``/``blocks`` < 1 (the CLI maps these to exit 2).

    *policy* selects the registry's histogram backend (``"exact"`` or
    ``"sketch"``).  The default MUST stay ``"exact"``: the checked-in
    baseline gates on byte-identical histogram counts/sums, and those
    reductions are backend-independent only for the fields a snapshot
    keeps — switching the default would still be a silent semantic
    change to the gate.  The sketch path exists so the accuracy bench
    can reuse the canonical workload under both backends.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.workload.profiles import PROFILES_BY_NAME

    try:
        profile = PROFILES_BY_NAME[chain]
    except KeyError:
        known = ", ".join(sorted(PROFILES_BY_NAME))
        raise ValueError(
            f"unknown chain {chain!r}; known chains: {known}"
        ) from None
    if blocks < 1:
        raise ValueError("blocks must be at least 1")
    if cores < 1:
        raise ValueError("cores must be at least 1")
    task_executors = [
        (name, make_executor(name, cores))
        for name in executors
        if name != "dag"
    ]
    run_dag_engine = "dag" in executors

    bound_checks: dict[str, dict[str, float]] = {}
    with obs.instrumented(registry=MetricsRegistry(policy=policy)) as state:
        recorder = state.recorder
        if any(name == "static-grouped" for name, _ in task_executors):
            # Static predictions feed the static-grouped executor; the
            # analysis pass runs inside the instrumented scope so the
            # staticcheck.* counters gate deterministically too.
            predictions: dict[str, object] = {}
            for _height, block_predictions in chain_prediction_blocks(
                profile, blocks=blocks, seed=seed
            ):
                for prediction in block_predictions:
                    predictions[prediction.tx_hash] = prediction
            for name, executor in task_executors:
                if name == "static-grouped":
                    executor.predictions = predictions
        for height, tasks, payload in chain_task_blocks(
            profile, blocks=blocks, seed=seed
        ):
            if not tasks:
                continue
            conflict = task_conflict_profile(tasks)
            with recorder.block(height):
                reports = [
                    (name, executor.run(tasks))
                    for name, executor in task_executors
                ]
                if run_dag_engine:
                    reports.append(
                        ("dag", run_block_dag(profile, payload, cores))
                    )
            for name, report in reports:
                comparison = compare_to_bounds(report, conflict)
                stats = bound_checks.setdefault(
                    name,
                    {"blocks": 0, "measured_sum": 0.0,
                     "eq2_sum": 0.0, "eq2_exceeded": 0},
                )
                stats["blocks"] += 1
                stats["measured_sum"] += comparison.measured
                stats["eq2_sum"] += comparison.eq2
                if not comparison.within_eq2:
                    stats["eq2_exceeded"] += 1

        timeline: dict[str, dict[str, object]] = {}
        for name in recorder.executors():
            events = recorder.events(executor=name)
            per_block: dict[int | None, list] = {}
            for event in events:
                per_block.setdefault(event.block, []).append(event)
            profiles = [
                profile_events(chunk) for chunk in per_block.values()
            ]
            timeline[name] = {
                "events": len(events),
                "executions": sum(p.executions for p in profiles),
                "aborted": sum(p.aborted for p in profiles),
                "retries": sum(p.retries for p in profiles),
                "makespan_total": sum(p.makespan for p in profiles),
                "critical_path_total": sum(
                    p.critical_chain_cost for p in profiles
                ),
                "mean_utilization": (
                    sum(p.mean_utilization for p in profiles)
                    / len(profiles) if profiles else 0.0
                ),
            }
        # Lifecycle pipeline pass: the same seeded workload end to end
        # (mempool → gossip → consensus → execution) under a NESTED
        # instrumented scope, so its second executor replay cannot
        # bleed into the timeline/bounds sections above.  Only the
        # pipeline-stage metric families merge back.
        from repro.obs.lifecycle_run import run_lifecycle

        with obs.instrumented() as life_state:
            life_result = run_lifecycle(
                profile, blocks=blocks, seed=seed, cores=cores,
            )
        state.registry.merge_dump(
            record for record in life_state.registry.dump()
            if str(record["name"]).startswith(_LIFECYCLE_METRIC_PREFIXES)
        )
        lifecycle_section: dict[str, object] = {
            "admitted": life_result.admitted,
            "committed": life_result.committed,
            "dropped": life_result.dropped,
            "open": life_result.open,
            "stages": {
                stage: {
                    "count": stats.count,
                    "sum": round(stats.total, 9),
                }
                for stage, stats in life_result.breakdown().items()
            },
        }

        metrics = deterministic_metrics(state.registry.snapshot())

    return {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "workload": {
            "chain": chain,
            "blocks": blocks,
            "cores": cores,
            "seed": seed,
            "executors": list(executors),
        },
        "metrics": metrics,
        "timeline": timeline,
        "bounds": bound_checks,
        "lifecycle": lifecycle_section,
    }


# -- comparison ---------------------------------------------------------------


@dataclass(frozen=True)
class Tolerance:
    """Allowed absolute/relative deviation for matching keys."""

    rel: float = 0.0
    abs: float = 0.0

    def allowed(self, baseline: float) -> float:
        return max(self.abs, self.rel * abs(baseline))


EXACT = Tolerance()


def flatten_snapshot(
    snapshot: Mapping[str, object], prefix: str = ""
) -> dict[str, object]:
    """Nested snapshot dicts to dotted scalar keys (lists join by ',')."""
    flat: dict[str, object] = {}
    for key, value in snapshot.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            flat.update(flatten_snapshot(value, path))
        elif isinstance(value, (list, tuple)):
            flat[path] = ",".join(str(item) for item in value)
        else:
            flat[path] = value
    return flat


@dataclass(frozen=True)
class RegressionEntry:
    """One compared key: baseline vs fresh value and its verdict."""

    key: str
    baseline: object
    current: object
    status: str  # ok | high | low | changed | missing | new
    allowed: float = 0.0

    @property
    def is_regression(self) -> bool:
        return self.status in ("high", "low", "changed", "missing")


@dataclass(frozen=True)
class RegressionReport:
    """Outcome of one baseline comparison."""

    entries: tuple[RegressionEntry, ...]

    @property
    def regressions(self) -> list[RegressionEntry]:
        return [e for e in self.entries if e.is_regression]

    @property
    def new_keys(self) -> list[RegressionEntry]:
        return [e for e in self.entries if e.status == "new"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """Human-readable verdict: regressions first, then a summary."""
        lines: list[str] = []
        for entry in self.regressions:
            lines.append(
                f"REGRESSION [{entry.status}] {entry.key}: "
                f"baseline={entry.baseline!r} current={entry.current!r} "
                f"(allowed ±{entry.allowed:g})"
            )
        for entry in self.new_keys:
            lines.append(
                f"note [new] {entry.key}: {entry.current!r} "
                "(absent from baseline; refresh with --update)"
            )
        compared = len(self.entries) - len(self.new_keys)
        lines.append(
            f"{'OK' if self.ok else 'FAIL'}: "
            f"{compared} keys compared, "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.new_keys)} new"
        )
        return "\n".join(lines)


def tolerances_from_spec(
    spec: Mapping[str, Mapping[str, float]],
) -> dict[str, Tolerance]:
    """Parse a baseline file's ``tolerances`` section.

    ``{"<glob>": {"rel": 0.05}, "<glob>": {"abs": 2}}`` — unknown keys
    raise :class:`ValueError` so typos fail loudly instead of silently
    widening the gate.
    """
    parsed: dict[str, Tolerance] = {}
    for pattern, band in spec.items():
        unknown = set(band) - {"rel", "abs"}
        if unknown:
            raise ValueError(
                f"tolerance {pattern!r}: unknown keys {sorted(unknown)}"
            )
        parsed[pattern] = Tolerance(
            rel=float(band.get("rel", 0.0)),
            abs=float(band.get("abs", 0.0)),
        )
    return parsed


def _tolerance_for(
    key: str, tolerances: Mapping[str, Tolerance]
) -> Tolerance:
    for pattern, tolerance in tolerances.items():
        if fnmatch(key, pattern):
            return tolerance
    return EXACT


def compare_snapshots(
    baseline: Mapping[str, object],
    fresh: Mapping[str, object],
    *,
    tolerances: Mapping[str, Tolerance] | None = None,
) -> RegressionReport:
    """Diff *fresh* against *baseline* key by key.

    Numeric keys compare within the first glob-matching tolerance band
    (exact by default); non-numeric keys must match exactly
    (``changed``).  Keys missing from the fresh run are ``missing``
    (regressions — a metric silently disappearing is exactly the
    blind-spot class this PR closes); keys only in the fresh run are
    ``new`` (informational).
    """
    tolerances = tolerances or {}
    base_flat = flatten_snapshot(baseline)
    fresh_flat = flatten_snapshot(fresh)
    entries: list[RegressionEntry] = []
    for key in sorted(base_flat):
        expected = base_flat[key]
        if key not in fresh_flat:
            entries.append(RegressionEntry(key, expected, None, "missing"))
            continue
        actual = fresh_flat[key]
        numeric = (
            isinstance(expected, (int, float))
            and isinstance(actual, (int, float))
            and not isinstance(expected, bool)
            and not isinstance(actual, bool)
        )
        if numeric:
            allowed = _tolerance_for(key, tolerances).allowed(
                float(expected)
            )
            delta = float(actual) - float(expected)
            if abs(delta) <= allowed + 1e-12:
                status = "ok"
            else:
                status = "high" if delta > 0 else "low"
            entries.append(
                RegressionEntry(key, expected, actual, status, allowed)
            )
        else:
            status = "ok" if actual == expected else "changed"
            entries.append(RegressionEntry(key, expected, actual, status))
    for key in sorted(set(fresh_flat) - set(base_flat)):
        entries.append(RegressionEntry(key, None, fresh_flat[key], "new"))
    return RegressionReport(entries=tuple(entries))


# -- persistence --------------------------------------------------------------


def write_snapshot(path: str | Path, snapshot: Mapping[str, object]) -> None:
    """Write a snapshot as stable JSON (sorted keys, trailing newline)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )


def load_snapshot(path: str | Path) -> dict[str, object]:
    """Read a snapshot, rejecting unknown schema versions."""
    data = json.loads(Path(path).read_text())
    version = data.get("schema_version")
    if version != SNAPSHOT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported snapshot schema version {version!r} "
            f"(expected {SNAPSHOT_SCHEMA_VERSION})"
        )
    return data


__all__ = [
    "DEFAULT_BLOCKS",
    "DEFAULT_CHAIN",
    "DEFAULT_CORES",
    "DEFAULT_EXECUTORS",
    "DEFAULT_SEED",
    "EXACT",
    "EXECUTOR_CHOICES",
    "SNAPSHOT_SCHEMA_VERSION",
    "RegressionEntry",
    "RegressionReport",
    "Tolerance",
    "build_snapshot",
    "chain_prediction_blocks",
    "chain_task_blocks",
    "compare_snapshots",
    "deterministic_metrics",
    "flatten_snapshot",
    "load_snapshot",
    "make_executor",
    "run_block_dag",
    "tolerances_from_spec",
    "write_snapshot",
]
