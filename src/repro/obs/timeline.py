"""Execution flight recorder: per-task structured timeline events.

The executors in :mod:`repro.execution` simulate schedules — every task
gets a start time, a finish time and a core — but until now only
aggregate counters survived a run.  The flight recorder captures the
schedule itself as a stream of structured events::

    (seq, executor, block, round, kind, task, lane, clock, cost)

* ``kind`` is one of :data:`EVENT_KINDS` — ``schedule`` (the task
  entered a phase's work queue), ``start`` (a lane began executing it),
  ``abort`` (it finished but failed validation), ``retry`` (it was
  re-queued after an abort or binned for re-execution), ``commit``
  (it finished for good) and ``edge`` (a dependency handoff
  ``pred->succ`` recorded by the DAG executor; ``task`` carries both
  hashes joined by ``->`` and the exporters turn it into a Chrome
  trace flow arrow from the predecessor's commit to the successor's
  start).
* ``lane`` is the simulated worker lane (core index); ``-1`` marks
  events that are not tied to a lane (queue-side ``schedule``/``retry``).
* ``clock`` is the executor's *logical* clock in cost units — the same
  simulated time base as :class:`repro.execution.simulator.SimulatedRun`,
  so makespans and per-lane busy times recomputed from the events match
  the executor's reported wall time exactly.
* ``cost`` is the task's cost in the same units (0.0 on point events
  where it adds nothing).

Like the metrics registry and the span tracer, the recorder hangs off
the process-global observability state behind the ``obs.enabled()``
no-op guard: the default :data:`NOOP_RECORDER` drops everything, so the
instrumented executors cost one attribute check when recording is off.
When recording is *on*, the hot path stays cheap by deferring: the
per-phase helpers (:func:`wave_rows` and friends) don't build per-task
tuples at run time — they enqueue one closure per phase capturing the
immutable task list and simulated run, and the closure expands into
event rows lazily on first read (:meth:`FlightRecorder.events`).  An
executor therefore pays O(phases), not O(tasks), while executing —
that is what keeps the enabled-recorder overhead on a full executor
replay under the 10% budget enforced by
``benchmarks/bench_exec_timeline.py``; the expansion cost lands on the
reader (exporter, profiler), off the measured path.

Downstream consumers: :mod:`repro.obs.critical_path` recomputes
makespans, lane utilization and the empirical critical path from the
events, and :func:`repro.obs.exporters.chrome_trace_events` turns them
into a catapult/Perfetto-loadable Chrome trace.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Sequence

EVENT_KINDS = ("schedule", "start", "abort", "retry", "commit", "edge")

EDGE_SEPARATOR = "->"

# Internal storage row: (executor, block, round, kind, task, lane,
# clock, cost).  Events materialise to TimelineEvent only on read.
EventRow = tuple[str, "int | None", int, str, str, int, float, float]

QUEUE_LANE = -1


@dataclass(frozen=True)
class TimelineEvent:
    """One recorded scheduling event (see module docstring for fields)."""

    seq: int
    executor: str
    block: int | None
    round: int
    kind: str
    task: str
    lane: int
    clock: float
    cost: float

    def as_dict(self) -> dict[str, object]:
        return {
            "seq": self.seq,
            "executor": self.executor,
            "block": self.block,
            "round": self.round,
            "kind": self.kind,
            "task": self.task,
            "lane": self.lane,
            "clock": self.clock,
            "cost": self.cost,
        }


class FlightRecorder:
    """Collects timeline events; thread-safe, append-only.

    Executors stamp events with the *current block* — set by wrapping
    each block's replay in :meth:`block` — so one recorder can capture a
    whole chain replay and still be sliced per block afterwards.
    """

    enabled = True

    def __init__(self) -> None:
        # _entries holds EventRow tuples and zero-arg thunks returning
        # lists of EventRows (the deferred batches); _rows caches their
        # expansion, extended incrementally: _expanded counts how many
        # entries have been materialised so far.  Writers only ever
        # list.append/extend (atomic under the GIL), so the hot
        # recording path takes no lock; readers serialise on _lock and
        # expand the entries that arrived since the last read.
        self._entries: list[object] = []
        self._rows: list[EventRow] = []
        self._expanded = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- block context --------------------------------------------------------

    @property
    def current_block(self) -> int | None:
        return getattr(self._local, "block", None)

    @contextmanager
    def block(self, height: int) -> Iterator["FlightRecorder"]:
        """Stamp events recorded inside the scope with *height*."""
        previous = getattr(self._local, "block", None)
        self._local.block = height
        try:
            yield self
        finally:
            self._local.block = previous

    # -- recording ------------------------------------------------------------

    def record(
        self,
        kind: str,
        task: str,
        *,
        executor: str,
        lane: int = QUEUE_LANE,
        clock: float = 0.0,
        cost: float = 0.0,
        round_index: int = 0,
        block: int | None = None,
    ) -> None:
        """Record one event (convenience form of :meth:`extend`)."""
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r}; expected one of "
                f"{', '.join(EVENT_KINDS)}"
            )
        self.extend([(
            executor,
            block if block is not None else self.current_block,
            round_index, kind, task, lane, clock, cost,
        )])

    def extend(self, rows: Sequence[EventRow]) -> None:
        """Append pre-built event rows (the eager batch path)."""
        self._entries.extend(rows)

    def defer(self, thunk) -> None:
        """Enqueue a zero-arg callable producing rows, expanded on read.

        This is the hot path's O(1)-per-phase entry: the executors'
        helpers capture their (immutable) task lists and simulated runs
        in a closure here instead of building per-task tuples while the
        clock is running.  A single ``list.append`` — no lock, no cache
        invalidation — which is what the overhead bench measures.
        """
        self._entries.append(thunk)

    # -- reading --------------------------------------------------------------

    def _materialised(self) -> list[EventRow]:
        """Expand deferred batches added since the last read (cached)."""
        with self._lock:
            fresh = self._entries[self._expanded:]
            if fresh:
                self._expanded += len(fresh)
                rows = self._rows
                for entry in fresh:
                    if callable(entry):
                        rows.extend(entry())
                    else:
                        rows.append(entry)  # type: ignore[arg-type]
            return self._rows

    def __len__(self) -> int:
        return len(self._materialised())

    def events(
        self,
        *,
        executor: str | None = None,
        block: int | None = None,
        kind: str | None = None,
    ) -> list[TimelineEvent]:
        """Materialised events in record order, optionally filtered."""
        rows = self._materialised()
        out: list[TimelineEvent] = []
        for seq, row in enumerate(rows):
            row_exec, row_block, round_index, row_kind, task, lane, \
                clock, cost = row
            if executor is not None and row_exec != executor:
                continue
            if block is not None and row_block != block:
                continue
            if kind is not None and row_kind != kind:
                continue
            out.append(TimelineEvent(
                seq=seq, executor=row_exec, block=row_block,
                round=round_index, kind=row_kind, task=task, lane=lane,
                clock=clock, cost=cost,
            ))
        return out

    def dump_rows(self) -> list[EventRow]:
        """Materialised rows as a picklable snapshot.

        The parallel-replay workers ship their private recorder's rows
        back to the parent this way; the parent replays them with
        :meth:`extend`, so a fanned-out chain replay reads identically
        to a serial one (``events()``, exporters, the regress snapshot
        all see the same stream).  Rows are plain tuples of primitives,
        so the snapshot pickles without dragging task objects along.
        """
        return list(self._materialised())

    def blocks(self) -> list[int | None]:
        """Distinct block heights in first-appearance order."""
        seen: dict[int | None, None] = {}
        for row in self._materialised():
            seen.setdefault(row[1])
        return list(seen)

    def executors(self) -> list[str]:
        """Distinct executor names in first-appearance order."""
        seen: dict[str, None] = {}
        for row in self._materialised():
            seen.setdefault(row[0])
        return list(seen)

    def clear(self) -> None:
        with self._lock:
            self._entries = []
            self._rows = []
            self._expanded = 0


class NoopFlightRecorder(FlightRecorder):
    """The disabled recorder: drops everything, reads as empty."""

    enabled = False

    def record(self, kind: str, task: str, **kwargs: object) -> None:  # type: ignore[override]
        pass

    def extend(self, rows: Sequence[EventRow]) -> None:
        pass

    def defer(self, thunk) -> None:
        pass

    def events(self, **filters: object) -> list[TimelineEvent]:  # type: ignore[override]
        return []

    def dump_rows(self) -> list[EventRow]:
        return []


NOOP_RECORDER = NoopFlightRecorder()


# -- batch emission helpers (what the executors call) -------------------------
#
# These take the executor-agnostic pieces a simulated run produces —
# per-task start/finish/lane maps — and record them as ONE deferred
# batch: the call costs a closure append under the recorder lock, and
# the per-task event rows are built lazily when the recorder is read.
# They deliberately avoid importing from repro.execution (the executors
# import repro.obs, so a module-level import here would be circular);
# any object with .start_times/.finish_times/.core_of duck-types as a
# run, any object with .tx_hash/.cost as a task.  The task sequences
# and runs are captured BY REFERENCE — no defensive copies, that is
# what keeps an OCC run with hundreds of retry waves inside the
# overhead budget — so callers must not mutate them after the call.
# The executors satisfy this by construction: every wave/bin/retry list
# is built fresh per round and only ever reassigned, never extended
# after its helper call.


def wave_rows(
    recorder: FlightRecorder,
    executor: str,
    tasks: Sequence,
    run,
    *,
    offset: float = 0.0,
    round_index: int = 0,
    aborted: Sequence = (),
    scheduled: bool = True,
) -> None:
    """Record one parallel wave: schedule / start / commit-or-abort.

    ``aborted`` is the subsequence of *tasks* whose finish is an
    ``abort`` instead of a ``commit``; ``scheduled=False`` suppresses
    the queue-side schedule events (for waves whose tasks were already
    queued earlier, e.g. OCC retries, which emit ``retry`` via
    :func:`retry_rows` instead).
    """
    if not recorder.enabled or not tasks:
        return
    block = recorder.current_block

    def expand() -> list[EventRow]:
        starts = run.start_times
        finishes = run.finish_times
        lanes = run.core_of
        aborted_hashes = {task.tx_hash for task in aborted}
        rows: list[EventRow] = []
        if scheduled:
            rows.extend(
                (executor, block, round_index, "schedule", task.tx_hash,
                 QUEUE_LANE, offset, 0.0)
                for task in tasks
            )
        rows.extend(
            (executor, block, round_index, "start", task.tx_hash,
             lanes[task.tx_hash], offset + starts[task.tx_hash],
             task.cost)
            for task in tasks
        )
        rows.extend(
            (executor, block, round_index,
             "abort" if task.tx_hash in aborted_hashes else "commit",
             task.tx_hash, lanes[task.tx_hash],
             offset + finishes[task.tx_hash], task.cost)
            for task in tasks
        )
        return rows

    recorder.defer(expand)


def sequential_rows(
    recorder: FlightRecorder,
    executor: str,
    tasks: Sequence,
    *,
    offset: float = 0.0,
    round_index: int = 0,
    lane: int = 0,
    retry: bool = False,
) -> None:
    """Record a sequential segment (a bin replay, the baseline run).

    Tasks run back-to-back on *lane* starting at *offset*.  With
    ``retry=True`` each task gets a ``retry`` event at its start instead
    of a ``schedule`` event at the segment start (the speculative bin
    and OCC re-queues re-execute known tasks; fresh segments schedule).
    """
    if not recorder.enabled or not tasks:
        return
    block = recorder.current_block

    def expand() -> list[EventRow]:
        rows: list[EventRow] = []
        cursor = offset
        for task in tasks:
            if retry:
                rows.append((executor, block, round_index, "retry",
                             task.tx_hash, QUEUE_LANE, cursor, 0.0))
            else:
                rows.append((executor, block, round_index, "schedule",
                             task.tx_hash, QUEUE_LANE, offset, 0.0))
            rows.append((executor, block, round_index, "start",
                         task.tx_hash, lane, cursor, task.cost))
            cursor += task.cost
            rows.append((executor, block, round_index, "commit",
                         task.tx_hash, lane, cursor, task.cost))
        return rows

    recorder.defer(expand)


def wave_log_rows(
    recorder: FlightRecorder,
    executor: str,
    log: Sequence,
) -> None:
    """Record a whole multi-wave retry loop (the OCC engine) at once.

    *log* holds one ``(tasks, run, offset, retried)`` entry per wave:
    the pending tasks, their simulated run, the wave's logical start
    offset, and the subsequence that aborted and re-queues.  Wave 0
    schedules every task; wave ``i``'s aborts emit ``retry`` events at
    the wave boundary with ``round_index = i + 1``, matching what
    per-wave :func:`wave_rows` + :func:`retry_rows` calls would record.
    One deferred closure covers the entire run, so an engine with
    hundreds of retry waves pays a single ``list.append`` per wave plus
    one per run, instead of two helper calls per wave.
    """
    if not recorder.enabled or not log:
        return
    block = recorder.current_block

    def expand() -> list[EventRow]:
        rows: list[EventRow] = []
        for index, (tasks, run, offset, retried) in enumerate(log):
            starts = run.start_times
            finishes = run.finish_times
            lanes = run.core_of
            aborted_hashes = {task.tx_hash for task in retried}
            if index == 0:
                rows.extend(
                    (executor, block, 0, "schedule", task.tx_hash,
                     QUEUE_LANE, offset, 0.0)
                    for task in tasks
                )
            rows.extend(
                (executor, block, index, "start", task.tx_hash,
                 lanes[task.tx_hash], offset + starts[task.tx_hash],
                 task.cost)
                for task in tasks
            )
            rows.extend(
                (executor, block, index,
                 "abort" if task.tx_hash in aborted_hashes else "commit",
                 task.tx_hash, lanes[task.tx_hash],
                 offset + finishes[task.tx_hash], task.cost)
                for task in tasks
            )
            boundary = offset + run.makespan
            rows.extend(
                (executor, block, index + 1, "retry", task.tx_hash,
                 QUEUE_LANE, boundary, 0.0)
                for task in retried
            )
        return rows

    recorder.defer(expand)


def retry_rows(
    recorder: FlightRecorder,
    executor: str,
    tasks: Sequence,
    *,
    clock: float,
    round_index: int,
) -> None:
    """Record queue-side ``retry`` events for tasks re-entering a wave."""
    if not recorder.enabled or not tasks:
        return
    block = recorder.current_block
    recorder.defer(lambda: [
        (executor, block, round_index, "retry", task.tx_hash,
         QUEUE_LANE, clock, 0.0)
        for task in tasks
    ])


__all__ = [
    "EDGE_SEPARATOR",
    "EVENT_KINDS",
    "NOOP_RECORDER",
    "QUEUE_LANE",
    "EventRow",
    "FlightRecorder",
    "NoopFlightRecorder",
    "TimelineEvent",
    "retry_rows",
    "sequential_rows",
    "wave_log_rows",
    "wave_rows",
]
