"""Streaming monitor: sliding-window SLOs over the live pipeline.

A million-transaction sweep cannot be profiled post-hoc — the trace
would not fit — so this module watches the pipeline *as it runs*: the
driver (:func:`repro.obs.lifecycle_run.run_lifecycle` via its
``on_block`` hook) hands the monitor one :class:`BlockSample` per
committed block, and the monitor keeps a fixed-size ring buffer of the
last ``window`` blocks.  Everything it reports — abort rate, stage
p50/p95/p99, lane utilization, mempool depth, block wall-clock — is
computed over that window, so monitor memory is O(window x block), not
O(tx).

SLO rules (:class:`SLORule`) are threshold checks against the window
aggregate.  Rules are either *hard* (a breach is a failure the CLI
turns into exit code 1) or *advisory* (reported, never failing) — the
wall-clock percentile gate ships advisory by default because CI hosts
are too noisy to gate on real time, exactly the caveat ROADMAP.md
recorded when it left that item open.

``repro.cli monitor`` renders the window live after every block, or
once at the end with ``--once`` (the CI snapshot mode);
:func:`monitor_snapshot` is the JSON artifact both modes can write.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.obs.lifecycle import STAGES, _percentile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.obs.metrics import MetricsRegistry

DEFAULT_WINDOW = 8
MONITOR_PERCENTILES = (0.50, 0.95, 0.99)


@dataclass(frozen=True)
class BlockSample:
    """One committed block's contribution to the sliding window."""

    height: int
    txs: int                 # transactions packed into the block
    committed: int           # tasks committed by the executor
    aborted: int             # execution aborts (optimistic conflicts)
    retried: int             # re-executions after aborts
    wall_clock_s: float      # real seconds spent processing the block
    sim_seconds: float       # simulated seconds the block spanned
    mempool_depth: int       # pool size after packing
    lane_utilization: float  # mean busy fraction of execution lanes
    # Per-stage latencies of traces *closed during this block* (sampled
    # detail — sliced from the tracer, so unsampled txs never appear).
    stage_latencies: Mapping[str, tuple[float, ...]] = \
        field(default_factory=dict)

    @property
    def attempts(self) -> int:
        return self.committed + self.aborted


@dataclass(frozen=True)
class SLORule:
    """``metric op threshold`` over the window aggregate.

    ``metric`` addresses :meth:`WindowAggregate.value` keys, e.g.
    ``abort_rate``, ``wall_p95``, ``mempool_depth``,
    ``stage.committed.p99``.  ``advisory`` rules report breaches but
    never fail a run.
    """

    name: str
    metric: str
    op: str                  # "<=" or ">="
    threshold: float
    advisory: bool = False

    def __post_init__(self) -> None:
        if self.op not in ("<=", ">="):
            raise ValueError(
                f"unsupported SLO operator {self.op!r}; use <= or >="
            )

    def check(self, value: float) -> bool:
        if self.op == "<=":
            return value <= self.threshold
        return value >= self.threshold


@dataclass(frozen=True)
class RuleResult:
    rule: SLORule
    value: float
    ok: bool

    @property
    def severity(self) -> str:
        if self.ok:
            return "ok"
        return "advisory" if self.rule.advisory else "breach"

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.rule.name,
            "metric": self.rule.metric,
            "op": self.rule.op,
            "threshold": self.rule.threshold,
            "value": self.value,
            "ok": self.ok,
            "advisory": self.rule.advisory,
        }


@dataclass(frozen=True)
class WindowAggregate:
    """The sliding window reduced to the monitored quantities."""

    window: int              # samples currently in the window
    blocks_seen: int         # samples observed over the whole run
    txs: int
    committed: int
    aborted: int
    retried: int
    abort_rate: float        # aborts / execution attempts, window-wide
    mempool_depth: int       # most recent reading
    mean_lane_utilization: float
    wall_p50: float
    wall_p95: float
    wall_p99: float
    sim_seconds: float       # simulated time the window spans
    stage_percentiles: Mapping[str, Mapping[str, float]]

    @property
    def throughput(self) -> float:
        """Committed tx per simulated second over the window."""
        if self.sim_seconds <= 0:
            return 0.0
        return self.committed / self.sim_seconds

    def value(self, metric: str) -> float:
        """Resolve an :class:`SLORule` metric key."""
        if metric.startswith("stage."):
            _, stage, quantile = metric.split(".", 2)
            stats = self.stage_percentiles.get(stage)
            if stats is None:
                return 0.0
            return float(stats.get(quantile, 0.0))
        try:
            value = getattr(self, metric)
        except AttributeError:
            raise ValueError(f"unknown monitor metric {metric!r}") \
                from None
        if not isinstance(value, (int, float)):
            raise ValueError(f"unknown monitor metric {metric!r}")
        return float(value)

    def as_dict(self) -> dict[str, object]:
        return {
            "window": self.window,
            "blocks_seen": self.blocks_seen,
            "txs": self.txs,
            "committed": self.committed,
            "aborted": self.aborted,
            "retried": self.retried,
            "abort_rate": self.abort_rate,
            "throughput": self.throughput,
            "mempool_depth": self.mempool_depth,
            "mean_lane_utilization": self.mean_lane_utilization,
            "wall_p50": self.wall_p50,
            "wall_p95": self.wall_p95,
            "wall_p99": self.wall_p99,
            "sim_seconds": self.sim_seconds,
            "stage_percentiles": {
                stage: dict(stats)
                for stage, stats in self.stage_percentiles.items()
            },
        }


def default_rules(
    *,
    max_abort_rate: float | None = None,
    wall_p95_budget: float | None = None,
) -> list[SLORule]:
    """The CLI's rule set.

    The abort-rate gate (when requested) is *hard*; the wall-clock
    percentile gate is always *advisory* — CI hosts jitter too much to
    fail runs on real time, so the gate reports without gating.
    """
    rules: list[SLORule] = []
    if max_abort_rate is not None:
        rules.append(SLORule(
            name="abort-rate",
            metric="abort_rate",
            op="<=",
            threshold=max_abort_rate,
        ))
    if wall_p95_budget is not None:
        rules.append(SLORule(
            name="block-wall-p95",
            metric="wall_p95",
            op="<=",
            threshold=wall_p95_budget,
            advisory=True,
        ))
    return rules


class StreamingMonitor:
    """Fixed-memory sliding-window aggregation of block samples.

    Not thread-safe — it lives on the driver loop, which is serial by
    construction (blocks commit one at a time).
    """

    def __init__(
        self,
        *,
        window: int = DEFAULT_WINDOW,
        rules: Sequence[SLORule] = (),
        registry: "MetricsRegistry | None" = None,
        on_sample: "Callable[[WindowAggregate], None] | None" = None,
    ) -> None:
        if window < 1:
            raise ValueError("monitor window must be at least 1")
        self._samples: deque[BlockSample] = deque(maxlen=window)
        self._rules = tuple(rules)
        self._registry = registry
        self._on_sample = on_sample
        self._blocks_seen = 0

    @property
    def window_size(self) -> int:
        return self._samples.maxlen or 0

    @property
    def blocks_seen(self) -> int:
        return self._blocks_seen

    @property
    def rules(self) -> tuple[SLORule, ...]:
        return self._rules

    def observe_block(self, sample: BlockSample) -> WindowAggregate:
        """Fold one block in; returns the refreshed window aggregate."""
        self._samples.append(sample)
        self._blocks_seen += 1
        aggregate = self.aggregate()
        registry = self._registry
        if registry is not None and registry.enabled:
            registry.gauge("monitor.abort_rate").set(
                aggregate.abort_rate
            )
            registry.gauge("monitor.mempool_depth").set(
                aggregate.mempool_depth
            )
            registry.gauge("monitor.lane_utilization").set(
                aggregate.mean_lane_utilization
            )
            registry.gauge("monitor.window_blocks").set(
                aggregate.window
            )
            registry.counter("monitor.blocks").inc()
        if self._on_sample is not None:
            self._on_sample(aggregate)
        return aggregate

    def aggregate(self) -> WindowAggregate:
        samples = list(self._samples)
        txs = sum(s.txs for s in samples)
        committed = sum(s.committed for s in samples)
        aborted = sum(s.aborted for s in samples)
        retried = sum(s.retried for s in samples)
        attempts = committed + aborted
        walls = sorted(s.wall_clock_s for s in samples)
        stage_values: dict[str, list[float]] = {}
        for sample in samples:
            for stage, latencies in sample.stage_latencies.items():
                stage_values.setdefault(stage, []).extend(latencies)
        stage_percentiles: dict[str, dict[str, float]] = {}
        for stage in STAGES:
            values = stage_values.get(stage)
            if not values:
                continue
            values.sort()
            stage_percentiles[stage] = {
                "count": float(len(values)),
                "p50": _percentile(values, 0.50),
                "p95": _percentile(values, 0.95),
                "p99": _percentile(values, 0.99),
            }
        if samples:
            utilization = sum(
                s.lane_utilization for s in samples
            ) / len(samples)
            depth = samples[-1].mempool_depth
        else:
            utilization = 0.0
            depth = 0
        return WindowAggregate(
            window=len(samples),
            blocks_seen=self._blocks_seen,
            txs=txs,
            committed=committed,
            aborted=aborted,
            retried=retried,
            abort_rate=aborted / attempts if attempts else 0.0,
            mempool_depth=depth,
            mean_lane_utilization=utilization,
            wall_p50=_percentile(walls, 0.50),
            wall_p95=_percentile(walls, 0.95),
            wall_p99=_percentile(walls, 0.99),
            sim_seconds=sum(s.sim_seconds for s in samples),
            stage_percentiles=stage_percentiles,
        )

    def evaluate(
        self, aggregate: WindowAggregate | None = None
    ) -> list[RuleResult]:
        if aggregate is None:
            aggregate = self.aggregate()
        return [
            RuleResult(
                rule=rule,
                value=aggregate.value(rule.metric),
                ok=rule.check(aggregate.value(rule.metric)),
            )
            for rule in self._rules
        ]

    def hard_breaches(
        self, results: Sequence[RuleResult] | None = None
    ) -> list[RuleResult]:
        """Non-advisory rule failures — the CLI's exit-1 condition."""
        if results is None:
            results = self.evaluate()
        return [
            result for result in results
            if not result.ok and not result.rule.advisory
        ]


# -- rendering / snapshots -----------------------------------------------------


def render_monitor(
    aggregate: WindowAggregate,
    results: Sequence[RuleResult] = (),
    *,
    title: str = "pipeline monitor",
) -> str:
    """ASCII dashboard of one window aggregate plus its SLO verdicts."""
    from repro.analysis.report import render_table

    lines = [
        f"{title} — window {aggregate.window} block(s), "
        f"{aggregate.blocks_seen} seen",
        f"  txs={aggregate.txs}  committed={aggregate.committed}  "
        f"aborted={aggregate.aborted}  retried={aggregate.retried}  "
        f"abort-rate={aggregate.abort_rate:.3f}",
        f"  throughput={aggregate.throughput:.1f} tx/s (simulated)  "
        f"mempool-depth={aggregate.mempool_depth}  "
        f"lane-util={aggregate.mean_lane_utilization:.2f}",
        f"  block wall-clock p50={aggregate.wall_p50 * 1e3:.1f}ms  "
        f"p95={aggregate.wall_p95 * 1e3:.1f}ms  "
        f"p99={aggregate.wall_p99 * 1e3:.1f}ms",
    ]
    if aggregate.stage_percentiles:
        rows = [
            (
                stage,
                int(stats["count"]),
                f"{stats['p50']:.3f}",
                f"{stats['p95']:.3f}",
                f"{stats['p99']:.3f}",
            )
            for stage, stats in aggregate.stage_percentiles.items()
        ]
        lines.append(render_table(
            ("stage", "closed", "p50 (s)", "p95 (s)", "p99 (s)"),
            rows,
            title="sampled stage latency (window)",
        ))
    else:
        lines.append(
            "  (no sampled traces closed in this window — stage "
            "detail needs a coarser --rate or more blocks)"
        )
    if results:
        rows = [
            (
                result.rule.name,
                f"{result.rule.metric} {result.rule.op} "
                f"{result.rule.threshold:g}",
                f"{result.value:.4g}",
                result.severity.upper(),
            )
            for result in results
        ]
        lines.append(render_table(
            ("rule", "condition", "value", "status"),
            rows,
            title="SLO rules",
        ))
    return "\n".join(lines)


def monitor_snapshot(
    aggregate: WindowAggregate,
    results: Sequence[RuleResult] = (),
) -> dict[str, object]:
    """JSON document for ``repro.cli monitor --out`` (a CI artifact)."""
    return {
        "aggregate": aggregate.as_dict(),
        "rules": [result.as_dict() for result in results],
        "hard_breaches": [
            result.rule.name for result in results
            if not result.ok and not result.rule.advisory
        ],
    }


__all__ = [
    "DEFAULT_WINDOW",
    "BlockSample",
    "RuleResult",
    "SLORule",
    "StreamingMonitor",
    "WindowAggregate",
    "default_rules",
    "monitor_snapshot",
    "render_monitor",
]
