"""Span-based tracing over ``time.perf_counter_ns``.

A span measures one named region of the pipeline (``tdg.build``,
``pipeline.block``, ``exec.occ.run``).  Spans nest: the tracer keeps a
per-thread stack, so a span opened while another is active records it
as its parent, and the exported trace reconstructs the call tree.

The entry point is the context manager::

    with tracer.span("tdg.build", model="utxo") as span:
        ...
        span.set(edges=len(edges))

Span ids are small integers drawn from a process-wide atomic counter —
deterministic under a fixed workload, which keeps trace files diffable
between runs.  :class:`NoopTracer` is the disabled variant: its
``span`` returns a shared reusable context manager that measures
nothing.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Span:
    """One completed timed region.

    Attributes:
        name: dotted region name (see docs/observability.md).
        span_id: unique id within the tracer.
        parent_id: enclosing span's id, or None for a root span.
        start_ns: ``perf_counter_ns`` at entry.
        duration_ns: elapsed nanoseconds.
        attrs: user attributes attached at entry or via ``set``.
    """

    name: str
    span_id: int
    parent_id: int | None
    start_ns: int
    duration_ns: int
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6


class _ActiveSpan:
    """Mutable handle yielded while a span is open."""

    __slots__ = ("name", "span_id", "parent_id", "attrs")

    def __init__(self, name: str, span_id: int, parent_id: int | None,
                 attrs: dict[str, object]):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs

    def set(self, **attrs: object) -> None:
        """Attach attributes discovered while the span is running."""
        self.attrs.update(attrs)


class _SpanContext:
    """Context manager recording one span into *tracer*."""

    __slots__ = ("_tracer", "_active", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: dict[str, object]):
        self._tracer = tracer
        stack = tracer._stack_of_current_thread()
        parent_id = stack[-1] if stack else None
        self._active = _ActiveSpan(
            name, next(tracer._ids), parent_id, attrs
        )
        self._start_ns = 0

    def __enter__(self) -> _ActiveSpan:
        self._tracer._stack_of_current_thread().append(self._active.span_id)
        self._start_ns = time.perf_counter_ns()
        return self._active

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        stack = self._tracer._stack_of_current_thread()
        if stack and stack[-1] == self._active.span_id:
            stack.pop()
        self._tracer._record(
            Span(
                name=self._active.name,
                span_id=self._active.span_id,
                parent_id=self._active.parent_id,
                start_ns=self._start_ns,
                duration_ns=end_ns - self._start_ns,
                attrs=self._active.attrs,
            )
        )
        return False


class Tracer:
    """Collects completed spans; thread-safe, nesting-aware."""

    enabled = True

    def __init__(self) -> None:
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()

    def _stack_of_current_thread(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def span(self, name: str, **attrs: object) -> _SpanContext:
        """Open a nested timed region; use as a context manager."""
        return _SpanContext(self, name, dict(attrs))

    def spans(self) -> list[Span]:
        """Completed spans in completion order (children before parents)."""
        with self._lock:
            return list(self._spans)

    def roots(self) -> list[Span]:
        return [span for span in self.spans() if span.parent_id is None]

    def children_of(self, span_id: int) -> list[Span]:
        return [span for span in self.spans() if span.parent_id == span_id]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


class _NoopSpanContext:
    """Reusable, stateless context manager measuring nothing."""

    __slots__ = ()

    def __enter__(self) -> _ActiveSpan:
        return _NOOP_ACTIVE

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class _NoopActiveSpan(_ActiveSpan):
    __slots__ = ()

    def set(self, **attrs: object) -> None:
        pass


_NOOP_ACTIVE = _NoopActiveSpan("noop", 0, None, {})
_NOOP_SPAN_CONTEXT = _NoopSpanContext()


class NoopTracer(Tracer):
    """The disabled tracer: ``span`` returns a shared no-op context."""

    enabled = False

    def span(self, name: str, **attrs: object) -> _NoopSpanContext:  # type: ignore[override]
        return _NOOP_SPAN_CONTEXT

    def spans(self) -> list[Span]:
        return []


NOOP_TRACER = NoopTracer()
