"""Incremental interprocedural re-analysis with digest-keyed caches.

:class:`~repro.staticcheck.interproc.ContractAnalyzer` computes one
joint closure over the whole registry and memoizes it for its own
lifetime — correct for a frozen code population, but a chain *grows*:
new contracts deploy mid-chain, and re-running the full closure on
every growth step re-analyzes every program ever registered.

:class:`IncrementalAnalyzer` makes re-analysis proportional to what
actually changed, with two digest-keyed cache levels:

* **summaries** keyed by the *bytecode digest* (sha-256 over the
  instruction stream).  The registry never rebinds a ``code_id`` to a
  different program (:meth:`~repro.vm.contract.CodeRegistry.register`
  raises), so a digest hit is always sound — and two addresses binding
  byte-identical programs share one summary.
* **closures** keyed by a *dependency digest*: sha-256 over the
  lattice name plus every ``(address, code_id, bytecode digest)``
  triple in the address's call-graph reachable set (following resolved
  ``CALL`` targets, including unbound addresses — binding code to a
  previously codeless callee must invalidate its callers).  If any
  program or binding anywhere in the reachable set changes, the digest
  changes and the closure recomputes over exactly that subgraph;
  registry growth that does not touch the reachable set keeps the
  digest stable and the cached closure valid.

Cycle safety: mutually recursive contracts have identical reachable
sets, so their dependency digests go stale *together* and the dirty
subgraph is re-closed jointly — the fixpoint never mixes stale and
fresh members of one SCC.

Cache traffic is observable as ``staticcheck.cache.*`` counters
(``summary_hits`` / ``summary_misses`` / ``closure_hits`` /
``closure_misses`` / ``invalidated``) and on the :attr:`stats` object.
The analyzer is a drop-in provider for
:func:`repro.staticcheck.predict.predict_transaction` (it implements
``has_code`` / ``closed_access``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping

from repro import obs
from repro.staticcheck.absint import ProgramSummary, analyze_program
from repro.staticcheck.interproc import (
    EMPTY_ACCESS,
    ClosedAccess,
    known_call_targets,
    local_access,
)
from repro.staticcheck.valueset import (
    DEFAULT_LATTICE,
    ValueLattice,
    get_lattice,
)
from repro.vm.contract import CodeRegistry, Program

_MAX_CLOSURE_PASSES = 10_000

_EMPTY_PROGRAM: Program = ()


def program_digest(program: Program) -> str:
    """A stable content digest of one program's instruction stream."""
    hasher = hashlib.sha256()
    for instruction in program:
        hasher.update(
            repr((instruction.op.name, instruction.operand)).encode()
        )
    return hasher.hexdigest()


@dataclass
class CacheStats:
    """Running cache-traffic tallies (mirrors ``staticcheck.cache.*``)."""

    summary_hits: int = 0
    summary_misses: int = 0
    closure_hits: int = 0
    closure_misses: int = 0
    invalidated: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "summary_hits": self.summary_hits,
            "summary_misses": self.summary_misses,
            "closure_hits": self.closure_hits,
            "closure_misses": self.closure_misses,
            "invalidated": self.invalidated,
        }


class IncrementalAnalyzer:
    """Digest-cached analyzer that survives registry growth.

    Args:
        registry: the chain's (growing) program store.
        code_of: initial address → ``code_id`` bindings; extend with
            :meth:`bind` as contracts deploy.
        lattice: abstract slot domain, as in
            :class:`~repro.staticcheck.interproc.ContractAnalyzer`.
    """

    def __init__(
        self,
        registry: CodeRegistry,
        code_of: Mapping[str, str] | None = None,
        *,
        lattice: "str | ValueLattice" = DEFAULT_LATTICE,
    ) -> None:
        self.registry = registry
        self.code_of: dict[str, str] = dict(code_of or {})
        self.lattice = get_lattice(lattice)
        self.stats = CacheStats()
        self._digests: dict[str, str] = {}
        self._summaries: dict[str, ProgramSummary] = {}
        self._closures: dict[str, tuple[str, ClosedAccess]] = {}

    # -- bindings -------------------------------------------------------

    def bind(self, address: str, code_id: str) -> None:
        """Bind (or rebind) *address* to *code_id*.

        Closures whose reachable set contains *address* go stale via
        the dependency digest; nothing is eagerly recomputed.
        """
        self.code_of[address] = code_id

    def has_code(self, address: str) -> bool:
        return address in self.code_of

    # -- level 1: per-program summaries ---------------------------------

    def summary(self, code_id: str) -> ProgramSummary:
        """The summary of *code_id*, cached by bytecode digest."""
        digest = self._code_digest(code_id)
        cached = self._summaries.get(digest)
        if cached is not None:
            self.stats.summary_hits += 1
            self._count("summary_hits")
            return cached
        self.stats.summary_misses += 1
        self._count("summary_misses")
        program = self.registry.get(code_id)
        summary = analyze_program(
            program if program is not None else _EMPTY_PROGRAM,
            lattice=self.lattice,
        )
        self._summaries[digest] = summary
        return summary

    def _code_digest(self, code_id: str) -> str:
        cached = self._digests.get(code_id)
        if cached is not None:
            return cached
        program = self.registry.get(code_id)
        if program is None:
            # Not registered (yet): don't cache — the id may appear in
            # the registry later and must then digest to its real body.
            return program_digest(_EMPTY_PROGRAM)
        digest = program_digest(program)
        self._digests[code_id] = digest
        return digest

    # -- level 2: closed access sets ------------------------------------

    def closed_access(self, address: str) -> ClosedAccess:
        """The closed access set of *address*, cached by dep digest."""
        if address not in self.code_of:
            return EMPTY_ACCESS
        reachable = self._reachable(address)
        digest = self._dependency_digest(reachable)
        cached = self._closures.get(address)
        if cached is not None and cached[0] == digest:
            self.stats.closure_hits += 1
            self._count("closure_hits")
            return cached[1]
        if cached is not None:
            self.stats.invalidated += 1
            self._count("invalidated")
        self.stats.closure_misses += 1
        self._count("closure_misses")
        closed = self._close_subgraph(reachable)
        # Cache every member of the freshly closed subgraph under its
        # own dependency digest: each member's reachable set is a
        # subset of this one, so its fixpoint value is final too.
        for member in reachable:
            if member in self.code_of:
                member_digest = self._dependency_digest(
                    self._reachable(member)
                )
                self._closures[member] = (member_digest, closed[member])
        return closed[address]

    def analyze_all(self) -> dict[str, ClosedAccess]:
        """Closures for every bound address (cache-aware)."""
        return {
            address: self.closed_access(address)
            for address in sorted(self.code_of)
        }

    # -- internals ------------------------------------------------------

    def _reachable(self, address: str) -> tuple[str, ...]:
        """*address* plus everything reachable over resolved CALLs.

        Unbound addresses are included: they are part of the dependency
        surface (binding code to one later must invalidate callers)
        even though they contribute no local access.
        """
        seen = {address}
        frontier = [address]
        while frontier:
            current = frontier.pop()
            code_id = self.code_of.get(current)
            if code_id is None:
                continue
            for target in known_call_targets(self.summary(code_id)):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return tuple(sorted(seen))

    def _dependency_digest(self, reachable: tuple[str, ...]) -> str:
        hasher = hashlib.sha256(self.lattice.name.encode())
        for address in reachable:
            code_id = self.code_of.get(address)
            hasher.update(address.encode())
            hasher.update(b"\x00")
            if code_id is None:
                hasher.update(b"-\x00")
            else:
                hasher.update(code_id.encode())
                hasher.update(b"\x00")
                hasher.update(self._code_digest(code_id).encode())
            hasher.update(b"\x01")
        return hasher.hexdigest()

    def _close_subgraph(
        self, reachable: tuple[str, ...]
    ) -> dict[str, ClosedAccess]:
        """Joint closure fixpoint restricted to *reachable* members."""
        members = [a for a in reachable if a in self.code_of]
        with obs.trace_span(
            "staticcheck.incremental.closure", contracts=len(members)
        ) as span:
            local = {
                address: local_access(
                    address, self.summary(self.code_of[address])
                )
                for address in members
            }
            closed = dict(local)
            passes = 0
            changed = True
            while changed:
                passes += 1
                if passes > _MAX_CLOSURE_PASSES:  # pragma: no cover
                    raise RuntimeError(
                        "incremental interprocedural closure diverged"
                    )
                changed = False
                for address in members:
                    merged = local[address]
                    targets = known_call_targets(
                        self.summary(self.code_of[address])
                    )
                    for target in targets:
                        if target in closed:
                            merged = merged.union(closed[target])
                    if merged != closed[address]:
                        closed[address] = merged
                        changed = True
            if obs.enabled():
                span.set(passes=passes)
        return closed

    def _count(self, name: str) -> None:
        if obs.enabled():
            obs.counter(f"staticcheck.cache.{name}").inc()


__all__ = [
    "CacheStats",
    "IncrementalAnalyzer",
    "program_digest",
]
