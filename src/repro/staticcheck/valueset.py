"""Bounded value-set lattice for the abstract interpreter.

PR 3's interpreter tracked one abstract value per stack slot: a single
:class:`~repro.staticcheck.lattice.Const` or ⊤.  Joining two different
constants — the normal outcome of a branch that pushes a different key
or call target on each arm — lost everything, widening whole access
sets to ⊤ even when the operand provably takes only two values.

This module generalizes the slot domain to a *bounded value set*:

``Const(v)`` ⊑ ``ValueSet({v₁..vₖ})`` ⊑ ``StridedInterval(lo,hi,s)`` ⊑ ⊤

* :class:`ValueSet` — a set of 2..``MAX_SET_SIZE`` exact constants
  (ints or symbols).  Joins stay exact while small.
* :class:`StridedInterval` — when a pure-int set outgrows the set
  bound, it widens to the sparsest arithmetic progression containing
  it (``lo + i·stride ≤ hi``; stride is the gcd of the offsets, so the
  interval is the tightest sound superset in this family).  The
  progression is capped at ``MAX_INTERVAL_COUNT`` members, after which
  the value widens to ⊤.
* ⊤ — unknown, as before.

Termination: every join either returns the left operand unchanged or
strictly grows the concretization.  A ``ValueSet`` grows at most
``MAX_SET_SIZE`` times; a ``StridedInterval``'s member count (≤
``MAX_INTERVAL_COUNT``) strictly increases on every non-trivial join
(widening the bounds or dividing the stride both add members); then ⊤.
Per-slot chains are therefore finite (≈75 steps), and the worklist
fixpoint in :mod:`repro.staticcheck.absint` converges.

Because interval membership is capped, *every* non-⊤ value has an
explicit finite element set (:func:`elements_of`), which keeps joins,
constant folding (cartesian products) and storage-key enumeration
simple and obviously sound.

Two lattice policies share this code: :data:`VALUESET_LATTICE` (the
default) and :data:`CONST_LATTICE`, which reproduces the PR 3 two-point
behaviour exactly (any join of distinct values → ⊤) for A/B precision
comparisons — ``repro.cli staticcheck --lattice const`` and the
``bench_static_conflict`` before/after numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Callable, Iterable, Union

from repro.staticcheck.lattice import TOP, Const, Top

#: Exact constant sets keep at most this many members before widening.
MAX_SET_SIZE = 8

#: A strided interval covers at most this many members before ⊤.
MAX_INTERVAL_COUNT = 64

#: Storage-key enumeration gives up beyond this many predicted keys —
#: a 64-key prediction would conflict with nearly everything anyway, so
#: the per-address wildcard (⊤) is the better, cheaper approximation.
MAX_ENUMERATED_KEYS = 16

#: Constant folding expands cartesian products up to this many pairs.
MAX_FOLD_ELEMENTS = 64

Concrete = Union[int, str]


@dataclass(frozen=True)
class ValueSet:
    """A set of 2..``MAX_SET_SIZE`` exact constant values."""

    values: frozenset[Concrete]


@dataclass(frozen=True)
class StridedInterval:
    """Ints ``{lo, lo+stride, ..., hi}`` — a widened all-int set."""

    lo: int
    hi: int
    stride: int

    @property
    def count(self) -> int:
        return (self.hi - self.lo) // self.stride + 1


#: One abstract stack slot under the value-set domain.
Value = Union[Const, ValueSet, StridedInterval, Top]

#: An abstract stack: known slots bottom-to-top, or None for
#: unknown height (same convention as ``lattice.StackState``).
ValueStack = Union[tuple[Value, ...], None]


def from_values(values: Iterable[Concrete]) -> Value:
    """The smallest lattice element covering *values* (canonical form)."""
    concrete = frozenset(values)
    if not concrete:
        return TOP
    if len(concrete) == 1:
        (only,) = concrete
        return Const(only)
    if len(concrete) <= MAX_SET_SIZE:
        return ValueSet(concrete)
    ints = sorted(v for v in concrete if isinstance(v, int))
    if len(ints) != len(concrete):
        return TOP  # symbols do not embed in an arithmetic progression
    lo, hi = ints[0], ints[-1]
    stride = 0
    for v in ints[1:]:
        stride = gcd(stride, v - lo)
    if stride == 0:  # pragma: no cover - >=2 distinct ints imply stride>0
        return TOP
    if (hi - lo) // stride + 1 > MAX_INTERVAL_COUNT:
        return TOP
    return StridedInterval(lo=lo, hi=hi, stride=stride)


def elements_of(value: Value) -> frozenset[Concrete] | None:
    """The finite concretization of *value*, or None for ⊤."""
    if isinstance(value, Const):
        return frozenset((value.value,))
    if isinstance(value, ValueSet):
        return value.values
    if isinstance(value, StridedInterval):
        return frozenset(range(value.lo, value.hi + 1, value.stride))
    return None


def _int_elements(value: Value) -> frozenset[int] | None:
    """All-int concretization, or None if ⊤ or any symbol member."""
    elements = elements_of(value)
    if elements is None:
        return None
    ints = frozenset(v for v in elements if isinstance(v, int))
    if len(ints) != len(elements):
        return None
    return ints


@dataclass(frozen=True)
class ValueLattice:
    """One slot-domain policy threaded through the interpreter.

    ``exact_only=True`` reproduces the PR 3 Const/⊤ lattice: a join of
    two distinct values goes straight to ⊤ and only single constants
    resolve keys.  ``exact_only=False`` is the bounded value-set domain
    documented in the module docstring.
    """

    name: str
    exact_only: bool

    # -- lattice operations -------------------------------------------------

    def join(self, a: Value, b: Value) -> Value:
        if a == b:
            return a
        if isinstance(a, Top) or isinstance(b, Top):
            return TOP
        if self.exact_only:
            return TOP
        left = elements_of(a)
        right = elements_of(b)
        if left is None or right is None:  # pragma: no cover - Top handled
            return TOP
        return from_values(left | right)

    def join_stacks(self, a: ValueStack, b: ValueStack) -> ValueStack:
        """Slot-wise join; mismatched heights widen to unknown."""
        if a is None or b is None or len(a) != len(b):
            return None
        return tuple(self.join(x, y) for x, y in zip(a, b))

    # -- transfer functions -------------------------------------------------

    def fold(
        self,
        fold_fn: Callable[[int, int], int],
        lhs: Value,
        rhs: Value,
    ) -> Value:
        """Binary arithmetic over the cartesian product of int members."""
        left = _int_elements(lhs)
        right = _int_elements(rhs)
        if left is None or right is None:
            return TOP
        if len(left) * len(right) > MAX_FOLD_ELEMENTS:
            return TOP
        return from_values(
            fold_fn(a, b) for a in left for b in right
        )

    def iszero(self, value: Value) -> Value:
        elements = _int_elements(value)
        if elements is None:
            return TOP
        return from_values(1 if v == 0 else 0 for v in elements)

    def branch(self, condition: Value) -> bool | None:
        """JUMPI decision: True = jump, False = fall through, None = both."""
        elements = _int_elements(condition)
        if elements is None:
            return None
        truth = {v != 0 for v in elements}
        if len(truth) != 1:
            return None
        return truth.pop()

    def enumerate_keys(self, value: Value) -> tuple[str, ...] | None:
        """The concrete storage keys / addresses *value* can denote.

        None means the access site widens to ⊤.  Under ``exact_only``
        nothing but a single constant resolves (PR 3 behaviour); the
        value-set lattice enumerates small sets and short intervals.
        """
        if isinstance(value, Const):
            return (str(value.value),)
        if self.exact_only:
            return None
        if isinstance(value, ValueSet):
            return tuple(sorted(str(v) for v in value.values))
        if (
            isinstance(value, StridedInterval)
            and value.count <= MAX_ENUMERATED_KEYS
        ):
            return tuple(
                str(v) for v in range(value.lo, value.hi + 1, value.stride)
            )
        return None


CONST_LATTICE = ValueLattice(name="const", exact_only=True)
VALUESET_LATTICE = ValueLattice(name="valueset", exact_only=False)

LATTICES: dict[str, ValueLattice] = {
    CONST_LATTICE.name: CONST_LATTICE,
    VALUESET_LATTICE.name: VALUESET_LATTICE,
}

#: The lattice every analysis entry point defaults to.
DEFAULT_LATTICE = VALUESET_LATTICE.name


def get_lattice(lattice: "str | ValueLattice") -> ValueLattice:
    """Resolve a lattice policy by name (or pass one through)."""
    if isinstance(lattice, ValueLattice):
        return lattice
    try:
        return LATTICES[lattice]
    except KeyError:
        known = ", ".join(sorted(LATTICES))
        raise ValueError(
            f"unknown lattice {lattice!r}; known lattices: {known}"
        ) from None


__all__ = [
    "CONST_LATTICE",
    "DEFAULT_LATTICE",
    "LATTICES",
    "MAX_ENUMERATED_KEYS",
    "MAX_FOLD_ELEMENTS",
    "MAX_INTERVAL_COUNT",
    "MAX_SET_SIZE",
    "VALUESET_LATTICE",
    "Concrete",
    "StridedInterval",
    "Value",
    "ValueLattice",
    "ValueSet",
    "ValueStack",
    "elements_of",
    "from_values",
    "get_lattice",
]
