"""Analyzer diagnostics: typed findings attached to program points."""

from __future__ import annotations

from dataclasses import dataclass

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

# Diagnostic codes.  Errors describe programs that are guaranteed to
# fault if the flagged instruction is reached; warnings describe code
# the analyzer proved dead or could not analyze precisely.
JUMP_RANGE = "jump-range"          # error: target pc outside the program
STACK_UNDERFLOW = "stack-underflow"  # error: pop with provably empty stack
UNREACHABLE = "unreachable"        # warning: no path reaches these pcs
TOP_WIDENED = "top-widened"        # warning: access set widened to ⊤


@dataclass(frozen=True)
class Diagnostic:
    """One finding at a program counter."""

    pc: int
    severity: str
    code: str
    message: str

    def __post_init__(self) -> None:
        if self.severity not in (SEVERITY_ERROR, SEVERITY_WARNING):
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def is_error(self) -> bool:
        return self.severity == SEVERITY_ERROR

    def render(self) -> str:
        return f"pc {self.pc}: {self.severity}: {self.message}"
