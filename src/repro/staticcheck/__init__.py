"""Static read/write-set analysis of contract bytecode.

An abstract interpreter over the mini-VM instruction set
(:mod:`repro.vm.opcodes`) that computes a **sound over-approximation**
of each program's storage keys, balance reads and call targets without
executing it.  The pipeline is:

1. :mod:`repro.staticcheck.cfg` — basic blocks and control-flow edges
   from the statically-known ``JUMP``/``JUMPI`` targets;
2. :mod:`repro.staticcheck.absint` — constant propagation through the
   stack ops, widening any non-constant dynamic operand to ⊤ ("may
   touch anything in scope"), plus diagnostics (unreachable code,
   guaranteed stack underflow, out-of-range jumps, ⊤-widened sets);
3. :mod:`repro.staticcheck.interproc` — closes the per-program access
   sets over the :class:`~repro.vm.contract.CodeRegistry` call graph
   (``CALL``/``TRANSFER``, including proxy chains);
4. :mod:`repro.staticcheck.predict` — lifts closed access sets to
   per-transaction predicted read/write sets in the vocabulary of
   :func:`repro.execution.engine.tasks_from_account_block`, yielding a
   *statically predicted* TDG;
5. :mod:`repro.staticcheck.lint` — per-contract diagnostics for the
   ``repro.cli staticcheck`` subcommand.

Soundness invariant (property-tested in ``tests/staticcheck``): for any
program and any execution, the dynamically traced access set is a
subset of the statically computed one.  See ``docs/static_analysis.md``
for the design and the paper's ``K``-cost interpretation.
"""

from repro.staticcheck.absint import CallSite, ProgramSummary, analyze_program
from repro.staticcheck.cfg import CFG, BasicBlock, build_cfg
from repro.staticcheck.incremental import (
    CacheStats,
    IncrementalAnalyzer,
    program_digest,
)
from repro.staticcheck.diagnostics import (
    JUMP_RANGE,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    STACK_UNDERFLOW,
    TOP_WIDENED,
    UNREACHABLE,
    Diagnostic,
)
from repro.staticcheck.interproc import (
    ClosedAccess,
    ContractAnalyzer,
    code_bindings,
    known_call_targets,
    local_access,
)
from repro.staticcheck.lattice import TOP, Const, MaySet, Top
from repro.staticcheck.lint import (
    ContractReport,
    LintReport,
    lint_registry,
    render_lint_report,
)
from repro.staticcheck.predict import (
    AccessAnalyzer,
    PredictedAccess,
    expanded_tasks,
    predict_block,
    predict_transaction,
    predict_utxo_block,
    predicted_conflicts,
    predicted_tdg,
)
from repro.staticcheck.valueset import (
    CONST_LATTICE,
    DEFAULT_LATTICE,
    LATTICES,
    VALUESET_LATTICE,
    StridedInterval,
    ValueLattice,
    ValueSet,
    elements_of,
    from_values,
    get_lattice,
)

__all__ = [
    "AccessAnalyzer",
    "CFG",
    "CONST_LATTICE",
    "BasicBlock",
    "CacheStats",
    "CallSite",
    "ClosedAccess",
    "Const",
    "ContractAnalyzer",
    "ContractReport",
    "DEFAULT_LATTICE",
    "Diagnostic",
    "IncrementalAnalyzer",
    "JUMP_RANGE",
    "LATTICES",
    "LintReport",
    "MaySet",
    "PredictedAccess",
    "ProgramSummary",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "STACK_UNDERFLOW",
    "StridedInterval",
    "TOP",
    "TOP_WIDENED",
    "Top",
    "UNREACHABLE",
    "VALUESET_LATTICE",
    "ValueLattice",
    "ValueSet",
    "analyze_program",
    "build_cfg",
    "code_bindings",
    "elements_of",
    "expanded_tasks",
    "from_values",
    "get_lattice",
    "known_call_targets",
    "lint_registry",
    "local_access",
    "predict_block",
    "predict_transaction",
    "predict_utxo_block",
    "predicted_conflicts",
    "predicted_tdg",
    "render_lint_report",
]
