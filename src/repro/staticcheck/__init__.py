"""Static read/write-set analysis of contract bytecode.

An abstract interpreter over the mini-VM instruction set
(:mod:`repro.vm.opcodes`) that computes a **sound over-approximation**
of each program's storage keys, balance reads and call targets without
executing it.  The pipeline is:

1. :mod:`repro.staticcheck.cfg` — basic blocks and control-flow edges
   from the statically-known ``JUMP``/``JUMPI`` targets;
2. :mod:`repro.staticcheck.absint` — constant propagation through the
   stack ops, widening any non-constant dynamic operand to ⊤ ("may
   touch anything in scope"), plus diagnostics (unreachable code,
   guaranteed stack underflow, out-of-range jumps, ⊤-widened sets);
3. :mod:`repro.staticcheck.interproc` — closes the per-program access
   sets over the :class:`~repro.vm.contract.CodeRegistry` call graph
   (``CALL``/``TRANSFER``, including proxy chains);
4. :mod:`repro.staticcheck.predict` — lifts closed access sets to
   per-transaction predicted read/write sets in the vocabulary of
   :func:`repro.execution.engine.tasks_from_account_block`, yielding a
   *statically predicted* TDG;
5. :mod:`repro.staticcheck.lint` — per-contract diagnostics for the
   ``repro.cli staticcheck`` subcommand.

Soundness invariant (property-tested in ``tests/staticcheck``): for any
program and any execution, the dynamically traced access set is a
subset of the statically computed one.  See ``docs/static_analysis.md``
for the design and the paper's ``K``-cost interpretation.
"""

from repro.staticcheck.absint import CallSite, ProgramSummary, analyze_program
from repro.staticcheck.cfg import CFG, BasicBlock, build_cfg
from repro.staticcheck.diagnostics import (
    JUMP_RANGE,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    STACK_UNDERFLOW,
    TOP_WIDENED,
    UNREACHABLE,
    Diagnostic,
)
from repro.staticcheck.interproc import (
    ClosedAccess,
    ContractAnalyzer,
    code_bindings,
)
from repro.staticcheck.lattice import TOP, Const, MaySet, Top
from repro.staticcheck.lint import (
    ContractReport,
    LintReport,
    lint_registry,
    render_lint_report,
)
from repro.staticcheck.predict import (
    PredictedAccess,
    expanded_tasks,
    predict_block,
    predict_transaction,
    predicted_conflicts,
    predicted_tdg,
)

__all__ = [
    "CFG",
    "BasicBlock",
    "CallSite",
    "ClosedAccess",
    "Const",
    "ContractAnalyzer",
    "ContractReport",
    "Diagnostic",
    "JUMP_RANGE",
    "LintReport",
    "MaySet",
    "PredictedAccess",
    "ProgramSummary",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "STACK_UNDERFLOW",
    "TOP",
    "TOP_WIDENED",
    "Top",
    "UNREACHABLE",
    "analyze_program",
    "build_cfg",
    "code_bindings",
    "expanded_tasks",
    "lint_registry",
    "predict_block",
    "predict_transaction",
    "predicted_conflicts",
    "predicted_tdg",
    "render_lint_report",
]
