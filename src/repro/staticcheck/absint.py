"""Value-propagating abstract interpretation of one program.

The interpreter runs a classic worklist fixpoint over the CFG with an
abstract stack per basic-block entry, then replays each reachable block
once against its converged entry state to collect the program's access
summary and diagnostics.

Stack slots live in the bounded value-set lattice of
:mod:`repro.staticcheck.valueset` — ``Const ⊑ ValueSet ⊑
StridedInterval ⊑ ⊤`` — selected by the ``lattice`` argument
(``"valueset"`` by default; ``"const"`` reproduces the original
two-point Const/⊤ domain for A/B comparisons).

Widening rules (each has a dedicated unit test):

* joining distinct constants builds a :class:`ValueSet` of up to 8
  members, widens to a stride/interval superset while the member count
  stays ≤ 64, then goes to ⊤ (under ``--lattice const`` any join of
  distinct values goes straight to ⊤);
* joining stacks of different heights → unknown stack (every later pop
  yields ⊤ and underflow can no longer be proven);
* a dynamic (``$``) storage key / balance address that does not
  enumerate to finitely many keys at the access site → the
  corresponding key set widens to ⊤;
* a dynamic call target that does not enumerate → the call-target set
  widens to ⊤ (interprocedurally: "any contract may run");
* arithmetic folds the cartesian product of finite int operand sets
  (≤ 64 pairs), otherwise ⊤;
* a ``JUMPI`` on a condition whose members are not uniformly zero or
  uniformly nonzero → both successors feasible (a decided condition
  prunes the dead branch, which is what makes constant-false guards
  produce *unreachable code* findings).

Soundness: every concrete execution path is covered by some abstract
path, so the dynamic access set of any run is a subset of the summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.staticcheck.cfg import BasicBlock, build_cfg
from repro.staticcheck.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    STACK_UNDERFLOW,
    TOP_WIDENED,
    UNREACHABLE,
    Diagnostic,
)
from repro.staticcheck.lattice import TOP, Const, MaySet
from repro.staticcheck.valueset import (
    DEFAULT_LATTICE,
    Value,
    ValueLattice,
    ValueStack,
    get_lattice,
)
from repro.vm.contract import Program
from repro.vm.opcodes import STACK_OPERAND, Instruction, Op

# Per-slot join chains are ~75 steps deep under the value-set lattice
# (8 exact members, then ≤64 interval members, then ⊤), so a fuzzed
# 25-instruction loop nest can legitimately take tens of thousands of
# worklist pops to converge.  The guard only exists to turn a genuine
# non-termination bug into a loud error instead of a hang.
_MAX_FIXPOINT_PASSES = 200_000


@dataclass(frozen=True)
class CallSite:
    """One ``CALL``/``TRANSFER`` site; ``targets=None`` means ⊤.

    ``target`` keeps the single-target view (None unless the site
    resolves to exactly one address); ``targets`` carries the full
    value-set resolution — a tuple of candidate addresses, or None when
    the target widened to ⊤.  Constructing a site with only ``target``
    derives ``targets`` automatically, so PR 3-era call sites behave
    unchanged.
    """

    pc: int
    kind: str  # "call" | "transfer"
    target: str | None
    value: int
    targets: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.targets is None and self.target is not None:
            object.__setattr__(self, "targets", (self.target,))

    @property
    def is_call(self) -> bool:
        return self.kind == "call"


@dataclass(frozen=True)
class ProgramSummary:
    """Sound over-approximation of one program's side effects."""

    num_instructions: int
    storage_reads: MaySet
    storage_writes: MaySet
    balance_reads: MaySet
    calls: tuple[CallSite, ...]
    diagnostics: tuple[Diagnostic, ...]
    #: pcs of dynamic (``$``) operands that widened to ⊤ / resolved to
    #: finitely many keys.  Disjoint; static operands count as neither.
    widened_sites: frozenset[int] = frozenset()
    resolved_sites: frozenset[int] = frozenset()

    @property
    def has_unknown_call_target(self) -> bool:
        return any(site.targets is None for site in self.calls)

    @property
    def has_unknown_transfer_target(self) -> bool:
        return any(
            site.targets is None and not site.is_call for site in self.calls
        )

    @property
    def top_widened(self) -> bool:
        """Did any access set widen to ⊤?"""
        return (
            self.storage_reads.top
            or self.storage_writes.top
            or self.balance_reads.top
            or self.has_unknown_call_target
        )

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.is_error)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if not d.is_error)


@dataclass
class _Effects:
    """Accumulator used by the final replay pass."""

    storage_reads: MaySet = field(default_factory=MaySet)
    storage_writes: MaySet = field(default_factory=MaySet)
    balance_reads: MaySet = field(default_factory=MaySet)
    calls: dict[int, CallSite] = field(default_factory=dict)
    diagnostics: dict[tuple[int, str], Diagnostic] = field(
        default_factory=dict
    )
    executed_pcs: set[int] = field(default_factory=set)
    widened_sites: set[int] = field(default_factory=set)
    resolved_sites: set[int] = field(default_factory=set)

    def diagnose(
        self, pc: int, severity: str, code: str, message: str
    ) -> None:
        self.diagnostics.setdefault(
            (pc, code),
            Diagnostic(pc=pc, severity=severity, code=code, message=message),
        )


class _Halt(Exception):
    """Internal: abstract execution of this path stops here."""


_BINARY_OPS = (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.LT, Op.EQ)


def _fold(op: Op, lhs: int, rhs: int) -> int:
    """Constant-fold a binary op with the VM's exact semantics."""
    if op is Op.ADD:
        return lhs + rhs
    if op is Op.SUB:
        return lhs - rhs
    if op is Op.MUL:
        return lhs * rhs
    if op is Op.DIV:
        return lhs // rhs if rhs != 0 else 0
    if op is Op.LT:
        return 1 if lhs < rhs else 0
    if op is Op.EQ:
        return 1 if lhs == rhs else 0
    raise AssertionError(f"not a binary op: {op!r}")


class _AbstractFrame:
    """Mutable abstract stack with underflow tracking for one path."""

    def __init__(self, state: ValueStack, effects: _Effects | None):
        self.known: list[Value] | None = (
            None if state is None else list(state)
        )
        self.effects = effects

    def snapshot(self) -> ValueStack:
        return None if self.known is None else tuple(self.known)

    def push(self, value: Value) -> None:
        if self.known is not None:
            self.known.append(value)

    def pop(self, pc: int, needed: int = 1) -> list[Value]:
        """Pop *needed* slots; ⊤ for each slot of an unknown stack.

        Raises :class:`_Halt` on a *provable* underflow: the stack
        height is exact here (all paths agree), so the VM is guaranteed
        to raise ``VMError`` if this pc is ever reached.
        """
        if self.known is None:
            return [TOP] * needed
        if len(self.known) < needed:
            if self.effects is not None:
                self.effects.diagnose(
                    pc,
                    SEVERITY_ERROR,
                    STACK_UNDERFLOW,
                    f"guaranteed stack underflow (needs {needed} operand"
                    f"{'s' if needed > 1 else ''}, stack has "
                    f"{len(self.known)})",
                )
            raise _Halt
        taken = self.known[-needed:][::-1]
        del self.known[-needed:]
        return taken

    def peek_ok(self, needed: int) -> bool:
        return self.known is None or len(self.known) >= needed


def _resolve_keys(
    operand: object,
    frame: _AbstractFrame,
    pc: int,
    what: str,
    lattice: ValueLattice,
) -> tuple[str, ...] | None:
    """A static or ``$`` operand as concrete key(s), or None for ⊤.

    Static operands resolve to their single key.  ``$`` operands pop
    the abstract stack and enumerate the popped value's members —
    one key under the const lattice, up to
    :data:`~repro.staticcheck.valueset.MAX_ENUMERATED_KEYS` under the
    value-set lattice.  Each ``$`` site is tallied as resolved or
    ⊤-widened exactly once (the lint surfaces the counts).
    """
    if operand != STACK_OPERAND:
        return (str(operand),)
    (value,) = frame.pop(pc)
    keys = lattice.enumerate_keys(value)
    if keys is not None:
        if frame.effects is not None:
            frame.effects.resolved_sites.add(pc)
        return keys
    if frame.effects is not None:
        frame.effects.widened_sites.add(pc)
        frame.effects.diagnose(
            pc,
            SEVERITY_WARNING,
            TOP_WIDENED,
            f"dynamic {what} is not a constant; access set widened to ⊤",
        )
    return None


def _step_block(
    program: Program,
    block: BasicBlock,
    entry: ValueStack,
    effects: _Effects | None,
    lattice: ValueLattice,
) -> list[tuple[int, ValueStack]]:
    """Abstractly execute *block* from *entry*; return successor states."""
    frame = _AbstractFrame(entry, effects)
    for pc in range(block.start, block.end):
        instruction = program[pc]
        if effects is not None:
            effects.executed_pcs.add(pc)
        op = instruction.op
        try:
            if op in (Op.STOP, Op.REVERT):
                return []
            if op is Op.PUSH:
                operand = instruction.operand
                frame.push(
                    Const(operand)
                    if isinstance(operand, (int, str))
                    else TOP
                )
            elif op is Op.POP:
                frame.pop(pc)
            elif op is Op.DUP:
                if not frame.peek_ok(1):
                    frame.pop(pc)  # raises with the underflow diagnostic
                if frame.known is not None:
                    frame.push(frame.known[-1])
            elif op is Op.SWAP:
                rhs, lhs = frame.pop(pc, 2)
                frame.push(rhs)
                frame.push(lhs)
            elif op in _BINARY_OPS:
                rhs, lhs = frame.pop(pc, 2)
                # Non-int members would fault at run time; folding only
                # the int cartesian product (or widening to ⊤) keeps the
                # access set a sound over-approximation.
                def fold_pair(a: int, b: int, _op: Op = op) -> int:
                    return _fold(_op, a, b)

                frame.push(lattice.fold(fold_pair, lhs, rhs))
            elif op is Op.ISZERO:
                (value,) = frame.pop(pc)
                frame.push(lattice.iszero(value))
            elif op is Op.JUMP:
                if block.successors:
                    return [(block.successors[0], frame.snapshot())]
                return []  # out-of-range target: the VM faults here
            elif op is Op.JUMPI:
                (condition,) = frame.pop(pc)
                state = frame.snapshot()
                target = _jumpi_target(instruction, program)
                fall = pc + 1 if pc + 1 < len(program) else None
                decision = lattice.branch(condition)
                if decision is not None:
                    chosen = target if decision else fall
                    return [] if chosen is None else [(chosen, state)]
                successors: list[tuple[int, ValueStack]] = []
                if target is not None:
                    successors.append((target, state))
                if fall is not None:
                    successors.append((fall, state))
                return successors
            elif op is Op.SLOAD:
                keys = _resolve_keys(
                    instruction.operand, frame, pc, "storage key", lattice
                )
                if effects is not None:
                    effects.storage_reads = _widen_or_add(
                        effects.storage_reads, keys
                    )
                frame.push(TOP)  # storage contents are unknown statically
            elif op is Op.SSTORE:
                keys = _resolve_keys(
                    instruction.operand, frame, pc, "storage key", lattice
                )
                frame.pop(pc)  # the stored value
                if effects is not None:
                    effects.storage_writes = _widen_or_add(
                        effects.storage_writes, keys
                    )
            elif op is Op.BALANCE:
                addresses = _resolve_keys(
                    instruction.operand, frame, pc, "balance address",
                    lattice,
                )
                if effects is not None:
                    effects.balance_reads = _widen_or_add(
                        effects.balance_reads, addresses
                    )
                frame.push(TOP)
            elif op in (Op.CALL, Op.TRANSFER):
                operand = instruction.operand
                if isinstance(operand, tuple) and len(operand) == 2:
                    raw_target, value = operand
                else:  # malformed hand-built operand: stay total, widen
                    raw_target, value = None, 0
                targets = (
                    _resolve_keys(
                        raw_target, frame, pc, "call target", lattice
                    )
                    if raw_target is not None
                    else None
                )
                if effects is not None:
                    effects.calls[pc] = CallSite(
                        pc=pc,
                        kind="call" if op is Op.CALL else "transfer",
                        target=(
                            targets[0]
                            if targets is not None and len(targets) == 1
                            else None
                        ),
                        value=int(value),
                        targets=targets,
                    )
            elif op is Op.LOG:
                frame.pop(pc)
            else:  # pragma: no cover - enum is exhaustive
                raise AssertionError(f"unhandled opcode {op!r}")
        except _Halt:
            return []
    # Fell through to the next leader (or off the end of the program).
    if block.successors:
        return [(block.successors[0], frame.snapshot())]
    return []


def _widen_or_add(may_set: MaySet, keys: tuple[str, ...] | None) -> MaySet:
    """Add every resolved key to *may_set*, or widen it on ⊤."""
    if keys is None:
        return may_set.widen()
    for key in keys:
        may_set = may_set.add(key)
    return may_set


def _jumpi_target(instruction: Instruction, program: Program) -> int | None:
    operand = instruction.operand
    if isinstance(operand, int) and 0 <= operand < len(program):
        return operand
    return None


def analyze_program(
    program: Program,
    *,
    lattice: "str | ValueLattice" = DEFAULT_LATTICE,
) -> ProgramSummary:
    """Compute the sound access summary and diagnostics of *program*."""
    domain = get_lattice(lattice)
    cfg = build_cfg(program)
    entry_states: dict[int, ValueStack] = {}
    blocks_by_start = {block.start: block for block in cfg.blocks}

    if cfg.blocks:
        entry_states[0] = ()
        worklist: list[int] = [0]
        passes = 0
        while worklist:
            passes += 1
            if passes > _MAX_FIXPOINT_PASSES:  # pragma: no cover - guard
                raise RuntimeError("abstract interpretation diverged")
            start = worklist.pop()
            block = blocks_by_start[start]
            for successor, state in _step_block(
                program, block, entry_states[start], None, domain
            ):
                if successor not in entry_states:
                    entry_states[successor] = state
                    worklist.append(successor)
                else:
                    joined = domain.join_stacks(
                        entry_states[successor], state
                    )
                    if joined != entry_states[successor]:
                        entry_states[successor] = joined
                        worklist.append(successor)

    # Replay each reachable block once against its converged entry
    # state, collecting accesses and per-pc diagnostics.
    effects = _Effects()
    for start in sorted(entry_states):
        _step_block(
            program, blocks_by_start[start], entry_states[start], effects,
            domain,
        )

    for diagnostic in cfg.diagnostics:
        # Out-of-range jumps are errors only where reachable; in dead
        # code they are subsumed by the unreachable-code warning.
        if diagnostic.pc in effects.executed_pcs:
            effects.diagnostics.setdefault(
                (diagnostic.pc, diagnostic.code), diagnostic
            )

    _diagnose_unreachable(len(program), effects)

    diagnostics = tuple(
        sorted(
            effects.diagnostics.values(),
            key=lambda d: (d.pc, d.severity, d.code),
        )
    )
    summary = ProgramSummary(
        num_instructions=len(program),
        storage_reads=effects.storage_reads,
        storage_writes=effects.storage_writes,
        balance_reads=effects.balance_reads,
        calls=tuple(
            effects.calls[pc] for pc in sorted(effects.calls)
        ),
        diagnostics=diagnostics,
        widened_sites=frozenset(effects.widened_sites),
        resolved_sites=frozenset(effects.resolved_sites),
    )
    if obs.enabled():
        obs.counter("staticcheck.programs").inc()
        obs.counter("staticcheck.instructions").inc(len(program))
        if summary.top_widened:
            obs.counter("staticcheck.top_widened").inc()
        if summary.widened_sites:
            obs.counter("staticcheck.sites.widened").inc(
                len(summary.widened_sites)
            )
        if summary.resolved_sites:
            obs.counter("staticcheck.sites.resolved").inc(
                len(summary.resolved_sites)
            )
        for diagnostic in diagnostics:
            obs.counter(
                "staticcheck.diagnostics", severity=diagnostic.severity
            ).inc()
    return summary


def _diagnose_unreachable(length: int, effects: _Effects) -> None:
    """Coalesce never-executed pcs into per-run unreachable warnings."""
    run_start: int | None = None
    for pc in range(length + 1):
        dead = pc < length and pc not in effects.executed_pcs
        if dead and run_start is None:
            run_start = pc
        elif not dead and run_start is not None:
            count = pc - run_start
            effects.diagnose(
                run_start,
                SEVERITY_WARNING,
                UNREACHABLE,
                f"unreachable code ({count} instruction"
                f"{'s' if count > 1 else ''}, pc {run_start}"
                + (f"-{pc - 1}" if count > 1 else "")
                + ")",
            )
            run_start = None
