"""Constant-propagating abstract interpretation of one program.

The interpreter runs a classic worklist fixpoint over the CFG with an
abstract stack per basic-block entry (:data:`~repro.staticcheck.
lattice.StackState`), then replays each reachable block once against
its converged entry state to collect the program's access summary and
diagnostics.

Widening rules (each has a dedicated unit test):

* joining two different constants → ⊤;
* joining stacks of different heights → unknown stack (every later pop
  yields ⊤ and underflow can no longer be proven);
* a dynamic (``$``) storage key / balance address that is not a
  constant at the access site → the corresponding key set widens to ⊤;
* a dynamic call target that is not a constant → the call-target set
  widens to ⊤ (interprocedurally: "any contract may run");
* arithmetic on anything but two constant ints → ⊤ result;
* a ``JUMPI`` on a non-constant condition → both successors feasible
  (a constant condition prunes the dead branch, which is what makes
  constant-false guards produce *unreachable code* findings).

Soundness: every concrete execution path is covered by some abstract
path, so the dynamic access set of any run is a subset of the summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.staticcheck.cfg import BasicBlock, build_cfg
from repro.staticcheck.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    STACK_UNDERFLOW,
    TOP_WIDENED,
    UNREACHABLE,
    Diagnostic,
)
from repro.staticcheck.lattice import (
    TOP,
    AbstractValue,
    Const,
    MaySet,
    StackState,
    join_stack,
)
from repro.vm.contract import Program
from repro.vm.opcodes import STACK_OPERAND, Instruction, Op

_MAX_FIXPOINT_PASSES = 10_000


@dataclass(frozen=True)
class CallSite:
    """One ``CALL``/``TRANSFER`` site; ``target=None`` means ⊤."""

    pc: int
    kind: str  # "call" | "transfer"
    target: str | None
    value: int

    @property
    def is_call(self) -> bool:
        return self.kind == "call"


@dataclass(frozen=True)
class ProgramSummary:
    """Sound over-approximation of one program's side effects."""

    num_instructions: int
    storage_reads: MaySet
    storage_writes: MaySet
    balance_reads: MaySet
    calls: tuple[CallSite, ...]
    diagnostics: tuple[Diagnostic, ...]

    @property
    def has_unknown_call_target(self) -> bool:
        return any(site.target is None for site in self.calls)

    @property
    def has_unknown_transfer_target(self) -> bool:
        return any(
            site.target is None and not site.is_call for site in self.calls
        )

    @property
    def top_widened(self) -> bool:
        """Did any access set widen to ⊤?"""
        return (
            self.storage_reads.top
            or self.storage_writes.top
            or self.balance_reads.top
            or self.has_unknown_call_target
        )

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.is_error)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if not d.is_error)


@dataclass
class _Effects:
    """Accumulator used by the final replay pass."""

    storage_reads: MaySet = field(default_factory=MaySet)
    storage_writes: MaySet = field(default_factory=MaySet)
    balance_reads: MaySet = field(default_factory=MaySet)
    calls: dict[int, CallSite] = field(default_factory=dict)
    diagnostics: dict[tuple[int, str], Diagnostic] = field(
        default_factory=dict
    )
    executed_pcs: set[int] = field(default_factory=set)

    def diagnose(
        self, pc: int, severity: str, code: str, message: str
    ) -> None:
        self.diagnostics.setdefault(
            (pc, code),
            Diagnostic(pc=pc, severity=severity, code=code, message=message),
        )


class _Halt(Exception):
    """Internal: abstract execution of this path stops here."""


_BINARY_OPS = (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.LT, Op.EQ)


def _fold(op: Op, lhs: int, rhs: int) -> int:
    """Constant-fold a binary op with the VM's exact semantics."""
    if op is Op.ADD:
        return lhs + rhs
    if op is Op.SUB:
        return lhs - rhs
    if op is Op.MUL:
        return lhs * rhs
    if op is Op.DIV:
        return lhs // rhs if rhs != 0 else 0
    if op is Op.LT:
        return 1 if lhs < rhs else 0
    if op is Op.EQ:
        return 1 if lhs == rhs else 0
    raise AssertionError(f"not a binary op: {op!r}")


class _AbstractFrame:
    """Mutable abstract stack with underflow tracking for one path."""

    def __init__(self, state: StackState, effects: _Effects | None):
        self.known: list[AbstractValue] | None = (
            None if state is None else list(state)
        )
        self.effects = effects

    def snapshot(self) -> StackState:
        return None if self.known is None else tuple(self.known)

    def push(self, value: AbstractValue) -> None:
        if self.known is not None:
            self.known.append(value)

    def pop(self, pc: int, needed: int = 1) -> list[AbstractValue]:
        """Pop *needed* slots; ⊤ for each slot of an unknown stack.

        Raises :class:`_Halt` on a *provable* underflow: the stack
        height is exact here (all paths agree), so the VM is guaranteed
        to raise ``VMError`` if this pc is ever reached.
        """
        if self.known is None:
            return [TOP] * needed
        if len(self.known) < needed:
            if self.effects is not None:
                self.effects.diagnose(
                    pc,
                    SEVERITY_ERROR,
                    STACK_UNDERFLOW,
                    f"guaranteed stack underflow (needs {needed} operand"
                    f"{'s' if needed > 1 else ''}, stack has "
                    f"{len(self.known)})",
                )
            raise _Halt
        taken = self.known[-needed:][::-1]
        del self.known[-needed:]
        return taken

    def peek_ok(self, needed: int) -> bool:
        return self.known is None or len(self.known) >= needed


def _resolve_key(
    operand: object,
    frame: _AbstractFrame,
    pc: int,
    what: str,
) -> str | None:
    """A static or ``$`` operand as a concrete key, or None for ⊤."""
    if operand != STACK_OPERAND:
        return str(operand)
    (value,) = frame.pop(pc)
    if isinstance(value, Const):
        return str(value.value)
    if frame.effects is not None:
        frame.effects.diagnose(
            pc,
            SEVERITY_WARNING,
            TOP_WIDENED,
            f"dynamic {what} is not a constant; access set widened to ⊤",
        )
    return None


def _step_block(
    program: Program,
    block: BasicBlock,
    entry: StackState,
    effects: _Effects | None,
) -> list[tuple[int, StackState]]:
    """Abstractly execute *block* from *entry*; return successor states."""
    frame = _AbstractFrame(entry, effects)
    for pc in range(block.start, block.end):
        instruction = program[pc]
        if effects is not None:
            effects.executed_pcs.add(pc)
        op = instruction.op
        try:
            if op in (Op.STOP, Op.REVERT):
                return []
            if op is Op.PUSH:
                operand = instruction.operand
                frame.push(
                    Const(operand)
                    if isinstance(operand, (int, str))
                    else TOP
                )
            elif op is Op.POP:
                frame.pop(pc)
            elif op is Op.DUP:
                if not frame.peek_ok(1):
                    frame.pop(pc)  # raises with the underflow diagnostic
                if frame.known is not None:
                    frame.push(frame.known[-1])
            elif op is Op.SWAP:
                rhs, lhs = frame.pop(pc, 2)
                frame.push(rhs)
                frame.push(lhs)
            elif op in _BINARY_OPS:
                rhs, lhs = frame.pop(pc, 2)
                if (
                    isinstance(lhs, Const)
                    and isinstance(rhs, Const)
                    and isinstance(lhs.value, int)
                    and isinstance(rhs.value, int)
                ):
                    frame.push(Const(_fold(op, lhs.value, rhs.value)))
                else:
                    # Non-int constants would fault at run time; pushing
                    # ⊤ and continuing only widens the access set.
                    frame.push(TOP)
            elif op is Op.ISZERO:
                (value,) = frame.pop(pc)
                if isinstance(value, Const) and isinstance(value.value, int):
                    frame.push(Const(1 if value.value == 0 else 0))
                else:
                    frame.push(TOP)
            elif op is Op.JUMP:
                if block.successors:
                    return [(block.successors[0], frame.snapshot())]
                return []  # out-of-range target: the VM faults here
            elif op is Op.JUMPI:
                (condition,) = frame.pop(pc)
                state = frame.snapshot()
                target = _jumpi_target(instruction, program)
                fall = pc + 1 if pc + 1 < len(program) else None
                if isinstance(condition, Const) and isinstance(
                    condition.value, int
                ):
                    chosen = target if condition.value != 0 else fall
                    return [] if chosen is None else [(chosen, state)]
                successors: list[tuple[int, StackState]] = []
                if target is not None:
                    successors.append((target, state))
                if fall is not None:
                    successors.append((fall, state))
                return successors
            elif op is Op.SLOAD:
                key = _resolve_key(
                    instruction.operand, frame, pc, "storage key"
                )
                if effects is not None:
                    effects.storage_reads = (
                        effects.storage_reads.add(key)
                        if key is not None
                        else effects.storage_reads.widen()
                    )
                frame.push(TOP)  # storage contents are unknown statically
            elif op is Op.SSTORE:
                key = _resolve_key(
                    instruction.operand, frame, pc, "storage key"
                )
                frame.pop(pc)  # the stored value
                if effects is not None:
                    effects.storage_writes = (
                        effects.storage_writes.add(key)
                        if key is not None
                        else effects.storage_writes.widen()
                    )
            elif op is Op.BALANCE:
                address = _resolve_key(
                    instruction.operand, frame, pc, "balance address"
                )
                if effects is not None:
                    effects.balance_reads = (
                        effects.balance_reads.add(address)
                        if address is not None
                        else effects.balance_reads.widen()
                    )
                frame.push(TOP)
            elif op in (Op.CALL, Op.TRANSFER):
                operand = instruction.operand
                if isinstance(operand, tuple) and len(operand) == 2:
                    raw_target, value = operand
                else:  # malformed hand-built operand: stay total, widen
                    raw_target, value = None, 0
                target = (
                    _resolve_key(raw_target, frame, pc, "call target")
                    if raw_target is not None
                    else None
                )
                if effects is not None:
                    effects.calls[pc] = CallSite(
                        pc=pc,
                        kind="call" if op is Op.CALL else "transfer",
                        target=target,
                        value=int(value),
                    )
            elif op is Op.LOG:
                frame.pop(pc)
            else:  # pragma: no cover - enum is exhaustive
                raise AssertionError(f"unhandled opcode {op!r}")
        except _Halt:
            return []
    # Fell through to the next leader (or off the end of the program).
    if block.successors:
        return [(block.successors[0], frame.snapshot())]
    return []


def _jumpi_target(instruction: Instruction, program: Program) -> int | None:
    operand = instruction.operand
    if isinstance(operand, int) and 0 <= operand < len(program):
        return operand
    return None


def analyze_program(program: Program) -> ProgramSummary:
    """Compute the sound access summary and diagnostics of *program*."""
    cfg = build_cfg(program)
    entry_states: dict[int, StackState] = {}
    blocks_by_start = {block.start: block for block in cfg.blocks}

    if cfg.blocks:
        entry_states[0] = ()
        worklist: list[int] = [0]
        passes = 0
        while worklist:
            passes += 1
            if passes > _MAX_FIXPOINT_PASSES:  # pragma: no cover - guard
                raise RuntimeError("abstract interpretation diverged")
            start = worklist.pop()
            block = blocks_by_start[start]
            for successor, state in _step_block(
                program, block, entry_states[start], effects=None
            ):
                if successor not in entry_states:
                    entry_states[successor] = state
                    worklist.append(successor)
                else:
                    joined = join_stack(entry_states[successor], state)
                    if joined != entry_states[successor]:
                        entry_states[successor] = joined
                        worklist.append(successor)

    # Replay each reachable block once against its converged entry
    # state, collecting accesses and per-pc diagnostics.
    effects = _Effects()
    for start in sorted(entry_states):
        _step_block(
            program, blocks_by_start[start], entry_states[start], effects
        )

    for diagnostic in cfg.diagnostics:
        # Out-of-range jumps are errors only where reachable; in dead
        # code they are subsumed by the unreachable-code warning.
        if diagnostic.pc in effects.executed_pcs:
            effects.diagnostics.setdefault(
                (diagnostic.pc, diagnostic.code), diagnostic
            )

    _diagnose_unreachable(len(program), effects)

    diagnostics = tuple(
        sorted(
            effects.diagnostics.values(),
            key=lambda d: (d.pc, d.severity, d.code),
        )
    )
    summary = ProgramSummary(
        num_instructions=len(program),
        storage_reads=effects.storage_reads,
        storage_writes=effects.storage_writes,
        balance_reads=effects.balance_reads,
        calls=tuple(
            effects.calls[pc] for pc in sorted(effects.calls)
        ),
        diagnostics=diagnostics,
    )
    if obs.enabled():
        obs.counter("staticcheck.programs").inc()
        obs.counter("staticcheck.instructions").inc(len(program))
        if summary.top_widened:
            obs.counter("staticcheck.top_widened").inc()
        for diagnostic in diagnostics:
            obs.counter(
                "staticcheck.diagnostics", severity=diagnostic.severity
            ).inc()
    return summary


def _diagnose_unreachable(length: int, effects: _Effects) -> None:
    """Coalesce never-executed pcs into per-run unreachable warnings."""
    run_start: int | None = None
    for pc in range(length + 1):
        dead = pc < length and pc not in effects.executed_pcs
        if dead and run_start is None:
            run_start = pc
        elif not dead and run_start is not None:
            count = pc - run_start
            effects.diagnose(
                run_start,
                SEVERITY_WARNING,
                UNREACHABLE,
                f"unreachable code ({count} instruction"
                f"{'s' if count > 1 else ''}, pc {run_start}"
                + (f"-{pc - 1}" if count > 1 else "")
                + ")",
            )
            run_start = None
