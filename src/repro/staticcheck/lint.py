"""Registry-wide lint reports built on the abstract interpreter.

This is the third consumer of the analyzer (after predicted TDGs and
analyzer-informed execution): a plain diagnostic surface for contract
authors, exposed as ``repro.cli staticcheck``.  A lint run analyzes
every program in a :class:`~repro.vm.contract.CodeRegistry` and rolls
the per-program diagnostics up into one report with deterministic
ordering and a conventional exit code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.staticcheck.absint import analyze_program
from repro.staticcheck.diagnostics import Diagnostic
from repro.staticcheck.valueset import DEFAULT_LATTICE, ValueLattice
from repro.vm.contract import CodeRegistry


@dataclass(frozen=True)
class ContractReport:
    """Lint findings for one registered program."""

    code_id: str
    num_instructions: int
    diagnostics: tuple[Diagnostic, ...]
    top_widened: bool
    num_widened_sites: int = 0
    num_resolved_sites: int = 0
    analysis_seconds: float = 0.0

    @property
    def num_errors(self) -> int:
        return sum(1 for d in self.diagnostics if d.is_error)

    @property
    def num_warnings(self) -> int:
        return sum(1 for d in self.diagnostics if not d.is_error)

    @property
    def clean(self) -> bool:
        return not self.diagnostics


@dataclass(frozen=True)
class LintReport:
    """All contract reports of one lint run, ordered by code id."""

    contracts: tuple[ContractReport, ...]

    @property
    def num_errors(self) -> int:
        return sum(c.num_errors for c in self.contracts)

    @property
    def num_warnings(self) -> int:
        return sum(c.num_warnings for c in self.contracts)

    def exit_code(self, strict: bool = False) -> int:
        """Conventional exit status: 1 on errors (or any finding when
        *strict*), 0 otherwise."""
        if self.num_errors:
            return 1
        if strict and self.num_warnings:
            return 1
        return 0


def lint_registry(
    registry: CodeRegistry,
    code_ids: Iterable[str] | None = None,
    *,
    lattice: str | ValueLattice = DEFAULT_LATTICE,
) -> LintReport:
    """Analyze every program in *registry* (or the given subset)."""
    selected = (
        registry.code_ids() if code_ids is None else tuple(sorted(code_ids))
    )
    contracts = []
    for code_id in selected:
        program = registry.get(code_id)
        if program is None:
            continue
        started = time.perf_counter()
        summary = analyze_program(program, lattice=lattice)
        elapsed = time.perf_counter() - started
        contracts.append(
            ContractReport(
                code_id=code_id,
                num_instructions=summary.num_instructions,
                diagnostics=summary.diagnostics,
                top_widened=summary.top_widened,
                num_widened_sites=len(summary.widened_sites),
                num_resolved_sites=len(summary.resolved_sites),
                analysis_seconds=elapsed,
            )
        )
    return LintReport(contracts=tuple(contracts))


def render_lint_report(report: LintReport, *, timings: bool = True) -> str:
    """Human-readable lint output, one diagnostic per line.

    The per-contract status line ends with a bracketed analysis-cost
    note (milliseconds plus the dynamic-operand site tally) appended
    *after* the status text, so downstream greps for e.g. ``: clean``
    keep matching.  Pass ``timings=False`` for byte-stable output.
    """
    lines: list[str] = []
    total_seconds = 0.0
    for contract in report.contracts:
        status = "clean" if contract.clean else (
            f"{contract.num_errors} error(s), "
            f"{contract.num_warnings} warning(s)"
        )
        total_seconds += contract.analysis_seconds
        note = ""
        if timings:
            note = (
                f" [{contract.analysis_seconds * 1000.0:.2f} ms, "
                f"{contract.num_resolved_sites} resolved / "
                f"{contract.num_widened_sites} widened site(s)]"
            )
        lines.append(
            f"{contract.code_id} "
            f"({contract.num_instructions} instructions): {status}{note}"
        )
        for diagnostic in contract.diagnostics:
            lines.append(f"  {diagnostic.render()}")
    summary_note = (
        f" in {total_seconds * 1000.0:.2f} ms" if timings else ""
    )
    lines.append(
        f"{len(report.contracts)} contract(s) checked: "
        f"{report.num_errors} error(s), {report.num_warnings} warning(s)"
        f"{summary_note}"
    )
    return "\n".join(lines)


__all__: Sequence[str] = (
    "ContractReport",
    "LintReport",
    "lint_registry",
    "render_lint_report",
)
