"""Statically *predicted* transaction access sets and TDGs.

:func:`repro.execution.engine.tasks_from_account_block` derives each
transaction's read/write sets from its execution receipt — information
that is only available *after* running the VM.  This module derives the
same sets *before* execution from the receiver's closed static access
set, in exactly the same location vocabulary::

    storage:<address>:<key>     storage slot (``__balance__`` for the
                                BALANCE opcode's read, mirroring the
                                runtime trace)
    balance:<address>           balance cell moved by value transfers

plus two widened forms that have no runtime counterpart:

* a per-address storage wildcard (``read_wild``/``write_wild``) for
  contracts whose dynamic keys did not resolve to constants, and
* ``global_top`` for transactions that may touch anything (unknown
  call target, widened balance set, widened endpoint set).

Soundness (property-tested): the predicted set of a transaction always
covers the runtime task set, so the predicted TDG's recall against the
runtime-traced TDG is 1.0 — the paper's perfect-information model with
an imprecise (but never wrong) oracle, bought at analysis cost ``K``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Protocol, Sequence

from repro.account.transaction import AccountTransaction
from repro.core.components import UnionFind
from repro.core.tdg import TDGResult
from repro.execution.engine import TxTask
from repro.staticcheck.interproc import ClosedAccess
from repro.utxo.transaction import UTXOTransaction


class AccessAnalyzer(Protocol):
    """What prediction needs from an analyzer.

    Satisfied by both :class:`~repro.staticcheck.interproc.ContractAnalyzer`
    (from-scratch) and
    :class:`~repro.staticcheck.incremental.IncrementalAnalyzer`
    (digest-cached).
    """

    def has_code(self, address: str) -> bool: ...

    def closed_access(self, address: str) -> ClosedAccess: ...


@dataclass(frozen=True)
class PredictedAccess:
    """Predicted read/write sets of one transaction.

    ``read_wild``/``write_wild`` hold addresses whose *entire* storage
    may be read/written (⊤-widened keys); ``global_top`` marks a
    transaction that may touch anything at all.  The ``*_addrs``
    members are derived indexes for fast wildcard conflict tests.
    """

    tx_hash: str
    reads: frozenset[str] = field(default_factory=frozenset)
    writes: frozenset[str] = field(default_factory=frozenset)
    read_wild: frozenset[str] = field(default_factory=frozenset)
    write_wild: frozenset[str] = field(default_factory=frozenset)
    global_top: bool = False
    read_addrs: frozenset[str] = field(default_factory=frozenset)
    write_addrs: frozenset[str] = field(default_factory=frozenset)

    @property
    def is_widened(self) -> bool:
        return bool(self.global_top or self.read_wild or self.write_wild)

    def covers_task(self, task: TxTask) -> bool:
        """Does this prediction cover the runtime task's access set?"""
        if self.global_top:
            return True
        return all(
            self._covers_location(location, self.reads, self.read_wild)
            or self._covers_location(location, self.writes, self.write_wild)
            for location in task.reads
        ) and all(
            self._covers_location(location, self.writes, self.write_wild)
            for location in task.writes
        )

    @staticmethod
    def _covers_location(
        location: str, concrete: frozenset[str], wild: frozenset[str]
    ) -> bool:
        if location in concrete:
            return True
        if location.startswith("storage:"):
            address = location.split(":", 2)[1]
            return address in wild
        return False


# A sound fallback for transactions the analyzer knows nothing about.
def unknown_access(tx_hash: str) -> PredictedAccess:
    return PredictedAccess(tx_hash=tx_hash, global_top=True)


def predict_transaction(
    tx: AccountTransaction, analyzer: AccessAnalyzer
) -> PredictedAccess:
    """Predict the access set of *tx* without executing it.

    Mirrors :func:`tasks_from_account_block`: the sender's and
    receiver's balance cells are always written (nonce/fee and value),
    and when the receiver is a known contract its closed static access
    set is added.
    """
    reads: set[str] = set()
    writes: set[str] = {
        f"balance:{tx.sender}",
        f"balance:{tx.receiver}",
    }
    read_wild: frozenset[str] = frozenset()
    write_wild: frozenset[str] = frozenset()
    global_top = False

    if analyzer.has_code(tx.receiver):
        closed = analyzer.closed_access(tx.receiver)
        reads.update(
            f"storage:{address}:{key}"
            for address, key in closed.storage_reads
        )
        reads.update(
            f"storage:{address}:__balance__"
            for address in closed.balance_reads
        )
        writes.update(
            f"storage:{address}:{key}"
            for address, key in closed.storage_writes
        )
        writes.update(
            f"balance:{address}" for address in closed.internal_endpoints
        )
        writes.update(
            f"balance:{address}" for address in closed.balance_writes
        )
        read_wild = closed.storage_read_top
        write_wild = closed.storage_write_top
        global_top = (
            closed.global_top
            or closed.balance_read_top
            or closed.balance_write_top
            or closed.endpoint_top
        )

    def storage_addresses(
        locations: set[str], wild: frozenset[str]
    ) -> frozenset[str]:
        found = set(wild)
        for location in locations:
            if location.startswith("storage:"):
                found.add(location.split(":", 2)[1])
        return frozenset(found)

    return PredictedAccess(
        tx_hash=tx.tx_hash,
        reads=frozenset(reads),
        writes=frozenset(writes),
        read_wild=read_wild,
        write_wild=write_wild,
        global_top=global_top,
        read_addrs=storage_addresses(reads, read_wild),
        write_addrs=storage_addresses(writes, write_wild),
    )


def predict_block(
    transactions: Sequence[AccountTransaction],
    analyzer: AccessAnalyzer,
) -> list[PredictedAccess]:
    """Predictions for a block's regular (non-coinbase) transactions."""
    return [
        predict_transaction(tx, analyzer)
        for tx in transactions
        if not tx.is_coinbase
    ]


def predict_utxo_block(
    transactions: Sequence[UTXOTransaction],
) -> list[PredictedAccess]:
    """Predictions for a UTXO block's regular transactions.

    UTXO access sets are syntactic — a transaction names every outpoint
    it consumes or creates — so the "prediction" is exact: writes are
    the spent inputs plus the created outputs, mirroring
    :func:`repro.execution.engine.tasks_from_utxo_block`, and nothing
    ever widens.
    """
    predictions: list[PredictedAccess] = []
    for tx in transactions:
        if tx.is_coinbase:
            continue
        writes = {str(outpoint) for outpoint in tx.inputs}
        writes.update(str(outpoint) for outpoint in tx.outpoints_created())
        predictions.append(
            PredictedAccess(tx_hash=tx.tx_hash, writes=frozenset(writes))
        )
    return predictions


def predicted_conflicts(a: PredictedAccess, b: PredictedAccess) -> bool:
    """May *a* and *b* conflict under the predicted sets?

    Same write/write-or-read/write rule as
    :meth:`repro.execution.engine.TxTask.conflicts_with`, extended to
    the widened forms.
    """
    if a.global_top or b.global_top:
        return True
    if a.writes & b.writes or a.writes & b.reads or a.reads & b.writes:
        return True
    # Storage wildcards: a ⊤-widened write may hit anything the other
    # transaction touches at that address, and vice versa; a ⊤-widened
    # read conflicts with any write at that address.
    if a.write_wild & (b.read_addrs | b.write_addrs):
        return True
    if b.write_wild & (a.read_addrs | a.write_addrs):
        return True
    if a.read_wild & b.write_addrs or b.read_wild & a.write_addrs:
        return True
    return False


def predicted_tdg(predictions: Sequence[PredictedAccess]) -> TDGResult:
    """Partition predictions into predicted dependency groups."""
    forest = UnionFind()
    for prediction in predictions:
        forest.add(prediction.tx_hash)
    for i, a in enumerate(predictions):
        for b in predictions[i + 1:]:
            if predicted_conflicts(a, b):
                forest.union(a.tx_hash, b.tx_hash)
    groups: dict[object, list[str]] = {}
    for prediction in predictions:
        groups.setdefault(
            forest.find(prediction.tx_hash), []
        ).append(prediction.tx_hash)
    return TDGResult(
        groups=tuple(tuple(group) for group in groups.values()),
        num_transactions=len(predictions),
    )


def expanded_tasks(
    predictions: Sequence[PredictedAccess],
    costs: Mapping[str, float] | None = None,
) -> list[TxTask]:
    """Materialize predictions as :class:`TxTask` objects.

    Wildcards are expanded against the block's *statically known*
    location universe (every concrete location any prediction mentions)
    plus a per-address marker, so plain set intersection between two
    expanded tasks agrees with :func:`predicted_conflicts`.  This is
    what lets the stock OCC executor validate against predicted sets
    with no code changes.
    """
    universe: set[str] = set()
    by_address: dict[str, set[str]] = {}
    for prediction in predictions:
        for location in prediction.reads | prediction.writes:
            universe.add(location)
            if location.startswith("storage:"):
                by_address.setdefault(
                    location.split(":", 2)[1], set()
                ).add(location)
        # Wildcard markers join the universe so a global-⊤ task also
        # intersects wildcard-only tasks with no concrete locations.
        for address in prediction.read_wild | prediction.write_wild:
            universe.add(f"storage:{address}:*")

    def expand(
        concrete: frozenset[str], wild: frozenset[str], top: bool
    ) -> frozenset[str]:
        if top:
            return frozenset(universe) | {"__global_top__"}
        expanded = set(concrete)
        for address in wild:
            expanded |= by_address.get(address, set())
            expanded.add(f"storage:{address}:*")
        return frozenset(expanded)

    tasks: list[TxTask] = []
    for prediction in predictions:
        cost = 1.0 if costs is None else costs.get(prediction.tx_hash, 1.0)
        tasks.append(
            TxTask(
                tx_hash=prediction.tx_hash,
                cost=cost,
                reads=expand(
                    prediction.reads,
                    prediction.read_wild,
                    prediction.global_top,
                ),
                writes=expand(
                    prediction.writes,
                    prediction.write_wild,
                    prediction.global_top,
                ),
            )
        )
    return tasks
