"""Abstract domains shared by the analyzer passes.

Two tiny lattices:

* **Values** — an operand on the abstract stack is either a known
  constant (:class:`Const`, the result of constant propagation) or the
  top element :data:`TOP` ("any value").  There is no bottom element:
  unreachable states are simply never created.

* **Key sets** — a :class:`MaySet` over-approximates a set of storage
  keys / addresses.  It is a finite set of strings until a dynamic
  operand fails to resolve to a constant, at which point it widens to ⊤
  ("may touch any key in scope").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


class Top:
    """The ⊤ abstract value: "could be anything"."""

    _instance: "Top | None" = None

    def __new__(cls) -> "Top":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊤"


TOP = Top()


@dataclass(frozen=True)
class Const:
    """A stack slot known to hold exactly *value* on every path."""

    value: Union[int, str]

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


AbstractValue = Union[Const, Top]

# An abstract stack: a tuple of slots when the height is the same on
# every path reaching the program point, or None ("unknown stack") when
# joining paths of different heights.  Pops from an unknown stack yield
# TOP and underflow can no longer be proven.
StackState = Union[tuple[AbstractValue, ...], None]


def join_value(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Least upper bound of two abstract values."""
    if isinstance(a, Const) and isinstance(b, Const) and a == b:
        return a
    return TOP


def join_stack(a: StackState, b: StackState) -> StackState:
    """Least upper bound of two abstract stacks (height mismatch → None)."""
    if a is None or b is None or len(a) != len(b):
        return None
    return tuple(join_value(x, y) for x, y in zip(a, b))


@dataclass(frozen=True)
class MaySet:
    """A sound over-approximation of a set of keys/addresses.

    ``top=True`` means "any key" — the concrete items are then
    irrelevant for membership (but retained: they are still useful as
    the *definitely-mentioned* subset when rendering diagnostics).
    """

    items: frozenset[str] = field(default_factory=frozenset)
    top: bool = False

    def add(self, item: str) -> "MaySet":
        return MaySet(items=self.items | {item}, top=self.top)

    def widen(self) -> "MaySet":
        return MaySet(items=self.items, top=True)

    def union(self, other: "MaySet") -> "MaySet":
        return MaySet(
            items=self.items | other.items, top=self.top or other.top
        )

    def covers(self, item: str) -> bool:
        """May this set contain *item*?  (⊤ covers everything.)"""
        return self.top or item in self.items

    def is_superset_of(self, concrete: frozenset[str]) -> bool:
        return self.top or concrete <= self.items

    def __bool__(self) -> bool:
        return self.top or bool(self.items)


EMPTY_MAYSET = MaySet()
TOP_MAYSET = MaySet(top=True)
