"""Interprocedural closure of access sets over the contract call graph.

A program summary (:class:`~repro.staticcheck.absint.ProgramSummary`)
describes one program in isolation; what the scheduler needs is the
access set of *executing the contract at an address*, which closes over
every ``CALL`` edge — including proxy chains — exactly like the VM's
nested :meth:`~repro.vm.vm.VM._call`.

The closure is a joint fixpoint over all addresses bound to code: each
address's :class:`ClosedAccess` is its own summary plus the union of
the closed sets of every known call target that has code.  Cycles in
the call graph (mutual proxies) converge because the lattice is finite
— key sets are drawn from program operands and widen to ⊤.

⊤ escalation rules:

* a dynamic storage key → that *address's* storage set widens to ⊤
  (the VM scopes dynamic keys to the executing contract's storage);
* a dynamic ``TRANSFER`` target → balance writes widen to ⊤ (any
  address's balance) and the internal-endpoint set widens to ⊤;
* a dynamic ``CALL`` target → ``global_top``: any registered contract
  may run, so the closed set is "may touch anything".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping

from repro import obs
from repro.account.state import WorldState
from repro.staticcheck.absint import ProgramSummary, analyze_program
from repro.staticcheck.valueset import (
    DEFAULT_LATTICE,
    ValueLattice,
    get_lattice,
)
from repro.vm.contract import CodeRegistry

_MAX_CLOSURE_PASSES = 10_000


def code_bindings(state: WorldState) -> dict[str, str]:
    """Map every contract address in *state* to its ``code_id``."""
    return {
        address: account.code_id
        for address, account in state.iter_accounts()
        if account.code_id
    }


@dataclass(frozen=True)
class ClosedAccess:
    """Everything executing a contract address may touch.

    Storage keys are ``(address, key)`` pairs in the same shape as the
    VM's runtime trace (:class:`repro.vm.vm.ExecutionContext`).  The
    ``*_top`` members carry the widened ("may touch any …") part.
    """

    storage_reads: frozenset[tuple[str, str]] = field(
        default_factory=frozenset
    )
    storage_writes: frozenset[tuple[str, str]] = field(
        default_factory=frozenset
    )
    storage_read_top: frozenset[str] = field(default_factory=frozenset)
    storage_write_top: frozenset[str] = field(default_factory=frozenset)
    balance_reads: frozenset[str] = field(default_factory=frozenset)
    balance_read_top: bool = False
    balance_writes: frozenset[str] = field(default_factory=frozenset)
    balance_write_top: bool = False
    internal_endpoints: frozenset[str] = field(default_factory=frozenset)
    endpoint_top: bool = False
    global_top: bool = False

    def union(self, other: "ClosedAccess") -> "ClosedAccess":
        return ClosedAccess(
            storage_reads=self.storage_reads | other.storage_reads,
            storage_writes=self.storage_writes | other.storage_writes,
            storage_read_top=self.storage_read_top | other.storage_read_top,
            storage_write_top=(
                self.storage_write_top | other.storage_write_top
            ),
            balance_reads=self.balance_reads | other.balance_reads,
            balance_read_top=self.balance_read_top or other.balance_read_top,
            balance_writes=self.balance_writes | other.balance_writes,
            balance_write_top=(
                self.balance_write_top or other.balance_write_top
            ),
            internal_endpoints=(
                self.internal_endpoints | other.internal_endpoints
            ),
            endpoint_top=self.endpoint_top or other.endpoint_top,
            global_top=self.global_top or other.global_top,
        )

    @property
    def is_top_widened(self) -> bool:
        return bool(
            self.storage_read_top
            or self.storage_write_top
            or self.balance_read_top
            or self.balance_write_top
            or self.endpoint_top
            or self.global_top
        )

    # -- soundness queries (used by the property tests) -----------------

    def covers_read(self, address: str, key: str) -> bool:
        return (
            self.global_top
            or (address, key) in self.storage_reads
            or address in self.storage_read_top
            or (
                key == "__balance__"
                and (self.balance_read_top or address in self.balance_reads)
            )
        )

    def covers_write(self, address: str, key: str) -> bool:
        return (
            self.global_top
            or (address, key) in self.storage_writes
            or address in self.storage_write_top
        )

    def covers_endpoint(self, address: str) -> bool:
        return (
            self.global_top
            or self.endpoint_top
            or address in self.internal_endpoints
        )


EMPTY_ACCESS = ClosedAccess()


def known_call_targets(summary: ProgramSummary) -> tuple[str, ...]:
    """Every resolved ``CALL`` target of *summary*, in site order.

    Value-set resolved sites contribute all their candidate targets;
    ⊤-widened sites contribute nothing here (they set ``global_top`` in
    :func:`local_access` instead).
    """
    targets: list[str] = []
    for site in summary.calls:
        if site.is_call and site.targets is not None:
            targets.extend(site.targets)
    return tuple(dict.fromkeys(targets))


def local_access(address: str, summary: ProgramSummary) -> ClosedAccess:
    """One address's own contribution, before closing call edges."""
    reads = frozenset(
        (address, key) for key in summary.storage_reads.items
    )
    writes = frozenset(
        (address, key) for key in summary.storage_writes.items
    )
    access = ClosedAccess(
        storage_reads=reads,
        storage_writes=writes,
        storage_read_top=(
            frozenset({address}) if summary.storage_reads.top
            else frozenset()
        ),
        storage_write_top=(
            frozenset({address}) if summary.storage_writes.top
            else frozenset()
        ),
        balance_reads=frozenset(summary.balance_reads.items),
        balance_read_top=summary.balance_reads.top,
    )
    endpoints: set[str] = set()
    balance_writes: set[str] = set()
    endpoint_top = False
    balance_write_top = False
    global_top = False
    for site in summary.calls:
        if site.targets is None:
            # Unknown target: any address may appear in the trace;
            # with value attached any balance may move; a CALL may
            # run any registered contract.
            endpoint_top = True
            if site.value > 0:
                balance_write_top = True
            if site.is_call:
                global_top = True
            continue
        # A value-set target site may run any of finitely many
        # candidates; all of them are possible endpoints (and balance
        # recipients, when value moves).
        endpoints.add(address)
        for target in site.targets:
            endpoints.add(target)
            if site.value > 0:
                balance_writes.add(address)
                balance_writes.add(target)
    return replace(
        access,
        balance_writes=frozenset(balance_writes),
        balance_write_top=balance_write_top,
        internal_endpoints=frozenset(endpoints),
        endpoint_top=endpoint_top,
        global_top=global_top,
    )


class ContractAnalyzer:
    """Analyzes a code registry and closes access sets over call edges.

    Args:
        registry: the chain's program store.
        code_of: address → ``code_id`` binding (from
            :func:`code_bindings` or built by hand in tests).  Only
            addresses present here execute code; a call to any other
            address is a plain value transfer.
        lattice: the abstract slot domain threaded to
            :func:`~repro.staticcheck.absint.analyze_program` —
            ``"valueset"`` (default) or ``"const"``.
    """

    def __init__(
        self,
        registry: CodeRegistry,
        code_of: Mapping[str, str],
        *,
        lattice: "str | ValueLattice" = DEFAULT_LATTICE,
    ) -> None:
        self.registry = registry
        self.code_of = dict(code_of)
        self.lattice = get_lattice(lattice)
        self._summaries: dict[str, ProgramSummary] = {}
        self._closed: dict[str, ClosedAccess] | None = None

    # -- per-program summaries ------------------------------------------

    def summary(self, code_id: str) -> ProgramSummary:
        """The (cached) intraprocedural summary of one program."""
        cached = self._summaries.get(code_id)
        if cached is None:
            program = self.registry.get(code_id)
            cached = analyze_program(
                program if program is not None else (),
                lattice=self.lattice,
            )
            self._summaries[code_id] = cached
        return cached

    def summaries(self) -> dict[str, ProgramSummary]:
        """Summaries of every program reachable from the bindings."""
        for code_id in sorted(set(self.code_of.values())):
            self.summary(code_id)
        return dict(self._summaries)

    def has_code(self, address: str) -> bool:
        return address in self.code_of

    # -- interprocedural closure ----------------------------------------

    def closed_access(self, address: str) -> ClosedAccess:
        """The closed access set of executing the contract at *address*.

        Addresses without code return the empty set (a plain value
        recipient executes nothing).
        """
        if address not in self.code_of:
            return EMPTY_ACCESS
        if self._closed is None:
            self.analyze_all()
            assert self._closed is not None
        return self._closed[address]

    def analyze_all(self) -> dict[str, ClosedAccess]:
        """Run the joint closure fixpoint over every bound address."""
        if self._closed is not None:
            return dict(self._closed)
        with obs.trace_span(
            "staticcheck.closure", contracts=len(self.code_of)
        ) as span:
            local = {
                address: self._local_access(address)
                for address in self.code_of
            }
            closed = dict(local)
            passes = 0
            changed = True
            while changed:
                passes += 1
                if passes > _MAX_CLOSURE_PASSES:  # pragma: no cover
                    raise RuntimeError("interprocedural closure diverged")
                changed = False
                for address in closed:
                    merged = local[address]
                    for target in self._call_targets(address):
                        if target in closed:
                            merged = merged.union(closed[target])
                    if merged != closed[address]:
                        closed[address] = merged
                        changed = True
            self._closed = closed
            if obs.enabled():
                span.set(passes=passes)
                obs.counter("staticcheck.closures").inc(len(closed))
                obs.counter("staticcheck.closure_top_widened").inc(
                    sum(1 for item in closed.values() if item.is_top_widened)
                )
        return dict(closed)

    def _call_targets(self, address: str) -> Iterable[str]:
        return known_call_targets(self.summary(self.code_of[address]))

    def _local_access(self, address: str) -> ClosedAccess:
        """One address's own contribution, before closing call edges."""
        return local_access(address, self.summary(self.code_of[address]))
