"""Control-flow graph construction from ``JUMP``/``JUMPI`` targets.

The mini-VM only has static jump targets (the assembler rejects the
dynamic ``$`` form for jumps), so the CFG of a program is exact: basic
blocks are the maximal straight-line runs between *leaders* (the entry,
every jump target, and every instruction following a jump or halt), and
edges follow the jump/fall-through structure.

Out-of-range targets are reported as :data:`~repro.staticcheck.
diagnostics.JUMP_RANGE` errors — they can only occur in hand-built
programs now that :func:`repro.vm.contract.assemble` validates targets,
but the analyzer must stay total over arbitrary instruction tuples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.staticcheck.diagnostics import (
    JUMP_RANGE,
    SEVERITY_ERROR,
    Diagnostic,
)
from repro.vm.contract import Program
from repro.vm.opcodes import Op

_HALTS = (Op.STOP, Op.REVERT)


@dataclass(frozen=True)
class BasicBlock:
    """A maximal straight-line instruction run ``[start, end)``."""

    start: int
    end: int
    successors: tuple[int, ...]

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end:
            raise ValueError("basic block bounds must satisfy 0 <= start < end")


@dataclass(frozen=True)
class CFG:
    """The program's basic blocks, ordered by start pc."""

    program: Program
    blocks: tuple[BasicBlock, ...]
    diagnostics: tuple[Diagnostic, ...]

    def block_starting_at(self, pc: int) -> BasicBlock:
        for block in self.blocks:
            if block.start == pc:
                return block
        raise KeyError(f"no basic block starts at pc {pc}")

    @property
    def entry(self) -> BasicBlock | None:
        return self.blocks[0] if self.blocks else None


def _valid_target(operand: object, length: int) -> int | None:
    """The jump target as an int if it lies inside the program."""
    if isinstance(operand, int) and 0 <= operand < length:
        return operand
    return None


def build_cfg(program: Program) -> CFG:
    """Build the exact CFG of *program*.

    Jumps with out-of-range targets terminate their block (the VM would
    raise :class:`~repro.chain.errors.VMError` there) and contribute a
    ``jump-range`` error diagnostic.
    """
    length = len(program)
    if length == 0:
        return CFG(program=program, blocks=(), diagnostics=())

    diagnostics: list[Diagnostic] = []
    leaders: set[int] = {0}
    for pc, instruction in enumerate(program):
        if instruction.op in (Op.JUMP, Op.JUMPI):
            target = _valid_target(instruction.operand, length)
            if target is None:
                diagnostics.append(
                    Diagnostic(
                        pc=pc,
                        severity=SEVERITY_ERROR,
                        code=JUMP_RANGE,
                        message=(
                            f"jump target {instruction.operand!r} out of "
                            f"range (program has {length} instructions)"
                        ),
                    )
                )
            else:
                leaders.add(target)
            if pc + 1 < length:
                leaders.add(pc + 1)
        elif instruction.op in _HALTS and pc + 1 < length:
            leaders.add(pc + 1)

    ordered = sorted(leaders)
    blocks: list[BasicBlock] = []
    for index, start in enumerate(ordered):
        end = ordered[index + 1] if index + 1 < len(ordered) else length
        last = program[end - 1]
        successors: tuple[int, ...]
        if last.op is Op.JUMP:
            target = _valid_target(last.operand, length)
            successors = (target,) if target is not None else ()
        elif last.op is Op.JUMPI:
            target = _valid_target(last.operand, length)
            branch = (target,) if target is not None else ()
            fall = (end,) if end < length else ()
            successors = branch + fall
        elif last.op in _HALTS:
            successors = ()
        else:
            # Block ends because the next pc is a leader, or the
            # program runs off the end (an implicit successful halt).
            successors = (end,) if end < length else ()
        blocks.append(
            BasicBlock(start=start, end=end, successors=successors)
        )
    return CFG(
        program=program,
        blocks=tuple(blocks),
        diagnostics=tuple(diagnostics),
    )
