"""End-to-end analysis pipeline: chains in, metric histories out.

This is the reproduction's equivalent of the paper's BigQuery queries:
it walks a chain block by block, builds each block's TDG, computes the
concurrency metrics, and collects everything into a
:class:`ChainHistory` that the figure builders and speed-up models
consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro import obs
from repro.account.receipts import ExecutedTransaction
from repro.chain.block import Block
from repro.chain.ledger import Ledger
from repro.core.metrics import BlockMetrics, compute_block_metrics
from repro.core.tdg import TDGResult, account_tdg, utxo_tdg
from repro.utxo.transaction import UTXOTransaction


@dataclass(frozen=True)
class BlockRecord:
    """Everything the analysis retains about one block.

    Attributes:
        height: block height.
        timestamp: block timestamp (UNIX seconds).
        num_transactions: regular (non-coinbase) transactions.
        num_internal: internal transactions (account model only).
        num_input_txos: input TXO count (UTXO model only) — the second
            series of the paper's Fig. 5a.
        gas_used: total gas consumed (account model only).
        size_bytes: serialised block size (UTXO model weighting).
        metrics: the block's concurrency metrics.
    """

    height: int
    timestamp: float
    num_transactions: int
    metrics: BlockMetrics
    num_internal: int = 0
    num_input_txos: int = 0
    gas_used: float = 0.0
    size_bytes: float = 0.0

    @property
    def total_transactions(self) -> int:
        """Regular plus internal transactions (Fig. 4a's 'all TXs')."""
        return self.num_transactions + self.num_internal

    @property
    def weight_tx(self) -> float:
        """Block weight when weighting by transaction count."""
        return float(self.num_transactions)

    @property
    def weight_gas(self) -> float:
        """Block weight when weighting by gas (falls back to tx count)."""
        return self.gas_used if self.gas_used > 0 else float(self.num_transactions)

    @property
    def weight_size(self) -> float:
        """Block weight when weighting by size (falls back to tx count)."""
        return self.size_bytes if self.size_bytes > 0 else float(self.num_transactions)


SECONDS_PER_YEAR = 365.25 * 24 * 3600


@dataclass
class ChainHistory:
    """The full per-block metric history of one simulated chain.

    ``start_year`` anchors block timestamps to calendar time; the
    figure builders use it to label buckets with years as the paper's
    x-axes do.
    """

    name: str
    data_model: str  # "utxo" or "account"
    records: list[BlockRecord] = field(default_factory=list)
    start_year: float = 0.0

    def __post_init__(self) -> None:
        if self.data_model not in ("utxo", "account"):
            raise ValueError(f"unknown data model {self.data_model!r}")

    def year_of(self, record: BlockRecord) -> float:
        """Calendar year of *record* (timestamp offset from start_year)."""
        return self.start_year + record.timestamp / SECONDS_PER_YEAR

    def __len__(self) -> int:
        return len(self.records)

    def append(self, record: BlockRecord) -> None:
        if self.records and record.height <= self.records[-1].height:
            raise ValueError("records must be appended in height order")
        self.records.append(record)

    def non_empty_records(self) -> list[BlockRecord]:
        """Records of blocks with at least one regular transaction."""
        return [r for r in self.records if r.num_transactions > 0]

    def mean_transactions_per_block(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.num_transactions for r in self.records) / len(self.records)


# -- per-block analysis -------------------------------------------------------


def analyze_utxo_block(
    transactions: Sequence[UTXOTransaction],
    *,
    height: int,
    timestamp: float,
) -> tuple[BlockRecord, TDGResult]:
    """Build the TDG and metrics for one UTXO block."""
    with obs.trace_span("pipeline.block", height=height, model="utxo"):
        tdg = utxo_tdg(transactions)
        with obs.trace_span("pipeline.metrics", height=height):
            metrics = compute_block_metrics(tdg)
        regular = [tx for tx in transactions if not tx.is_coinbase]
        record = BlockRecord(
            height=height,
            timestamp=timestamp,
            num_transactions=len(regular),
            metrics=metrics,
            num_input_txos=sum(len(tx.inputs) for tx in regular),
            size_bytes=float(sum(tx.size_bytes for tx in transactions)),
        )
    obs.counter("pipeline.blocks", model="utxo").inc()
    obs.counter("pipeline.transactions", model="utxo").inc(len(regular))
    return record, tdg


def analyze_account_block(
    executed: Sequence[ExecutedTransaction],
    *,
    height: int,
    timestamp: float,
) -> tuple[BlockRecord, TDGResult]:
    """Build the TDG and gas-weighted metrics for one account block."""
    with obs.trace_span("pipeline.block", height=height, model="account"):
        tdg = account_tdg(executed)
        gas_weights = {
            item.tx_hash: float(max(item.gas_used, 1))
            for item in executed
            if not item.is_coinbase
        }
        with obs.trace_span("pipeline.metrics", height=height):
            metrics = compute_block_metrics(tdg, weights=gas_weights)
        regular = [item for item in executed if not item.is_coinbase]
        record = BlockRecord(
            height=height,
            timestamp=timestamp,
            num_transactions=len(regular),
            metrics=metrics,
            num_internal=sum(item.receipt.trace_count for item in regular),
            gas_used=float(sum(item.gas_used for item in regular)),
        )
    obs.counter("pipeline.blocks", model="account").inc()
    obs.counter("pipeline.transactions", model="account").inc(len(regular))
    return record, tdg


# -- whole-chain analysis -----------------------------------------------------


def analyze_utxo_ledger(
    ledger: Ledger[UTXOTransaction],
    *,
    name: str,
    start_year: float = 0.0,
    backend: str = "serial",
    jobs: int | None = None,
    chunk_size: int | None = None,
) -> ChainHistory:
    """Run the pipeline over every block of a UTXO ledger.

    ``backend`` / ``jobs`` / ``chunk_size`` select the analysis backend
    (see :func:`repro.core.parallel.analyze_chain`); the default walks
    the chain serially, and every backend yields an identical history.
    """
    from repro.core.parallel import analyze_chain

    return analyze_chain(
        ledger,
        data_model="utxo",
        name=name,
        start_year=start_year,
        backend=backend,
        jobs=jobs,
        chunk_size=chunk_size,
    )


def analyze_account_blocks(
    blocks: Iterable[tuple[Block, Sequence[ExecutedTransaction]]],
    *,
    name: str,
    start_year: float = 0.0,
    backend: str = "serial",
    jobs: int | None = None,
    chunk_size: int | None = None,
) -> ChainHistory:
    """Run the pipeline over (block, executed transactions) pairs.

    Accepts the same backend selection as :func:`analyze_utxo_ledger`.
    """
    from repro.core.parallel import analyze_chain

    return analyze_chain(
        blocks,
        data_model="account",
        name=name,
        start_year=start_year,
        backend=backend,
        jobs=jobs,
        chunk_size=chunk_size,
    )
