"""Connected-component algorithms over transaction dependency graphs.

Two interchangeable implementations are provided:

* :func:`connected_components_bfs` — a faithful Python port of the
  JavaScript breadth-first search the paper ships inside its BigQuery
  UDF (paper Fig. 3), preserving its level-by-level frontier expansion;
* :func:`connected_components_union_find` — a weighted-union,
  path-compressing disjoint-set alternative.

Both take the graph as an adjacency mapping and return components as
lists of node lists.  Property-based tests assert they induce the same
partition; the ablation bench compares their cost profiles.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence, TypeVar

Node = TypeVar("Node", bound=Hashable)

Adjacency = Mapping[Node, Iterable[Node]]


def build_adjacency(
    nodes: Iterable[Node],
    edges: Iterable[tuple[Node, Node]],
) -> dict[Node, set[Node]]:
    """Build an undirected adjacency map from *nodes* and *edges*.

    Edge endpoints absent from *nodes* are added implicitly, matching the
    UDF behaviour where the node universe is derived from the edge
    arrays.  Self-loops are kept in the node set but add no neighbours.
    """
    adjacency: dict[Node, set[Node]] = {node: set() for node in nodes}
    for a, b in edges:
        adjacency.setdefault(a, set())
        adjacency.setdefault(b, set())
        if a != b:
            adjacency[a].add(b)
            adjacency[b].add(a)
    return adjacency


def connected_components_bfs(
    adjacency: Adjacency,
) -> list[list[Node]]:
    """Connected components via the paper's BFS (Fig. 3).

    The traversal mirrors the published UDF: iterate nodes in order, and
    for each unvisited node grow its component one *frontier level* at a
    time (``neighbors`` / ``newNeighbors`` sets in the original).  The
    original enumerates ``txs`` (with duplicates possible from the edge
    arrays); here the adjacency keys play that role, deduplicated.

    Returns components as lists; each component's first element is the
    node that seeded its traversal.
    """
    visited: set[Node] = set()
    components: list[list[Node]] = []
    for node in adjacency:
        if node in visited:
            continue
        component: list[Node] = [node]
        visited.add(node)
        frontier: set[Node] = set()
        for neighbour in adjacency[node]:
            if neighbour not in visited:
                frontier.add(neighbour)
        while frontier:
            next_frontier: set[Node] = set()
            for member in frontier:
                component.append(member)
                visited.add(member)
            for member in frontier:
                for neighbour in adjacency[member]:
                    if neighbour not in visited:
                        next_frontier.add(neighbour)
            frontier = next_frontier
        components.append(component)
    return components


class UnionFind:
    """Disjoint-set forest with union by size and path compression."""

    def __init__(self) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}

    def add(self, node: Hashable) -> None:
        """Register *node* as its own singleton set if unseen."""
        if node not in self._parent:
            self._parent[node] = node
            self._size[node] = 1

    def find(self, node: Hashable) -> Hashable:
        """Return the canonical representative of *node*'s set."""
        if node not in self._parent:
            raise KeyError(f"unknown node {node!r}")
        root = node
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[node] != root:
            self._parent[node], node = root, self._parent[node]
        return root

    def union(self, a: Hashable, b: Hashable) -> None:
        """Merge the sets containing *a* and *b* (registering both)."""
        self.add(a)
        self.add(b)
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]

    def connected(self, a: Hashable, b: Hashable) -> bool:
        return self.find(a) == self.find(b)

    def component_size(self, node: Hashable) -> int:
        return self._size[self.find(node)]

    def groups(self) -> list[list[Hashable]]:
        """All disjoint sets, each as a list of members."""
        buckets: dict[Hashable, list[Hashable]] = {}
        for node in self._parent:
            buckets.setdefault(self.find(node), []).append(node)
        return list(buckets.values())

    def __len__(self) -> int:
        return len(self._parent)


def connected_components_union_find(
    adjacency: Adjacency,
) -> list[list[Node]]:
    """Connected components via union-find (the ablation alternative)."""
    forest = UnionFind()
    for node, neighbours in adjacency.items():
        forest.add(node)
        for neighbour in neighbours:
            forest.union(node, neighbour)
    return forest.groups()  # type: ignore[return-value]


def components_as_partition(
    components: Sequence[Sequence[Node]],
) -> frozenset[frozenset[Node]]:
    """Canonical form of a component list for equality comparison."""
    return frozenset(frozenset(component) for component in components)


def largest_component_size(components: Sequence[Sequence[Node]]) -> int:
    """Size of the largest connected component; 0 for no components."""
    return max((len(component) for component in components), default=0)


def singleton_count(components: Sequence[Sequence[Node]]) -> int:
    """Number of size-1 components (unconflicted nodes in the paper)."""
    return sum(1 for component in components if len(component) == 1)
