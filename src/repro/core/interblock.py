"""Inter-block concurrency — the paper's §VII extension.

The paper measures concurrency *within* blocks and lists "other sources
of concurrency such as intra-transaction, inter-block and
inter-blockchain" as unexplored.  This module explores the inter-block
source: treat a window of W consecutive blocks as one super-batch,
build the dependency structure across the whole window, and ask how
much faster the window executes when transactions from different
blocks may interleave (subject to true dependencies) compared with the
block-at-a-time pipeline.

For the UTXO model the cross-block edges are spends of outputs created
earlier in the window; for the account model, shared addresses across
blocks.  Both reuse the single-block TDG machinery on the concatenated
transaction list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.account.receipts import ExecutedTransaction
from repro.core.scheduling import lpt_schedule
from repro.core.tdg import TDGResult, account_tdg, utxo_tdg
from repro.utxo.transaction import UTXOTransaction


@dataclass(frozen=True)
class WindowConcurrency:
    """Concurrency accounting for one window of consecutive blocks.

    Attributes:
        window: number of blocks combined.
        num_transactions: total non-coinbase transactions in the window.
        window_tdg: dependency partition over the whole window.
        per_block_group_sizes: each block's own dependency-group sizes
            (what a block-at-a-time scheduler gets to work with).
    """

    window: int
    num_transactions: int
    window_tdg: TDGResult
    per_block_group_sizes: tuple[tuple[int, ...], ...]

    @property
    def per_block_lccs(self) -> tuple[int, ...]:
        """Each block's intra-block critical path (its LCC size)."""
        return tuple(
            max(sizes, default=0) for sizes in self.per_block_group_sizes
        )

    @property
    def window_group_conflict_rate(self) -> float:
        """Relative LCC size over the whole window."""
        if self.num_transactions == 0:
            return 0.0
        return self.window_tdg.lcc_size / self.num_transactions

    def pipeline_makespan(self, cores: int) -> float:
        """Block-at-a-time execution: blocks are barriers.

        Each block runs as its own group-scheduled batch (LPT); the
        next block cannot start before the previous finishes — what
        today's clients plus an intra-block TDG scheduler would do.
        """
        if cores < 1:
            raise ValueError("cores must be at least 1")
        total = 0.0
        for sizes in self.per_block_group_sizes:
            if not sizes:
                continue
            total += lpt_schedule([float(s) for s in sizes], cores).makespan
        return total

    def interleaved_makespan(self, cores: int) -> float:
        """Window-at-once execution: dependency groups span blocks."""
        if cores < 1:
            raise ValueError("cores must be at least 1")
        sizes = [float(s) for s in self.window_tdg.group_sizes()]
        if not sizes:
            return 0.0
        return lpt_schedule(sizes, cores).makespan

    def interblock_speedup(self, cores: int) -> float:
        """Pipeline time over interleaved time.

        Greater than 1 when interleaving across block boundaries helps
        (it usually does: each block's barrier idles cores while its
        LCC tail drains); close to 1 when blocks are internally
        parallel already.
        """
        interleaved = self.interleaved_makespan(cores)
        if interleaved == 0:
            return 1.0
        return self.pipeline_makespan(cores) / interleaved


def utxo_window_concurrency(
    blocks: Sequence[Sequence[UTXOTransaction]],
) -> WindowConcurrency:
    """Analyze a window of UTXO blocks (ordered transaction lists)."""
    merged: list[UTXOTransaction] = []
    per_block_sizes = []
    for block in blocks:
        merged.extend(block)
        per_block_sizes.append(
            tuple(len(group) for group in utxo_tdg(block).groups)
        )
    window_tdg = utxo_tdg(merged)
    return WindowConcurrency(
        window=len(blocks),
        num_transactions=window_tdg.num_transactions,
        window_tdg=window_tdg,
        per_block_group_sizes=tuple(per_block_sizes),
    )


def account_window_concurrency(
    blocks: Sequence[Sequence[ExecutedTransaction]],
) -> WindowConcurrency:
    """Analyze a window of executed account blocks."""
    merged: list[ExecutedTransaction] = []
    per_block_sizes = []
    for block in blocks:
        merged.extend(block)
        per_block_sizes.append(
            tuple(len(group) for group in account_tdg(block).groups)
        )
    window_tdg = account_tdg(merged)
    return WindowConcurrency(
        window=len(blocks),
        num_transactions=window_tdg.num_transactions,
        window_tdg=window_tdg,
        per_block_group_sizes=tuple(per_block_sizes),
    )


def sliding_window_speedups(
    blocks: Sequence[Sequence],
    *,
    window: int,
    cores: int,
    model: str,
) -> list[float]:
    """Inter-block speed-up for every complete window over *blocks*.

    Args:
        blocks: per-block transaction lists (model-appropriate type).
        window: window width W (>= 2 to measure anything inter-block).
        cores: simulated core count.
        model: "utxo" or "account".
    """
    if window < 1:
        raise ValueError("window must be positive")
    if model == "utxo":
        analyze = utxo_window_concurrency
    elif model == "account":
        analyze = account_window_concurrency
    else:
        raise ValueError(f"unknown model {model!r}")
    speedups = []
    for start in range(0, len(blocks) - window + 1):
        segment = blocks[start:start + window]
        speedups.append(analyze(segment).interblock_speedup(cores))
    return speedups
