"""Analytical execution speed-up models — paper §V.

All models assume unit-cost transactions: a block of ``x`` transactions
takes ``T = x`` time units sequentially.  Speed-up ``R`` is old time over
new time, ``T / T'``.

Single-transaction concurrency (§V-A, the Saraph–Herlihy two-phase
technique): run everything concurrently on ``n`` cores, then re-run the
``c·x`` conflicted transactions sequentially.

    T' = floor(x/n) + 1 + c·x                          (no prior knowledge)
    T' = K + floor((1-c)·x/n) + 1 + c·x                (perfect knowledge,
                                                        pre-processing K)
    R  = x / T'                                        (Eq. 1)

Group concurrency (§V-B): with the TDG known, each dependency group can
run on its own core; the LCC (relative size ``l``) is the critical path.

    R = min(n, 1/l)                                    (Eq. 2)
    R = min(x/(x/n + K), x/(l·x + K))                  (K-corrected)

The paper's worked examples (blocks 1000007 and 1000124 of Fig. 1) are
reproduced in the tests against these exact functions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.metrics import BlockMetrics


def _validate_common(x: int, n: int) -> None:
    if x < 0:
        raise ValueError("transaction count x must be non-negative")
    if n < 1:
        raise ValueError("core count n must be at least 1")


def _validate_rate(rate: float, name: str) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {rate}")


def speculative_time(x: int, n: int, c: float) -> float:
    """New execution time T' of the fully speculative two-phase scheme.

    Phase one executes all ``x`` transactions on ``n`` cores
    (``floor(x/n) + 1`` time units); phase two re-executes the ``c·x``
    conflicted ones sequentially.
    """
    _validate_common(x, n)
    _validate_rate(c, "conflict rate c")
    if x == 0:
        return 0.0
    return math.floor(x / n) + 1 + c * x


def speculative_speedup(x: int, n: int, c: float) -> float:
    """Eq. 1: R = x / (floor(x/n) + 1 + c·x)."""
    if x == 0:
        return 1.0
    return x / speculative_time(x, n, c)


def informed_time(x: int, n: int, c: float, k: float = 0.0) -> float:
    """T' with perfect prior knowledge of the conflicted set.

    Only the ``(1-c)·x`` unconflicted transactions run in the concurrent
    phase; the conflicted ``c·x`` run once, sequentially.  ``k`` is the
    cost of the pre-processing step that identifies the conflicted set.
    """
    _validate_common(x, n)
    _validate_rate(c, "conflict rate c")
    if k < 0:
        raise ValueError("pre-processing cost k must be non-negative")
    if x == 0:
        return 0.0
    return k + math.floor((1 - c) * x / n) + 1 + c * x


def informed_speedup(x: int, n: int, c: float, k: float = 0.0) -> float:
    """Perfect-information variant of Eq. 1."""
    if x == 0:
        return 1.0
    return x / informed_time(x, n, c, k)


def group_speedup_bound(n: int, l: float) -> float:
    """Eq. 2: the group-concurrency upper bound R = min(n, 1/l).

    ``l`` is the group conflict rate (relative LCC size).  ``l == 0``
    (an empty block) yields ``n``: with nothing on the critical path the
    core count is the only limit.
    """
    if n < 1:
        raise ValueError("core count n must be at least 1")
    _validate_rate(l, "group conflict rate l")
    if l == 0.0:
        return float(n)
    return min(float(n), 1.0 / l)


def group_speedup_with_overhead(x: int, n: int, l: float, k: float) -> float:
    """K-corrected group speed-up: min(x/(x/n + K), x/(l·x + K)).

    Accounts for the cost ``k`` of building the TDG and scheduling; the
    paper notes the correction is negligible when ``k`` is small against
    the block's total execution time.
    """
    _validate_common(x, n)
    _validate_rate(l, "group conflict rate l")
    if k < 0:
        raise ValueError("scheduling cost k must be non-negative")
    if x == 0:
        return 1.0
    core_bound = x / (x / n + k)
    path_bound = x / (l * x + k) if (l * x + k) > 0 else float(n)
    return min(core_bound, path_bound)


def speculative_time_exact(x: int, n: int, c: float) -> float:
    """Exact T' of the two-phase scheme, using ceil for phase one.

    Eq. 1 approximates the concurrent phase as ``floor(x/n) + 1``; when
    ``n`` divides ``x`` that over-counts by one unit.  The paper's worked
    examples (§V-A: speed-up 5/3 for block 1000007 with n >= 5, and
    16/15 for block 1000124 with n >= 16) use the exact phase length
    ``ceil(x/n)``, which this function implements.  The sequential phase
    re-runs the conflicted transactions, rounded to whole transactions.
    """
    _validate_common(x, n)
    _validate_rate(c, "conflict rate c")
    if x == 0:
        return 0.0
    return math.ceil(x / n) + round(c * x)


def speculative_speedup_exact(x: int, n: int, c: float) -> float:
    """Exact-counting counterpart of :func:`speculative_speedup`."""
    if x == 0:
        return 1.0
    return x / speculative_time_exact(x, n, c)


@dataclass(frozen=True)
class SpeedupEstimate:
    """Both models' predictions for one block at a given core count."""

    cores: int
    speculative: float
    informed: float
    group_bound: float

    @property
    def best(self) -> float:
        return max(self.speculative, self.informed, self.group_bound)


def estimate_block_speedups(
    metrics: BlockMetrics,
    cores: int,
    *,
    preprocessing_cost: float = 0.0,
    weighted: bool = False,
) -> SpeedupEstimate:
    """Apply all three models to one block's measured metrics.

    With ``weighted=True`` the gas-weighted conflict rates are used in
    place of the tx-count rates (cf. Fig. 4's thin lines).
    """
    x = metrics.num_transactions
    if weighted:
        c = metrics.weighted_single_conflict_rate
        l = metrics.weighted_group_conflict_rate
    else:
        c = metrics.single_conflict_rate
        l = metrics.group_conflict_rate
    return SpeedupEstimate(
        cores=cores,
        speculative=speculative_speedup(x, cores, c),
        informed=informed_speedup(x, cores, c, preprocessing_cost),
        group_bound=group_speedup_bound(cores, l),
    )
