"""Per-block concurrency metrics — paper §III-A3.

Two metrics quantify a block's concurrency (lower conflict = more
concurrency):

* **single-transaction conflict rate** ``c`` — conflicted transactions
  over total transactions;
* **group conflict rate** ``l`` — relative LCC size: largest dependency
  group over total transactions.

Both come in weighted variants.  With per-transaction weights (e.g. gas),
the rates become the conflicted / largest-group *share of weight*, which
is the mechanism behind the paper's observation that Ethereum's
gas-weighted single-transaction conflict rate runs below the
tx-count-weighted one (expensive contract creations rarely conflict).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.tdg import TDGResult


@dataclass(frozen=True)
class BlockMetrics:
    """Concurrency metrics of one block.

    Attributes:
        num_transactions: non-coinbase transactions in the block.
        num_conflicted: transactions in groups of size >= 2.
        lcc_size: largest dependency group size (absolute, transactions).
        total_weight: sum of transaction weights (tx count when weights
            are unit; gas when gas-weighted).
        conflicted_weight: weight carried by conflicted transactions.
        lcc_weight: weight of the heaviest dependency group.
    """

    num_transactions: int
    num_conflicted: int
    lcc_size: int
    total_weight: float
    conflicted_weight: float
    lcc_weight: float

    def __post_init__(self) -> None:
        if self.num_conflicted > self.num_transactions:
            raise ValueError("conflicted count exceeds transaction count")
        if self.lcc_size > self.num_transactions:
            raise ValueError("LCC size exceeds transaction count")

    @property
    def single_conflict_rate(self) -> float:
        """Unweighted single-transaction conflict rate ``c``."""
        if self.num_transactions == 0:
            return 0.0
        return self.num_conflicted / self.num_transactions

    @property
    def group_conflict_rate(self) -> float:
        """Unweighted group conflict rate ``l`` (relative LCC size)."""
        if self.num_transactions == 0:
            return 0.0
        return self.lcc_size / self.num_transactions

    @property
    def weighted_single_conflict_rate(self) -> float:
        """Share of block weight carried by conflicted transactions."""
        if self.total_weight == 0:
            return 0.0
        return self.conflicted_weight / self.total_weight

    @property
    def weighted_group_conflict_rate(self) -> float:
        """Share of block weight carried by the heaviest group."""
        if self.total_weight == 0:
            return 0.0
        return self.lcc_weight / self.total_weight

    @property
    def is_fully_concurrent(self) -> bool:
        """True when no two transactions in the block conflict."""
        return self.num_conflicted == 0


def compute_block_metrics(
    tdg: TDGResult,
    weights: Mapping[str, float] | None = None,
) -> BlockMetrics:
    """Derive :class:`BlockMetrics` from a block's TDG.

    Args:
        tdg: the block's dependency partition.
        weights: optional per-transaction weights (e.g. gas used).
            Missing entries default to 1.0; unit weights reduce the
            weighted rates to the unweighted ones.

    The *group conflict rate invariant* — group rate <= single rate —
    holds by construction whenever any group has size >= 2, since the
    LCC is a subset of the conflicted transactions; with no conflicts
    the single rate is 0 while the group rate is 1/x (a lone transaction
    is its own LCC).  Property tests pin this down.
    """

    def weight_of(tx_hash: str) -> float:
        if weights is None:
            return 1.0
        return float(weights.get(tx_hash, 1.0))

    total_weight = 0.0
    conflicted_weight = 0.0
    lcc_weight = 0.0
    for group in tdg.groups:
        group_weight = sum(weight_of(tx_hash) for tx_hash in group)
        total_weight += group_weight
        if len(group) > 1:
            conflicted_weight += group_weight
        lcc_weight = max(lcc_weight, group_weight)
    return BlockMetrics(
        num_transactions=tdg.num_transactions,
        num_conflicted=tdg.num_conflicted,
        lcc_size=tdg.lcc_size,
        total_weight=total_weight,
        conflicted_weight=conflicted_weight,
        lcc_weight=lcc_weight,
    )
