"""Weighted fixed-bucket aggregation of per-block series — paper §IV.

Every historical figure in the paper is produced the same way: the
per-block metric history is divided into a fixed number of equal-size
buckets (20 to 200), and within each bucket a *weighted* average is
computed, the weight being the block's transaction count or gas
consumption ("blocks having more transactions or consuming more should
be weighted more heavily, because they have a greater impact on the
total execution time").

:class:`BucketedSeries` is the common output consumed by the figure
builders and benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

Item = TypeVar("Item")


@dataclass(frozen=True)
class BucketedSeries:
    """A bucketed, weighted-average time series.

    Attributes:
        positions: representative x-coordinate per bucket (mean of the
            member blocks' positions, e.g. timestamps or heights).
        values: weighted mean of the metric within each bucket.
        weights: total weight per bucket.
        counts: number of blocks per bucket.
    """

    positions: tuple[float, ...]
    values: tuple[float, ...]
    weights: tuple[float, ...]
    counts: tuple[int, ...]

    def __post_init__(self) -> None:
        lengths = {
            len(self.positions),
            len(self.values),
            len(self.weights),
            len(self.counts),
        }
        if len(lengths) != 1:
            raise ValueError("series fields must have equal length")

    def __len__(self) -> int:
        return len(self.values)

    @property
    def overall_mean(self) -> float:
        """Weight-combined mean across all buckets."""
        total_weight = sum(self.weights)
        if total_weight == 0:
            return 0.0
        return (
            sum(value * weight for value, weight in zip(self.values, self.weights))
            / total_weight
        )

    def tail_mean(self, buckets: int = 3) -> float:
        """Weighted mean of the final *buckets* buckets (steady state)."""
        if buckets < 1:
            raise ValueError("buckets must be positive")
        tail_values = self.values[-buckets:]
        tail_weights = self.weights[-buckets:]
        total = sum(tail_weights)
        if total == 0:
            return 0.0
        return sum(v * w for v, w in zip(tail_values, tail_weights)) / total


def bucketize(
    items: Sequence[Item],
    *,
    num_buckets: int,
    value: Callable[[Item], float],
    weight: Callable[[Item], float] = lambda _item: 1.0,
    position: Callable[[Item], float] | None = None,
) -> BucketedSeries:
    """Divide *items* (already in chain order) into equal-size buckets.

    Args:
        items: per-block records, oldest first.
        num_buckets: number of buckets; clamped to ``len(items)`` so a
            short history yields one block per bucket.
        value: metric extractor.
        weight: weight extractor (tx count, gas, block bytes, ...).
            Zero-weight buckets fall back to the unweighted mean.
        position: x-coordinate extractor; defaults to the item index.

    Raises:
        ValueError: for an empty history or non-positive bucket count.
    """
    if not items:
        raise ValueError("cannot bucketize an empty history")
    if num_buckets < 1:
        raise ValueError("num_buckets must be positive")
    num_buckets = min(num_buckets, len(items))

    positions: list[float] = []
    values: list[float] = []
    weights: list[float] = []
    counts: list[int] = []
    total = len(items)
    for bucket_index in range(num_buckets):
        start = bucket_index * total // num_buckets
        stop = (bucket_index + 1) * total // num_buckets
        members = items[start:stop]
        if not members:
            continue
        member_weights = [weight(item) for item in members]
        member_values = [value(item) for item in members]
        bucket_weight = sum(member_weights)
        if bucket_weight > 0:
            mean = (
                sum(v * w for v, w in zip(member_values, member_weights))
                / bucket_weight
            )
        else:
            mean = sum(member_values) / len(member_values)
        if position is not None:
            bucket_position = sum(position(item) for item in members) / len(members)
        else:
            bucket_position = (start + stop - 1) / 2.0
        positions.append(bucket_position)
        values.append(mean)
        weights.append(bucket_weight)
        counts.append(len(members))
    return BucketedSeries(
        positions=tuple(positions),
        values=tuple(values),
        weights=tuple(weights),
        counts=tuple(counts),
    )
