"""Intra-transaction concurrency — the paper's third §VII source.

The paper's conclusion lists "intra-transaction" concurrency as another
unexplored source: a single transaction's internal call tree may itself
contain parallelism (sibling subtrees that touch disjoint state can
execute concurrently).

This module reconstructs the call tree from a receipt's internal
transactions (using their depths and order, the same information geth
traces carry), determines which sibling subtrees are independent (no
shared touched address), and computes:

* the tree's *critical path* (depth-wise cost that must be sequential);
* total work vs. critical path = the transaction's internal speed-up
  potential, analogous to 1/l at block level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.account.receipts import ExecutedTransaction


@dataclass
class CallNode:
    """A node of a transaction's call tree."""

    sender: str
    receiver: str
    cost: float = 1.0
    children: list["CallNode"] = field(default_factory=list)

    def subtree_addresses(self) -> set[str]:
        """Addresses whose state this subtree touches.

        Receivers only: an internal call's sender is its parent's
        receiver, already accounted for one level up — including it
        here would spuriously serialise every sibling fan-out.
        """
        touched = {self.receiver}
        for child in self.children:
            touched |= child.subtree_addresses()
        return touched

    def total_work(self) -> float:
        return self.cost + sum(child.total_work() for child in self.children)

    def critical_path(self) -> float:
        """Minimum completion time with unlimited cores.

        Children that touch overlapping address sets must serialise;
        independent children run in parallel.  Greedy grouping: scan
        children in call order, chaining a child onto the earliest
        conflicting predecessor group (conservative but safe).
        """
        if not self.children:
            return self.cost
        # Partition children into conflict groups (union by overlap).
        groups: list[tuple[set[str], float]] = []
        for child in self.children:
            addresses = child.subtree_addresses()
            path = child.critical_path()
            merged = False
            for index, (group_addresses, group_path) in enumerate(groups):
                if group_addresses & addresses:
                    groups[index] = (
                        group_addresses | addresses,
                        group_path + path,  # serialised within the group
                    )
                    merged = True
                    break
            if not merged:
                groups.append((addresses, path))
        return self.cost + max(path for _addresses, path in groups)


def build_call_tree(item: ExecutedTransaction) -> CallNode:
    """Reconstruct the call tree of one executed transaction.

    The root is the top-level message call; internal transactions
    attach under the most recent node one depth level up, which is
    exactly how geth's depth-annotated flat traces nest.
    """
    root = CallNode(sender=item.tx.sender, receiver=item.tx.receiver)
    # Stack of the latest node at each depth; depth 1 = root.
    latest: dict[int, CallNode] = {1: root}
    for internal in item.receipt.internal_transactions:
        node = CallNode(sender=internal.sender, receiver=internal.receiver)
        parent = latest.get(internal.depth - 1, root)
        parent.children.append(node)
        latest[internal.depth] = node
    return root


@dataclass(frozen=True)
class IntraTxConcurrency:
    """Concurrency accounting for one transaction's call tree."""

    tx_hash: str
    total_work: float
    critical_path: float

    @property
    def speedup_potential(self) -> float:
        """Total work over critical path (>= 1)."""
        if self.critical_path == 0:
            return 1.0
        return self.total_work / self.critical_path

    @property
    def is_sequential(self) -> bool:
        return self.speedup_potential <= 1.0 + 1e-12


def analyze_intra_tx(item: ExecutedTransaction) -> IntraTxConcurrency:
    """Measure one transaction's internal concurrency."""
    tree = build_call_tree(item)
    return IntraTxConcurrency(
        tx_hash=item.tx_hash,
        total_work=tree.total_work(),
        critical_path=tree.critical_path(),
    )


def block_intra_tx_potential(
    executed: list[ExecutedTransaction],
) -> float:
    """Work-weighted mean intra-tx speed-up potential of a block.

    1.0 means no internal parallelism anywhere; values above 1 bound
    the extra factor available *inside* transactions, on top of the
    paper's inter-transaction speed-ups.
    """
    total_work = 0.0
    weighted = 0.0
    for item in executed:
        if item.is_coinbase:
            continue
        result = analyze_intra_tx(item)
        total_work += result.total_work
        weighted += result.speedup_potential * result.total_work
    if total_work == 0:
        return 1.0
    return weighted / total_work
