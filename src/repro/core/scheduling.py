"""Multiprocessor scheduling of dependency groups — paper §V-B.

Executing a block's dependency groups on ``n`` cores is exactly the
multiprocessor scheduling problem (minimise makespan of independent
jobs), which the paper notes is NP-hard (ref. [11]).  The paper settles
for the upper bound ``min(n, 1/l)``; this module supplies the machinery
to check how tight that bound is in practice:

* :func:`makespan_lower_bound` — max(critical path, total work / n);
* :func:`list_schedule` — greedy list scheduling in given order
  (Graham's bound: <= 2 - 1/n of optimal);
* :func:`lpt_schedule` — Longest Processing Time first
  (<= 4/3 - 1/(3n) of optimal);
* :func:`optimal_makespan` — exact branch-and-bound for small inputs,
  used by tests to certify the heuristics.

Job sizes are the group sizes of a :class:`repro.core.tdg.TDGResult`
(unit-cost transactions) or group weights (gas-weighted variant).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Schedule:
    """An assignment of jobs to cores.

    Attributes:
        assignments: per-core tuples of job indices (into the original
            job-size sequence).
        makespan: completion time of the busiest core.
        cores: number of cores scheduled onto.
    """

    assignments: tuple[tuple[int, ...], ...]
    makespan: float
    cores: int

    def core_loads(self, sizes: Sequence[float]) -> list[float]:
        """Total work assigned to each core."""
        return [
            sum(sizes[index] for index in core_jobs)
            for core_jobs in self.assignments
        ]


def _validate(sizes: Sequence[float], cores: int) -> None:
    if cores < 1:
        raise ValueError("cores must be at least 1")
    for size in sizes:
        if size < 0:
            raise ValueError("job sizes must be non-negative")


def makespan_lower_bound(sizes: Sequence[float], cores: int) -> float:
    """max(longest job, total work / cores) — no schedule beats this."""
    _validate(sizes, cores)
    if not sizes:
        return 0.0
    return max(max(sizes), sum(sizes) / cores)


def list_schedule(sizes: Sequence[float], cores: int) -> Schedule:
    """Greedy list scheduling: each job goes to the least-loaded core.

    Processes jobs in the order given, which for a block means the order
    dependency groups appear — the policy an executor gets "for free".
    """
    _validate(sizes, cores)
    heap: list[tuple[float, int]] = [(0.0, core) for core in range(cores)]
    heapq.heapify(heap)
    assignments: list[list[int]] = [[] for _ in range(cores)]
    for index, size in enumerate(sizes):
        load, core = heapq.heappop(heap)
        assignments[core].append(index)
        heapq.heappush(heap, (load + size, core))
    makespan = max(load for load, _ in heap) if heap else 0.0
    return Schedule(
        assignments=tuple(tuple(core_jobs) for core_jobs in assignments),
        makespan=makespan,
        cores=cores,
    )


def lpt_schedule(sizes: Sequence[float], cores: int) -> Schedule:
    """Longest Processing Time first: sort descending, then greedy.

    The classic 4/3-approximation; the natural policy when the TDG (and
    therefore every group size) is known before execution starts.
    """
    _validate(sizes, cores)
    order = sorted(range(len(sizes)), key=lambda index: -sizes[index])
    ordered_sizes = [sizes[index] for index in order]
    greedy = list_schedule(ordered_sizes, cores)
    assignments = tuple(
        tuple(order[position] for position in core_jobs)
        for core_jobs in greedy.assignments
    )
    return Schedule(
        assignments=assignments, makespan=greedy.makespan, cores=cores
    )


def optimal_makespan(
    sizes: Sequence[float],
    cores: int,
    *,
    max_jobs: int = 16,
) -> float:
    """Exact minimum makespan via branch-and-bound (small inputs only).

    Raises:
        ValueError: when more than *max_jobs* jobs are given — the
            search is exponential and intended for test certification.
    """
    _validate(sizes, cores)
    if len(sizes) > max_jobs:
        raise ValueError(
            f"optimal_makespan limited to {max_jobs} jobs, got {len(sizes)}"
        )
    if not sizes:
        return 0.0
    ordered = sorted(sizes, reverse=True)
    best = lpt_schedule(ordered, cores).makespan
    lower = makespan_lower_bound(ordered, cores)
    if best <= lower:
        return best
    loads = [0.0] * cores

    def search(index: int) -> None:
        nonlocal best
        if index == len(ordered):
            best = min(best, max(loads))
            return
        size = ordered[index]
        tried: set[float] = set()
        for core in range(cores):
            if loads[core] in tried:
                # Symmetric branch: same load on another core.
                continue
            tried.add(loads[core])
            if loads[core] + size >= best:
                continue
            loads[core] += size
            search(index + 1)
            loads[core] -= size
            if best <= lower:
                return

    search(0)
    return best


def scheduled_speedup(
    group_sizes: Sequence[float],
    cores: int,
    *,
    policy: str = "lpt",
    overhead: float = 0.0,
) -> float:
    """Realised speed-up of scheduling a block's groups on *cores* cores.

    This is the *achievable* counterpart of the paper's ``min(n, 1/l)``
    bound: total sequential work divided by the scheduled makespan plus
    any TDG-construction overhead.

    Args:
        group_sizes: dependency group sizes (or weights).
        cores: number of cores.
        policy: "lpt", "list", or "optimal".
        overhead: additive scheduling/TDG cost in time units (the K of
            §V-B).
    """
    total = float(sum(group_sizes))
    if total == 0:
        return 1.0
    if policy == "lpt":
        makespan = lpt_schedule(group_sizes, cores).makespan
    elif policy == "list":
        makespan = list_schedule(group_sizes, cores).makespan
    elif policy == "optimal":
        makespan = optimal_makespan(group_sizes, cores)
    else:
        raise ValueError(f"unknown policy {policy!r}")
    return total / (makespan + overhead)
