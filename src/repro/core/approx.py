"""Approximate TDGs from regular transactions only — paper §V-C.

Exploiting group concurrency needs the TDG, but "the TDG uses
information about internal transactions that is not available a priori.
Nevertheless, an approximate TDG can be constructed by only using
information about the regular transactions.  Quantifying the
effectiveness of such an approach is left to future work."  This module
is that future work.

:func:`approximate_account_tdg` builds the TDG from each transaction's
top-level (sender, receiver) edge alone.  Because dropping edges can
only *split* components, the approximation under-merges: transactions
that truly conflict (through internal calls) may land in different
approximate groups.  A scheduler driven by the approximate TDG
therefore needs a conflict-detection fallback at execution time; the
quality metrics below quantify how often that fallback fires and how
much of the true speed-up survives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.account.receipts import ExecutedTransaction
from repro.core.tdg import TDGResult, account_tdg, account_tdg_from_edges


def approximate_account_tdg(
    executed: Sequence[ExecutedTransaction],
) -> TDGResult:
    """TDG built from regular (top-level) edges only.

    The a-priori view a scheduler has before executing anything: the
    block's transaction list gives senders and receivers, but none of
    the internal transactions that execution will generate.
    """
    tx_edges = {
        item.tx_hash: (item.edges()[:1] if item.edges() else [])
        for item in executed
        if not item.is_coinbase
    }
    return account_tdg_from_edges(tx_edges)


@dataclass(frozen=True)
class ApproximationQuality:
    """How well the approximate TDG predicts the true one.

    The true TDG's partition is always a *coarsening* of the
    approximate one (extra edges only merge groups), so quality reduces
    to how much merging the approximation misses.

    Attributes:
        num_transactions: block size (non-coinbase).
        true_groups / approx_groups: partition sizes.
        missed_pairs: conflicting transaction pairs the approximation
            separates — each is a potential runtime conflict between
            two concurrently scheduled groups.
        pair_recall: fraction of truly-conflicting pairs the
            approximation keeps together (1.0 = perfect).
        true_lcc / approx_lcc: LCC sizes under each view.
        predicted_speedup_ratio: (1/l_approx) / (1/l_true) — how much
            the approximation *over-promises* speed-up (>= 1.0).
    """

    num_transactions: int
    true_groups: int
    approx_groups: int
    missed_pairs: int
    pair_recall: float
    true_lcc: int
    approx_lcc: int

    @property
    def predicted_speedup_ratio(self) -> float:
        if self.true_lcc == 0 or self.approx_lcc == 0:
            return 1.0
        return self.true_lcc / self.approx_lcc

    @property
    def is_exact(self) -> bool:
        return self.missed_pairs == 0


def _pair_count(sizes: list[int]) -> int:
    return sum(size * (size - 1) // 2 for size in sizes)


def assess_approximation(
    true_tdg: TDGResult, approx_tdg: TDGResult
) -> ApproximationQuality:
    """Compare an approximate TDG against the ground-truth TDG.

    Raises:
        ValueError: when the two TDGs do not cover the same
            transactions, or the approximation is not a refinement of
            the truth (which would indicate it used edges that do not
            exist).
    """
    true_of: dict[str, int] = {}
    for index, group in enumerate(true_tdg.groups):
        for tx_hash in group:
            true_of[tx_hash] = index
    approx_hashes = {h for group in approx_tdg.groups for h in group}
    if approx_hashes != set(true_of):
        raise ValueError("TDGs cover different transaction sets")

    # Refinement check + per-true-group fragment sizes.
    fragments: dict[int, list[int]] = {}
    for group in approx_tdg.groups:
        owners = {true_of[tx_hash] for tx_hash in group}
        if len(owners) != 1:
            raise ValueError(
                "approximate TDG merges transactions the true TDG separates"
            )
        fragments.setdefault(owners.pop(), []).append(len(group))

    true_pairs = _pair_count([len(g) for g in true_tdg.groups])
    kept_pairs = _pair_count([len(g) for g in approx_tdg.groups])
    missed = true_pairs - kept_pairs
    recall = 1.0 if true_pairs == 0 else kept_pairs / true_pairs
    return ApproximationQuality(
        num_transactions=true_tdg.num_transactions,
        true_groups=len(true_tdg.groups),
        approx_groups=len(approx_tdg.groups),
        missed_pairs=missed,
        pair_recall=recall,
        true_lcc=true_tdg.lcc_size,
        approx_lcc=approx_tdg.lcc_size,
    )


def assess_block(
    executed: Sequence[ExecutedTransaction],
) -> ApproximationQuality:
    """One-call §V-C assessment for an executed block."""
    return assess_approximation(
        account_tdg(executed), approximate_account_tdg(executed)
    )


def corrected_group_speedup(
    quality: ApproximationQuality,
    cores: int,
    *,
    conflict_penalty: float = 1.0,
) -> float:
    """Realisable speed-up when scheduling by the approximate TDG.

    Scheduling approximate groups concurrently risks runtime conflicts
    between fragments of the same true group; each missed pair costs
    ``conflict_penalty`` time units of serialisation/retry (an OCC-like
    fallback).  The result interpolates between the optimistic
    ``min(n, 1/l_approx)`` and the degenerate fully-penalised case.
    """
    if cores < 1:
        raise ValueError("cores must be at least 1")
    if conflict_penalty < 0:
        raise ValueError("conflict_penalty must be non-negative")
    x = quality.num_transactions
    if x == 0:
        return 1.0
    # Optimistic makespan from the approximate view, floored by the
    # true critical path (fragments of a true group still conflict at
    # runtime and end up serialised by the fallback).
    optimistic = max(x / cores, float(quality.approx_lcc))
    makespan = max(optimistic, float(quality.true_lcc))
    makespan += conflict_penalty * quality.missed_pairs / max(1, cores)
    return x / makespan
