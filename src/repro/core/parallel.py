"""Parallel block-analysis backend — fan per-block TDG work over workers.

The paper's headline measurement (per-block TDG construction plus the
conflict metrics of Figs. 4-9) is embarrassingly parallel across blocks:
each block's analysis reads only that block's transactions and touches
no shared ledger state.  This module exploits that purity.  A chain's
blocks are partitioned into contiguous chunks, each chunk is analyzed by
:func:`repro.core.pipeline.analyze_utxo_block` /
:func:`~repro.core.pipeline.analyze_account_block` inside a worker, and
the resulting :class:`~repro.core.pipeline.BlockRecord` lists are
reassembled in height order into a :class:`~repro.core.pipeline.ChainHistory`
that is value-identical to the serial walk.

Three backends share one code path:

* ``"process"`` (the parallel default) — a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Where the platform
  forks (Linux), the block inputs are published in a module global
  *before* the pool starts, so workers inherit them through fork and the
  parent ships only ``(start, stop)`` index pairs — transaction payloads
  are never pickled, only the small records come back.  On spawn-only
  platforms the chunks are pickled explicitly.
* ``"thread"`` — a :class:`concurrent.futures.ThreadPoolExecutor`;
  useful under free-threaded/NumPy-heavy workloads and as the automatic
  fallback when a process pool cannot start (sandboxes without
  ``sem_open``).
* ``"serial"`` — the plain in-process loop, byte-identical in behaviour
  (spans, counters, records) to the original serial pipeline.

Determinism contract: per-block analysis is pure, chunking only changes
*where* a block is analyzed, and reassembly is by chunk index — so the
output history is identical regardless of backend, worker count, or
chunk size.  ``tests/core/test_parallel.py`` and the golden-regression
suite enforce this.

Observability (parent process only; see ``docs/parallel_pipeline.md``):

* span ``pipeline.parallel.run`` wrapping the fan-out, with per-chunk
  ``pipeline.parallel.chunk`` spans whose ``worker_seconds`` attribute
  carries the in-worker wall time;
* counters ``pipeline.parallel.runs`` / ``.chunks`` / ``.blocks`` /
  ``.fallbacks`` and gauge ``pipeline.parallel.jobs`` (all labelled by
  backend);
* histogram ``pipeline.parallel.chunk_seconds`` of in-worker chunk times;
* chunk-granularity flight-recorder events (``pipeline.<backend>``
  executor, one schedule/start/commit triple per chunk, clocks in real
  seconds since collection began).

The per-block ``pipeline.blocks`` / ``tdg.*`` instrumentation fires
inside the worker.  In-process backends (``serial``, ``thread``) record
straight into the installed registry; under the ``process`` backend each
chunk runs inside a private worker registry whose lossless dump rides
back with the chunk result and is merged into the parent registry at join
(counters sum, histogram observations concatenate), so metric totals
match the serial walk for every backend.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro import obs
from repro.chain.block import Block
from repro.core.pipeline import (
    BlockRecord,
    ChainHistory,
    analyze_account_block,
    analyze_utxo_block,
)

BACKENDS = ("serial", "thread", "process")
DEFAULT_BACKEND = "process"
# Chunks per worker: >1 so stragglers rebalance, small enough that the
# per-chunk dispatch overhead stays negligible.
CHUNKS_PER_JOB = 4

DATA_MODELS = ("utxo", "account")


@dataclass(frozen=True)
class BlockInput:
    """Pure, picklable description of one block's analysis input.

    ``payload`` is the block's transaction sequence —
    ``UTXOTransaction`` objects for UTXO chains,
    ``ExecutedTransaction`` objects for account chains.  Nothing here
    references shared ledger state, which is what lets a worker analyze
    the block in isolation.
    """

    height: int
    timestamp: float
    payload: tuple


# -- argument validation ------------------------------------------------------


def validate_backend(backend: str) -> str:
    """Return *backend* normalised, or raise a clear :class:`ValueError`."""
    if backend not in BACKENDS:
        known = ", ".join(BACKENDS)
        raise ValueError(
            f"unknown backend {backend!r}; expected one of: {known}"
        )
    return backend


def validate_jobs(jobs: int | None, *, backend: str = DEFAULT_BACKEND) -> int:
    """Resolve *jobs* (None -> cpu count; serial -> 1) or raise ValueError."""
    if jobs is None:
        if backend == "serial":
            return 1
        return os.cpu_count() or 1
    if not isinstance(jobs, int) or isinstance(jobs, bool):
        raise ValueError(f"jobs must be an integer >= 1, got {jobs!r}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def validate_chunk_size(chunk_size: int | None, *, num_blocks: int,
                        jobs: int) -> int:
    """Resolve *chunk_size* (None -> a balanced default) or raise."""
    if chunk_size is None:
        return default_chunk_size(num_blocks, jobs)
    if not isinstance(chunk_size, int) or isinstance(chunk_size, bool):
        raise ValueError(
            f"chunk_size must be an integer >= 1, got {chunk_size!r}"
        )
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return chunk_size


def default_chunk_size(num_blocks: int, jobs: int) -> int:
    """Blocks per chunk targeting :data:`CHUNKS_PER_JOB` chunks per worker."""
    if num_blocks <= 0:
        return 1
    target_chunks = max(jobs * CHUNKS_PER_JOB, 1)
    return max(1, -(-num_blocks // target_chunks))


def chunk_bounds(num_blocks: int, chunk_size: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` index pairs covering ``range(num_blocks)``."""
    return [
        (start, min(start + chunk_size, num_blocks))
        for start in range(0, num_blocks, chunk_size)
    ]


# -- input coercion -----------------------------------------------------------


def utxo_block_inputs(ledger: Iterable[Block]) -> list[BlockInput]:
    """Snapshot a UTXO ledger's blocks as pure analysis inputs."""
    return [
        BlockInput(
            height=block.height,
            timestamp=block.header.timestamp,
            payload=tuple(block.transactions),
        )
        for block in ledger
    ]


def account_block_inputs(
    blocks: Iterable[tuple[Block, Sequence]],
) -> list[BlockInput]:
    """Snapshot (block, executed transactions) pairs as analysis inputs."""
    return [
        BlockInput(
            height=block.height,
            timestamp=block.header.timestamp,
            payload=tuple(executed),
        )
        for block, executed in blocks
    ]


def coerce_block_inputs(source, data_model: str) -> list[BlockInput]:
    """Accept a ledger / (block, executed) iterable / BlockInput list."""
    items = list(source)
    if all(isinstance(item, BlockInput) for item in items):
        return items
    if data_model == "utxo":
        return utxo_block_inputs(items)
    return account_block_inputs(items)


# -- worker-side chunk analysis ----------------------------------------------

# Inputs published to forked workers: set in the parent immediately
# before the pool starts, inherited through fork, cleared after.  This
# keeps transaction payloads out of the request pickle entirely; only
# (start, stop) pairs go down and only BlockRecords come back.
_FORK_INPUTS: list[BlockInput] | None = None
_FORK_MODEL: str | None = None


def _analyze_block(data_model: str, item: BlockInput) -> BlockRecord:
    if data_model == "utxo":
        record, _tdg = analyze_utxo_block(
            item.payload, height=item.height, timestamp=item.timestamp
        )
    else:
        record, _tdg = analyze_account_block(
            item.payload, height=item.height, timestamp=item.timestamp
        )
    return record


def analyze_chunk(
    data_model: str, chunk: Sequence[BlockInput]
) -> tuple[list[BlockRecord], float]:
    """Analyze one chunk of blocks; returns (records, elapsed seconds).

    This is the unit of work every backend executes.  It is pure: the
    records depend only on *chunk*, never on shared mutable state, so a
    chunk can run in any process at any time with an identical result.
    """
    started = time.perf_counter()
    records = [_analyze_block(data_model, item) for item in chunk]
    return records, time.perf_counter() - started


class ChunkResult:
    """What a worker ships back for one chunk.

    ``obs_dump`` is the worker-local registry dump (see
    :meth:`repro.obs.metrics.MetricsRegistry.dump`) when the chunk ran
    with worker-side recording (process backend under an instrumented
    parent), else ``None``; ``worker_id`` identifies the worker (pid for
    processes, thread id for threads) so the parent can map chunks onto
    stable flight-recorder lanes.
    """

    __slots__ = ("records", "elapsed", "worker_id", "obs_dump")

    def __init__(self, records: list[BlockRecord], elapsed: float,
                 worker_id: int, obs_dump: list[dict] | None):
        self.records = records
        self.elapsed = elapsed
        self.worker_id = worker_id
        self.obs_dump = obs_dump


def _worker_init() -> None:
    """Process-pool worker initializer.

    ``gc.freeze()`` moves the heap inherited through fork into the
    permanent generation, so the worker's cyclic GC never traverses the
    parent's (potentially millions of) chain objects.  Without this,
    every gen-2 collection triggered by analysis allocations rescans the
    whole inherited heap and also breaks copy-on-write sharing —
    measured at ~5x wall-time overhead on a 2k-block chain.

    ``obs.uninstall()`` drops any recording registry/tracer inherited
    from an instrumented parent: recording into it would be invisible to
    the parent anyway (the fork copy dies with the worker).  When the
    parent *is* instrumented it instead asks for worker-side recording
    per chunk (``record_obs=True``), which scopes a private registry
    around the chunk and ships its dump back for merging at join.
    """
    import gc

    gc.freeze()
    obs.uninstall()


def _run_chunk(
    data_model: str, chunk: Sequence[BlockInput],
    record_obs: bool | str
) -> ChunkResult:
    """Analyze a chunk, optionally under a private worker registry.

    ``record_obs`` is falsy (no worker-side recording) or the parent
    registry's *policy string* (``"exact"`` / ``"sketch"``): the worker
    builds its private registry under the same policy, so a
    sketch-policy parent merges sketch dumps instead of re-inflating
    raw observations.  Plain ``True`` keeps the historical meaning
    (exact policy).
    """
    from repro.obs.metrics import MetricsRegistry

    worker_id = os.getpid()
    if record_obs and not obs.get_registry().enabled:
        policy = record_obs if isinstance(record_obs, str) else "exact"
        with obs.instrumented(
            registry=MetricsRegistry(policy=policy)
        ) as state:
            records, elapsed = analyze_chunk(data_model, chunk)
        dump = state.registry.dump()
        return ChunkResult(records, elapsed, worker_id, dump)
    records, elapsed = analyze_chunk(data_model, chunk)
    return ChunkResult(records, elapsed, worker_id, None)


def _analyze_chunk_by_range(
    start: int, stop: int, record_obs: bool | str = False
) -> ChunkResult:
    """Fork-path worker entry: slice the inherited inputs by index."""
    assert _FORK_INPUTS is not None and _FORK_MODEL is not None
    return _run_chunk(_FORK_MODEL, _FORK_INPUTS[start:stop], record_obs)


def _analyze_chunk_explicit(
    data_model: str, chunk: Sequence[BlockInput],
    record_obs: bool | str = False
) -> ChunkResult:
    """Spawn-path / thread-pool worker entry: chunk shipped explicitly."""
    return _run_chunk(data_model, chunk, record_obs)


# -- the fan-out itself -------------------------------------------------------


def _collect_ordered(futures, *, backend: str,
                     bounds: Sequence[tuple[int, int]]) -> list[BlockRecord]:
    """Gather chunk futures in submission (= height) order, recording obs.

    Joins three observability streams in the parent: the per-chunk
    span/histogram family, any worker-side registry dumps (merged into
    the installed registry, closing the process-backend blind spot), and
    chunk-granularity flight-recorder events.  Timeline clocks here are
    *real seconds* since collection began (the pipeline has no simulated
    cost units); a chunk's ``start`` is inferred as arrival time minus
    its in-worker elapsed, and lanes index distinct worker ids in order
    of first appearance.
    """
    from repro.obs.timeline import QUEUE_LANE

    seconds = obs.histogram("pipeline.parallel.chunk_seconds",
                            backend=backend)
    registry = obs.get_registry()
    recorder = obs.get_recorder()
    executor_name = f"pipeline.{backend}"
    lanes: dict[int, int] = {}
    collect_start = time.perf_counter()
    records: list[BlockRecord] = []
    for index, future in enumerate(futures):
        start, stop = bounds[index]
        with obs.trace_span(
            "pipeline.parallel.chunk",
            index=index, start=start, blocks=stop - start, backend=backend,
        ) as span:
            result = future.result()
            span.set(worker_seconds=round(result.elapsed, 6))
        seconds.observe(result.elapsed)
        if result.obs_dump is not None:
            registry.merge_dump(result.obs_dump)
        if recorder.enabled:
            lane = lanes.setdefault(result.worker_id, len(lanes))
            arrival = time.perf_counter() - collect_start
            begun = max(0.0, arrival - result.elapsed)
            task = f"chunk[{start}:{stop})"
            recorder.extend([
                (executor_name, None, 0, "schedule", task, QUEUE_LANE,
                 0.0, 0.0),
                (executor_name, None, 0, "start", task, lane,
                 begun, result.elapsed),
                (executor_name, None, 0, "commit", task, lane,
                 arrival, result.elapsed),
            ])
        records.extend(result.records)
    return records


def _run_process_pool(
    inputs: list[BlockInput],
    data_model: str,
    bounds: list[tuple[int, int]],
    jobs: int,
) -> list[BlockRecord]:
    """Fan chunks over a process pool, fork-sharing inputs when possible."""
    global _FORK_INPUTS, _FORK_MODEL
    # Lazy import: keeps serial/thread paths usable even where the
    # multiprocessing primitives are unavailable (the caller catches the
    # failure and falls back).
    from concurrent.futures import ProcessPoolExecutor

    try:
        context = multiprocessing.get_context("fork")
        fork_sharing = True
    except ValueError:
        context = multiprocessing.get_context()
        fork_sharing = False

    # Workers start with obs uninstalled (_worker_init); when the parent
    # is instrumented, ask each chunk to record into a private worker
    # registry whose dump is merged back at join.  The parent's policy
    # string rides along so sketch-policy sweeps stay bounded-memory on
    # both sides of the pool.
    parent_registry = obs.get_registry()
    record_obs: bool | str = (
        parent_registry.policy if parent_registry.enabled else False
    )

    if fork_sharing:
        _FORK_INPUTS, _FORK_MODEL = inputs, data_model
    try:
        with ProcessPoolExecutor(
            max_workers=jobs, mp_context=context, initializer=_worker_init
        ) as pool:
            if fork_sharing:
                futures = [
                    pool.submit(
                        _analyze_chunk_by_range, start, stop, record_obs
                    )
                    for start, stop in bounds
                ]
            else:
                futures = [
                    pool.submit(
                        _analyze_chunk_explicit, data_model,
                        inputs[start:stop], record_obs,
                    )
                    for start, stop in bounds
                ]
            return _collect_ordered(
                futures, backend="process", bounds=bounds
            )
    finally:
        if fork_sharing:
            _FORK_INPUTS, _FORK_MODEL = None, None


def _run_thread_pool(
    inputs: list[BlockInput],
    data_model: str,
    bounds: list[tuple[int, int]],
    jobs: int,
) -> list[BlockRecord]:
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        futures = [
            pool.submit(
                _analyze_chunk_explicit, data_model, inputs[start:stop]
            )
            for start, stop in bounds
        ]
        return _collect_ordered(futures, backend="thread", bounds=bounds)


def analyze_chain(
    source,
    *,
    data_model: str,
    name: str,
    start_year: float = 0.0,
    backend: str = DEFAULT_BACKEND,
    jobs: int | None = None,
    chunk_size: int | None = None,
) -> ChainHistory:
    """Analyze a chain's blocks into a :class:`ChainHistory`, maybe in parallel.

    Args:
        source: a UTXO :class:`~repro.chain.ledger.Ledger` (or iterable
            of blocks), an iterable of ``(block, executed)`` pairs for
            account chains, or a pre-built :class:`BlockInput` list.
        data_model: ``"utxo"`` or ``"account"``.
        name: chain name for the history.
        start_year: calendar anchor, as in :class:`ChainHistory`.
        backend: ``"process"`` (default), ``"thread"`` or ``"serial"``.
        jobs: worker count; defaults to the CPU count (1 for serial).
        chunk_size: blocks per work unit; defaults to a balanced value
            (:data:`CHUNKS_PER_JOB` chunks per worker).

    Raises:
        ValueError: on an unknown backend / data model, ``jobs < 1`` or
            ``chunk_size < 1`` — mirroring the CLI's exit-2 contract.

    The returned history is identical for every (backend, jobs,
    chunk_size) combination; a process pool that cannot start degrades
    to the thread backend (counted in ``pipeline.parallel.fallbacks``).
    """
    if data_model not in DATA_MODELS:
        raise ValueError(f"unknown data model {data_model!r}")
    backend = validate_backend(backend)
    jobs = validate_jobs(jobs, backend=backend)
    inputs = coerce_block_inputs(source, data_model)
    chunk_size = validate_chunk_size(
        chunk_size, num_blocks=len(inputs), jobs=jobs
    )

    history = ChainHistory(
        name=name, data_model=data_model, start_year=start_year
    )
    with obs.trace_span("pipeline.chain", chain=name, model=data_model):
        if backend == "serial":
            for item in inputs:
                history.append(_analyze_block(data_model, item))
            return history

        bounds = chunk_bounds(len(inputs), chunk_size)
        with obs.trace_span(
            "pipeline.parallel.run",
            backend=backend, jobs=jobs, chunks=len(bounds),
            blocks=len(inputs),
        ):
            obs.counter("pipeline.parallel.runs", backend=backend).inc()
            obs.counter(
                "pipeline.parallel.chunks", backend=backend
            ).inc(len(bounds))
            obs.counter(
                "pipeline.parallel.blocks", backend=backend
            ).inc(len(inputs))
            obs.gauge("pipeline.parallel.jobs", backend=backend).set(jobs)
            if backend == "process":
                try:
                    records = _run_process_pool(
                        inputs, data_model, bounds, jobs
                    )
                except (ImportError, NotImplementedError, OSError,
                        PermissionError):
                    # Sandboxes without sem_open / fork; chunk purity
                    # makes the in-process retry safe.
                    obs.counter(
                        "pipeline.parallel.fallbacks", backend="process"
                    ).inc()
                    records = _run_thread_pool(
                        inputs, data_model, bounds, jobs
                    )
            else:
                records = _run_thread_pool(inputs, data_model, bounds, jobs)
        for record in records:
            history.append(record)
    return history
