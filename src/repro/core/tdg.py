"""Transaction dependency graph (TDG) construction — paper §III-A.

A block is modelled as a graph whose meaning depends on the data model:

* **UTXO**: nodes are the block's transactions; an edge ``a -> b`` exists
  when a TXO created by ``a`` is spent by ``b`` (both in the block).
* **Account**: nodes are *addresses* referenced by the block's regular
  and internal transactions; each (sender, receiver) pair is an edge.
  Conflict is then lifted back to transactions: a transaction conflicts
  with another when their endpoints share a connected component.

Coinbase transactions are ignored in both models (§III-A1).

The central output type is :class:`TDGResult`, which groups the block's
transactions into dependency classes; everything downstream (conflict
rates, LCC sizes, speed-up predictions, the grouped executor) works from
this one structure.

A third constructor, :func:`storage_conflict_groups`, implements the
*storage-location-level* conflict definition of Saraph & Herlihy
(ref. [17]) for the ablation discussed in §III-A5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro import obs
from repro.account.receipts import ExecutedTransaction
from repro.core.components import (
    UnionFind,
    build_adjacency,
    connected_components_bfs,
)
from repro.utxo.transaction import UTXOTransaction


@dataclass(frozen=True)
class TDGResult:
    """A block's transactions partitioned into dependency groups.

    Attributes:
        groups: tuple of transaction-hash groups; transactions in the
            same group must execute sequentially, transactions in
            different groups are mutually independent.
        num_transactions: total non-coinbase transactions considered.
        address_components: for account-model blocks, the underlying
            address components (empty for UTXO blocks); retained for
            rendering examples like paper Fig. 1.
    """

    groups: tuple[tuple[str, ...], ...]
    num_transactions: int
    address_components: tuple[tuple[str, ...], ...] = ()

    def __post_init__(self) -> None:
        grouped = sum(len(group) for group in self.groups)
        if grouped != self.num_transactions:
            raise ValueError(
                f"groups cover {grouped} transactions, expected "
                f"{self.num_transactions}"
            )

    @property
    def num_conflicted(self) -> int:
        """Transactions sharing a group with at least one other (§III-A2)."""
        return sum(len(group) for group in self.groups if len(group) > 1)

    @property
    def lcc_size(self) -> int:
        """Size of the largest dependency group, in transactions."""
        return max((len(group) for group in self.groups), default=0)

    def group_sizes(self) -> list[int]:
        """Sizes of all groups, descending — input to the schedulers."""
        return sorted((len(group) for group in self.groups), reverse=True)

    def group_of(self, tx_hash: str) -> tuple[str, ...]:
        """Return the dependency group containing *tx_hash*."""
        for group in self.groups:
            if tx_hash in group:
                return group
        raise KeyError(f"transaction {tx_hash!r} not in this TDG")


# -- UTXO model -------------------------------------------------------------


def utxo_tdg(transactions: Sequence[UTXOTransaction]) -> TDGResult:
    """Build the TDG of a UTXO block from its transaction objects.

    An edge links the creator of a TXO to its spender when both sit in
    this block; coinbases are dropped entirely.
    """
    regular = [tx for tx in transactions if not tx.is_coinbase]
    in_block = {tx.tx_hash for tx in regular}
    edges: list[tuple[str, str]] = []
    for tx in regular:
        for outpoint in tx.inputs:
            if outpoint.tx_hash in in_block:
                edges.append((outpoint.tx_hash, tx.tx_hash))
    return utxo_tdg_from_arrays(
        block_txs=[tx.tx_hash for tx in regular],
        spending=[edge[1] for edge in edges],
        spent=[edge[0] for edge in edges],
    )


def utxo_tdg_from_arrays(
    block_txs: Iterable[str],
    spending: Sequence[str],
    spent: Sequence[str],
) -> TDGResult:
    """Build a UTXO TDG from BigQuery-style parallel arrays.

    Mirrors the interface of the paper's ``process_graph`` UDF (Fig. 2):
    the ``i``-th element of *spending* is the hash of the transaction
    spending some input TXO, and the ``i``-th element of *spent* is the
    hash of the transaction that created it.  Pairs whose *spent* hash
    lies outside the block contribute no edge (spends of older blocks).
    """
    if len(spending) != len(spent):
        raise ValueError("spending and spent arrays must be parallel")
    with obs.trace_span("tdg.build", model="utxo") as span:
        nodes = list(dict.fromkeys(block_txs))
        node_set = set(nodes)
        edges = [
            (creator, spender)
            for spender, creator in zip(spending, spent)
            if creator in node_set and spender in node_set
        ]
        adjacency = build_adjacency(nodes, edges)
        components = connected_components_bfs(adjacency)
        groups = tuple(tuple(component) for component in components)
        if obs.enabled():
            span.set(transactions=len(nodes), edges=len(edges),
                     groups=len(groups))
            obs.counter("tdg.builds", model="utxo").inc()
            obs.counter("tdg.edges_scanned", model="utxo").inc(len(spending))
            obs.counter("tdg.edges_in_block", model="utxo").inc(len(edges))
            obs.counter("tdg.components_merged", model="utxo").inc(
                len(nodes) - len(groups)
            )
        return TDGResult(groups=groups, num_transactions=len(nodes))


# -- Account model ------------------------------------------------------------


def account_tdg(executed: Sequence[ExecutedTransaction]) -> TDGResult:
    """Build the TDG of an account-model block from executed transactions.

    Uses each transaction's regular edge plus all internal-transaction
    edges (``ExecutedTransaction.edges``); coinbases contribute nothing.
    """
    tx_edges = {
        item.tx_hash: item.edges()
        for item in executed
        if not item.is_coinbase
    }
    return account_tdg_from_edges(tx_edges)


def account_tdg_from_edges(
    tx_edges: Mapping[str, Sequence[tuple[str, str]]],
) -> TDGResult:
    """Build an account-model TDG from per-transaction edge lists.

    Args:
        tx_edges: maps each transaction hash to its (sender, receiver)
            pairs — the first pair being the regular transaction, the
            rest internal transactions.  A transaction with no pairs is
            treated as touching a unique synthetic address (it conflicts
            with nothing).

    The address graph's connected components are computed first; each
    transaction is then assigned to the component containing its
    endpoints.  All of one transaction's endpoints are necessarily in
    one component because its call tree is connected; a defensive merge
    handles degenerate inputs where they are not.
    """
    with obs.trace_span("tdg.build", model="account") as span:
        forest = UnionFind()
        addresses: list[str] = []
        seen: set[str] = set()

        def note(address: str) -> None:
            if address not in seen:
                seen.add(address)
                addresses.append(address)
                forest.add(address)

        for tx_hash, pairs in tx_edges.items():
            if not pairs:
                note(f"__isolated__{tx_hash}")
                continue
            first = pairs[0][0]
            for sender, receiver in pairs:
                note(sender)
                note(receiver)
                forest.union(sender, receiver)
                # Defensive: tie every pair back to the first endpoint so a
                # transaction always lands in exactly one component.
                forest.union(first, sender)

        groups_by_root: dict[object, list[str]] = {}
        for tx_hash, pairs in tx_edges.items():
            anchor = pairs[0][0] if pairs else f"__isolated__{tx_hash}"
            root = forest.find(anchor)
            groups_by_root.setdefault(root, []).append(tx_hash)

        address_components: dict[object, list[str]] = {}
        for address in addresses:
            if address.startswith("__isolated__"):
                continue
            address_components.setdefault(
                forest.find(address), []
            ).append(address)

        if obs.enabled():
            num_isolated = sum(
                1 for a in addresses if a.startswith("__isolated__")
            )
            non_isolated = len(addresses) - num_isolated
            span.set(transactions=len(tx_edges),
                     addresses=non_isolated,
                     groups=len(groups_by_root))
            obs.counter("tdg.builds", model="account").inc()
            obs.counter("tdg.edges_scanned", model="account").inc(
                sum(len(pairs) for pairs in tx_edges.values())
            )
            obs.counter("tdg.components_merged", model="account").inc(
                non_isolated - len(address_components)
            )
        return TDGResult(
            groups=tuple(tuple(group) for group in groups_by_root.values()),
            num_transactions=len(tx_edges),
            address_components=tuple(
                tuple(component) for component in address_components.values()
            ),
        )


# -- Storage-level conflicts (ref. [17] ablation) ----------------------------


def storage_conflict_groups(
    executed: Sequence[ExecutedTransaction],
) -> TDGResult:
    """Group transactions by *storage-location* conflicts (ref. [17]).

    Two transactions conflict when one's write set intersects the
    other's read or write set, where the accessed locations are the
    receipts' storage read/write sets plus the balance cells of the
    top-level sender and receiver.  This is the finer-grained definition
    of Saraph & Herlihy, which the paper contrasts with its address-level
    TDG in §III-A5: it reports *fewer* single-transaction conflicts
    (transactions touching the same address but different storage keys
    are independent here).
    """
    with obs.trace_span("tdg.storage_groups") as span:
        return _storage_conflict_groups(executed, span)


def _storage_conflict_groups(
    executed: Sequence[ExecutedTransaction], span
) -> TDGResult:
    forest = UnionFind()
    writers: dict[tuple[str, str], str] = {}
    readers: dict[tuple[str, str], list[str]] = {}
    hashes: list[str] = []
    for item in executed:
        if item.is_coinbase:
            continue
        tx_hash = item.tx_hash
        hashes.append(tx_hash)
        forest.add(tx_hash)
        writes = set(item.receipt.storage_writes)
        reads = set(item.receipt.storage_reads)
        # The sender's account is always written (nonce, fee); the
        # receiver's balance only moves when value is attached — a
        # zero-value contract call touches storage keys, not balances.
        writes.add((item.tx.sender, "__balance__"))
        if item.tx.value > 0:
            writes.add((item.tx.receiver, "__balance__"))
        for internal in item.receipt.internal_transactions:
            if internal.value > 0:
                writes.add((internal.sender, "__balance__"))
                writes.add((internal.receiver, "__balance__"))
        for location in writes:
            if location in writers:
                forest.union(writers[location], tx_hash)
            else:
                writers[location] = tx_hash
            for reader in readers.get(location, ()):
                forest.union(reader, tx_hash)
        for location in reads:
            readers.setdefault(location, []).append(tx_hash)
            if location in writers:
                forest.union(writers[location], tx_hash)

    groups_by_root: dict[object, list[str]] = {}
    for tx_hash in hashes:
        groups_by_root.setdefault(forest.find(tx_hash), []).append(tx_hash)
    if obs.enabled():
        span.set(transactions=len(hashes), groups=len(groups_by_root))
        obs.counter("tdg.builds", model="storage").inc()
        obs.counter("tdg.locations_tracked", model="storage").inc(
            len(writers) + len(readers)
        )
    return TDGResult(
        groups=tuple(tuple(group) for group in groups_by_root.values()),
        num_transactions=len(hashes),
    )
