"""Contract code registry and a small text assembler.

Contracts are stored as programs (tuples of instructions) in a global
per-chain :class:`CodeRegistry` keyed by ``code_id``.  Account state only
carries the ``code_id`` string; the registry resolves it at execution
time.  A tiny assembler converts a readable text format into programs so
workload profiles and tests can define contract behaviours declaratively.

Assembly format — one instruction per line, ``;`` starts a comment::

    push 5
    sstore counter      ; storage[counter] = 5
    call 0xabc... 100   ; internal transaction with value 100
    sstore $            ; dynamic form: key popped from the stack
    stop

``JUMP``/``JUMPI`` targets are validated against the program length at
assembly time, so an out-of-range target is an :class:`AssemblyError`
here rather than a mid-execution :class:`~repro.chain.errors.VMError`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.vm.opcodes import STACK_OPERAND, Instruction, Op

Program = tuple[Instruction, ...]

# What a non-integer PUSH operand is allowed to look like: a symbol (a
# storage key like ``balance_sender``) or an address-like hex token.
# Anything else — ``5x5``, ``1.5``, stray punctuation — used to fall
# back to a silent string operand; now it is an assembly error.
_SYMBOL_RE = re.compile(r"(?:[A-Za-z_][A-Za-z0-9_.\-]*|0x[0-9a-fA-F]+)\Z")


class AssemblyError(Exception):
    """Raised on malformed assembly text."""


def assemble(text: str) -> Program:
    """Assemble *text* into a program.

    Raises:
        AssemblyError: on unknown mnemonics, malformed operands, or
            ``JUMP``/``JUMPI`` targets outside the program.
    """
    instructions: list[Instruction] = []
    lines: list[int] = []  # source line of each instruction, for errors
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        mnemonic, args = parts[0].lower(), parts[1:]
        try:
            op = Op(mnemonic)
        except ValueError as exc:
            raise AssemblyError(
                f"line {line_number}: unknown opcode {mnemonic!r}"
            ) from exc
        operand: object = None
        if op in (Op.CALL, Op.TRANSFER):
            if len(args) != 2:
                raise AssemblyError(
                    f"line {line_number}: {mnemonic} needs address and value"
                )
            target: object = (
                STACK_OPERAND if args[0] == STACK_OPERAND else args[0]
            )
            operand = (target, _parse_int(args[1], line_number))
        elif op in (Op.JUMP, Op.JUMPI):
            if len(args) != 1:
                raise AssemblyError(
                    f"line {line_number}: {mnemonic} needs a target pc"
                )
            operand = _parse_int(args[0], line_number)
        elif op is Op.PUSH:
            if len(args) != 1:
                raise AssemblyError(f"line {line_number}: push needs a value")
            try:
                operand = _parse_int(args[0], line_number)
            except AssemblyError:
                if not _SYMBOL_RE.match(args[0]):
                    raise AssemblyError(
                        f"line {line_number}: push operand {args[0]!r} is "
                        "neither an integer nor a symbol"
                    ) from None
                operand = args[0]
        elif op in (Op.SLOAD, Op.SSTORE, Op.BALANCE):
            if len(args) != 1:
                raise AssemblyError(
                    f"line {line_number}: {mnemonic} needs a key/address"
                )
            operand = args[0]
        else:
            if args:
                raise AssemblyError(
                    f"line {line_number}: {mnemonic} takes no operands"
                )
        instructions.append(Instruction(op=op, operand=operand))
        lines.append(line_number)

    for pc, instruction in enumerate(instructions):
        if instruction.op in (Op.JUMP, Op.JUMPI):
            target = instruction.operand
            if not isinstance(target, int) or not (
                0 <= target < len(instructions)
            ):
                raise AssemblyError(
                    f"line {lines[pc]}: jump target {target!r} out of range "
                    f"(program has {len(instructions)} instructions)"
                )
    return tuple(instructions)


def _parse_int(token: str, line_number: int) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblyError(
            f"line {line_number}: expected integer, got {token!r}"
        ) from exc


@dataclass
class CodeRegistry:
    """Maps code_id strings to programs for one simulated chain."""

    _programs: dict[str, Program] = field(default_factory=dict)

    def register(self, code_id: str, program: Program) -> str:
        """Store *program* under *code_id* (idempotent for equal bodies)."""
        existing = self._programs.get(code_id)
        if existing is not None and existing != program:
            raise ValueError(f"code_id {code_id!r} already bound")
        self._programs[code_id] = program
        return code_id

    def register_assembly(self, code_id: str, text: str) -> str:
        return self.register(code_id, assemble(text))

    def get(self, code_id: str) -> Program | None:
        return self._programs.get(code_id)

    def code_ids(self) -> tuple[str, ...]:
        """All registered code ids, sorted for deterministic iteration."""
        return tuple(sorted(self._programs))

    def __contains__(self, code_id: str) -> bool:
        return code_id in self._programs

    def __len__(self) -> int:
        return len(self._programs)


# -- stock contract bodies used by workload profiles -----------------------

# A plain token-transfer contract: reads and writes two balances.
TOKEN_TRANSFER_ASM = """
    sload balance_sender
    push 1
    sub
    sstore balance_sender
    sload balance_receiver
    push 1
    add
    sstore balance_receiver
    sload balance_receiver
    log
    stop
"""

# A proxy that forwards to another contract — yields depth-2 internal
# transactions like the unverified-contract chain of paper Fig. 1b.
def proxy_asm(target_address: str) -> str:
    """Assembly for a proxy forwarding one call to *target_address*."""
    return f"""
        call {target_address} 0
        stop
    """

# -- dynamic-operand bodies (profiles with ``num_dynamic_contracts``) ------

# Branches on a storage flag it toggles, writing a different key on each
# path.  Runtime calls alternate between the arms; a sound static
# analysis must take both, so its predicted set covers key_a AND key_b.
TOGGLE_BRANCH_ASM = """
    sload flag
    jumpi 7
    push 1
    sstore flag
    push 1
    sstore key_a
    stop
    push 0
    sstore flag
    push 1
    sstore key_b
    stop
"""

# Increments a counter, then writes under the counter's current value —
# a storage key that changes every call and cannot be resolved
# statically (the analyzer widens this contract's writes to ⊤).
DYNAMIC_COUNTER_ASM = """
    sload n
    push 1
    add
    sstore n
    push 7
    sload n
    sstore $
    stop
"""

# Pays a fee to an address read from storage — a dynamic TRANSFER
# target, so the analyzer widens the balance/endpoint sets to ⊤.  The
# deploying workload funds the contract and seeds storage["payee"].
DYNAMIC_PAYOUT_ASM = """
    sload payee
    transfer $ 3
    stop
"""

# Dynamic-key forms whose keys are pushed constants: constant
# propagation resolves them exactly, so the static sets stay precise.
CONST_INDEXED_ASM = """
    push slot7
    sload $
    pop
    push 5
    push slot7
    sstore $
    stop
"""


# -- routed bodies: branch-joined constant targets ------------------------
#
# Each branch arm pushes a different constant target, and the dynamic
# ``transfer $``/``call $`` consumes the *join* of the two arms.  Under
# the two-point Const/⊤ lattice that join is ⊤ (the whole access set
# widens); under the value-set lattice it is the exact two-element set
# {a, b}, so the predicted sets stay finite — the archetype that
# separates the two lattices' precision.  At runtime the toggle flag
# alternates the route taken, exercising both arms.

def routed_payout_asm(payee_a: str, payee_b: str) -> str:
    """Assembly paying one of two fixed payees, chosen by a toggle.

    Addresses must be symbols (not bare integers) so the assembler
    keeps them as strings.  The deploying workload funds the contract.
    """
    return f"""
        sload toggle
        dup
        jumpi 5
        push {payee_a}
        jump 6
        push {payee_b}
        transfer $ 2
        iszero
        sstore toggle
        stop
    """


def routed_call_asm(route_a: str, route_b: str) -> str:
    """Assembly calling one of two fixed sink contracts, by a toggle.

    Same shape as :func:`routed_payout_asm` with a dynamic ``CALL``:
    under Const/⊤ an unknown call target is ``global_top`` ("may run
    anything"), the most destructive widening; the value-set join keeps
    the closure to the two sinks' access sets.
    """
    return f"""
        sload toggle
        dup
        jumpi 5
        push {route_a}
        jump 6
        push {route_b}
        call $ 0
        iszero
        sstore toggle
        stop
    """


# The sink bound behind each routed call: one storage write, same shape
# as the shared-db terminal of the proxy chains.
ROUTE_SINK_ASM = """
    push 1
    sstore hits
    stop
"""


# A heavy loop used to model expensive (high-gas) transactions, e.g. the
# 2017 DoS-attack traffic that spiked internal transaction counts.
def busy_loop_asm(iterations: int) -> str:
    """Assembly for a counter loop running *iterations* times.

    The loop exits through the ``pop`` at pc 7, clearing the spent
    counter off the stack before ``stop``.  (An earlier version jumped
    straight to ``stop`` at pc 8, leaving the ``pop`` unreachable —
    flagged by ``repro.cli staticcheck``'s dead-code lint and the
    counter stranded on the stack.)
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    return f"""
        push {iterations}
        dup
        iszero
        jumpi 7
        push 1
        sub
        jump 1
        pop
        stop
    """
