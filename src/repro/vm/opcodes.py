"""Instruction set of the miniature contract VM.

The VM exists to generate realistic *execution side effects* — gas
consumption, storage access sets, and inter-contract calls (internal
transactions) — not to run real EVM bytecode.  The instruction set is
therefore a compact stack machine whose operations map one-to-one onto
the gas schedule categories of :class:`repro.account.gas.GasSchedule`.

Programs are tuples of :class:`Instruction`.  Operands are Python ints
or strings; the assembler in :mod:`repro.vm.contract` provides a tiny
text format used by workload-generated contracts.

Storage, balance and call operands may also be *dynamic*: the sentinel
:data:`STACK_OPERAND` (written ``$`` in assembly) makes the VM pop the
key / address off the stack at run time instead of reading a static
operand.  Dynamic operands are what make the static analyzer in
:mod:`repro.staticcheck` non-trivial — a key that cannot be resolved by
constant propagation widens the access set to ⊤.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.account.gas import GasSchedule

# Sentinel operand: "take the key/address from the top of the stack".
# Spelled ``$`` in assembly; valid for SLOAD/SSTORE/BALANCE keys and
# CALL/TRANSFER targets.  JUMP/JUMPI targets are always static so that
# the control-flow graph of a program is statically known.
STACK_OPERAND = "$"


@unique
class Op(Enum):
    """VM opcodes.

    Stack effects (pop/push) are listed per opcode; the VM enforces them.
    """

    PUSH = "push"        # operand -> push literal
    POP = "pop"          # pop 1
    DUP = "dup"          # duplicate top
    SWAP = "swap"        # swap top two
    ADD = "add"          # pop 2 push 1
    SUB = "sub"          # pop 2 push 1
    MUL = "mul"          # pop 2 push 1
    DIV = "div"          # pop 2 push 1 (integer; x/0 = 0, EVM-style)
    LT = "lt"            # pop 2 push 1 (0/1)
    EQ = "eq"            # pop 2 push 1 (0/1)
    ISZERO = "iszero"    # pop 1 push 1
    JUMPI = "jumpi"      # operand = target pc; pop 1 condition
    JUMP = "jump"        # operand = target pc
    SLOAD = "sload"      # operand = key or $; push storage[key]
    SSTORE = "sstore"    # operand = key or $; pop value into storage[key]
    #                      ($ form pops the key first, then the value)
    BALANCE = "balance"  # operand = address or $; push balance
    CALL = "call"        # operand = (address | $, value); internal tx
    TRANSFER = "transfer"  # operand = (address | $, value); value-only
    LOG = "log"          # pop 1, emit log entry
    STOP = "stop"        # halt, success
    REVERT = "revert"    # halt, failure


# Opcodes that always carry an operand.
OPERAND_OPS = frozenset(
    {Op.PUSH, Op.JUMPI, Op.JUMP, Op.SLOAD, Op.SSTORE,
     Op.BALANCE, Op.CALL, Op.TRANSFER}
)


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction: opcode plus optional operand."""

    op: Op
    operand: object = None

    def __post_init__(self) -> None:
        if self.op in OPERAND_OPS and self.operand is None:
            raise ValueError(f"opcode {self.op.value} requires an operand")
        if self.op not in OPERAND_OPS and self.operand is not None:
            raise ValueError(f"opcode {self.op.value} takes no operand")


def gas_cost(instruction: Instruction, schedule: "GasSchedule") -> int:
    """Gas charged for executing *instruction* under *schedule*.

    SSTORE cost is charged at the set rate; the cheaper update rate is
    applied by the VM when the key already holds a value.
    """
    op = instruction.op
    if op in (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.LT, Op.EQ, Op.ISZERO,
              Op.PUSH, Op.POP, Op.DUP, Op.SWAP, Op.JUMP, Op.JUMPI):
        return schedule.arithmetic
    if op is Op.SLOAD:
        return schedule.sload
    if op is Op.SSTORE:
        return schedule.sstore_set
    if op is Op.BALANCE:
        return schedule.balance
    if op in (Op.CALL, Op.TRANSFER):
        return schedule.call
    if op is Op.LOG:
        return schedule.log
    if op in (Op.STOP, Op.REVERT):
        return 0
    raise ValueError(f"unknown opcode {op!r}")
