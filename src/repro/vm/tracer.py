"""Geth-style trace flattening.

The BigQuery Ethereum dataset's ``traces`` table is produced by geth's
tracer: one row per message call, including the top-level call of each
regular transaction.  This module converts executed transactions into
that flat row format, which both the dataset layer and the paper's
internal-transaction definition ("any interaction ... that generates a
so-called trace in the geth client") consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.account.receipts import ExecutedTransaction


@dataclass(frozen=True)
class TraceRow:
    """One flattened trace row (BigQuery ``traces`` schema subset)."""

    block_number: int
    transaction_hash: str
    from_address: str
    to_address: str
    value: int
    trace_type: str       # "call", "transfer", "create", "reward"
    trace_address: str    # dotted path, "" for the top-level call
    depth: int
    status: int           # 1 success, 0 failure


def trace_rows_for_block(
    block_number: int,
    executed: list[ExecutedTransaction],
) -> list[TraceRow]:
    """Flatten every transaction in a block into trace rows.

    The top-level call of a regular transaction becomes a row with an
    empty ``trace_address``; internal transactions get dotted positional
    paths ("0", "1", "1.0", ...) approximated from their order and depth.
    Coinbase transactions become "reward" rows (excluded from TDGs by the
    query layer, matching the paper's treatment).
    """
    rows: list[TraceRow] = []
    for item in executed:
        tx, receipt = item.tx, item.receipt
        status = 1 if receipt.success else 0
        if tx.is_coinbase:
            rows.append(
                TraceRow(
                    block_number=block_number,
                    transaction_hash=tx.tx_hash,
                    from_address=tx.sender,
                    to_address=tx.receiver,
                    value=tx.value,
                    trace_type="reward",
                    trace_address="",
                    depth=0,
                    status=1,
                )
            )
            continue
        trace_type = "create" if tx.is_contract_creation else "call"
        rows.append(
            TraceRow(
                block_number=block_number,
                transaction_hash=tx.tx_hash,
                from_address=tx.sender,
                to_address=(
                    receipt.created_contract
                    if tx.is_contract_creation and receipt.created_contract
                    else tx.receiver
                ),
                value=tx.value,
                trace_type=trace_type,
                trace_address="",
                depth=0,
                status=status,
            )
        )
        # Internal transactions: derive dotted paths from (depth, order).
        counters: dict[int, int] = {}
        path_at_depth: dict[int, str] = {}
        for internal in receipt.internal_transactions:
            index = counters.get(internal.depth, 0)
            counters[internal.depth] = index + 1
            parent = path_at_depth.get(internal.depth - 1, "")
            path = f"{parent}.{index}" if parent else str(index)
            path_at_depth[internal.depth] = path
            rows.append(
                TraceRow(
                    block_number=block_number,
                    transaction_hash=tx.tx_hash,
                    from_address=internal.sender,
                    to_address=internal.receiver,
                    value=internal.value,
                    trace_type=internal.call_type,
                    trace_address=path,
                    depth=internal.depth,
                    status=status,
                )
            )
    return rows


def internal_rows(rows: list[TraceRow]) -> list[TraceRow]:
    """Filter to rows the paper counts as internal transactions.

    Per §II-A these are trace-generating interactions that are not
    regular or coinbase transactions: every row with a non-empty
    trace_address (depth >= 1), excluding rewards.
    """
    return [
        row
        for row in rows
        if row.trace_type != "reward" and row.trace_address != ""
    ]
