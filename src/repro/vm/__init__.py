"""Miniature contract VM with gas metering and geth-style tracing."""

from repro.vm.contract import (
    AssemblyError,
    CodeRegistry,
    Program,
    TOKEN_TRANSFER_ASM,
    assemble,
    busy_loop_asm,
    proxy_asm,
)
from repro.vm.opcodes import Instruction, Op, gas_cost
from repro.vm.tracer import TraceRow, internal_rows, trace_rows_for_block
from repro.vm.vm import MAX_CALL_DEPTH, VM, ExecutionContext

__all__ = [
    "AssemblyError",
    "CodeRegistry",
    "Program",
    "TOKEN_TRANSFER_ASM",
    "assemble",
    "busy_loop_asm",
    "proxy_asm",
    "Instruction",
    "Op",
    "gas_cost",
    "TraceRow",
    "internal_rows",
    "trace_rows_for_block",
    "MAX_CALL_DEPTH",
    "VM",
    "ExecutionContext",
]
