"""The VM interpreter.

Executes contract programs against a :class:`repro.account.state.WorldState`,
metering gas and recording the side effects the paper's analysis depends
on: internal transactions (one per CALL/TRANSFER, plus nested calls) and
per-(address, key) storage read/write sets.

The interpreter implements the ``ContractExecutor`` protocol expected by
``WorldState.apply_transaction``, so wiring it in is one line:

    vm = VM(registry)
    state.apply_transaction(tx, executor=vm.execute_transaction)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.account.gas import GasSchedule
from repro.account.state import WorldState
from repro.account.transaction import AccountTransaction, InternalTransaction
from repro.chain.errors import OutOfGasError, VMError
from repro.vm.contract import CodeRegistry, Program
from repro.vm.opcodes import STACK_OPERAND, Instruction, Op, gas_cost

MAX_CALL_DEPTH = 16
MAX_STEPS_PER_CALL = 10_000


@dataclass
class ExecutionContext:
    """Mutable bookkeeping shared across a (possibly nested) execution."""

    gas_remaining: int
    internals: list[InternalTransaction] = field(default_factory=list)
    reads: set[tuple[str, str]] = field(default_factory=set)
    writes: set[tuple[str, str]] = field(default_factory=set)
    logs: list[str] = field(default_factory=list)

    def charge(self, amount: int) -> None:
        if amount > self.gas_remaining:
            self.gas_remaining = 0
            raise OutOfGasError("gas exhausted")
        self.gas_remaining -= amount


class VM:
    """A stack-machine interpreter bound to a code registry."""

    def __init__(self, registry: CodeRegistry):
        self.registry = registry

    # -- ContractExecutor protocol ----------------------------------------

    def execute_transaction(
        self,
        state: WorldState,
        tx: AccountTransaction,
        gas_budget: int,
    ) -> tuple[bool, int, tuple[InternalTransaction, ...],
               frozenset[tuple[str, str]], frozenset[tuple[str, str]]]:
        """Run the contract at ``tx.receiver``; see ContractExecutor.

        Returns (success, gas_used, internal_txs, reads, writes).
        """
        context = ExecutionContext(gas_remaining=gas_budget)
        try:
            success = self._call(
                state=state,
                caller=tx.sender,
                callee=tx.receiver,
                value=0,  # top-level value already moved by the state layer
                depth=1,
                context=context,
                record_trace=False,  # the top-level call is the regular tx
            )
        except OutOfGasError:
            success = False
        gas_used = gas_budget - context.gas_remaining
        return (
            success,
            gas_used,
            tuple(context.internals),
            frozenset(context.reads),
            frozenset(context.writes),
        )

    # -- interpreter core ---------------------------------------------------

    def _call(
        self,
        *,
        state: WorldState,
        caller: str,
        callee: str,
        value: int,
        depth: int,
        context: ExecutionContext,
        record_trace: bool,
    ) -> bool:
        """Execute the program at *callee*; returns success."""
        if depth > MAX_CALL_DEPTH:
            raise VMError("call depth limit exceeded")
        if record_trace:
            context.internals.append(
                InternalTransaction(
                    sender=caller,
                    receiver=callee,
                    value=value,
                    call_type="call",
                    depth=depth,
                )
            )
        account = state.account(callee)
        program = self.registry.get(account.code_id) if account.code_id else None
        if program is None:
            # Plain value recipient: the trace exists, nothing executes.
            return True
        return self._run(
            state=state,
            self_address=callee,
            caller=caller,
            program=program,
            depth=depth,
            context=context,
        )

    def _run(
        self,
        *,
        state: WorldState,
        self_address: str,
        caller: str,
        program: Program,
        depth: int,
        context: ExecutionContext,
    ) -> bool:
        schedule: GasSchedule = state.gas_schedule
        account = state.account(self_address)
        stack: list[object] = []
        pc = 0
        steps = 0
        while pc < len(program):
            steps += 1
            if steps > MAX_STEPS_PER_CALL:
                raise VMError(f"step limit exceeded in {self_address}")
            instruction = program[pc]
            context.charge(gas_cost(instruction, schedule))
            op = instruction.op

            if op is Op.STOP:
                return True
            if op is Op.REVERT:
                return False
            if op is Op.PUSH:
                stack.append(instruction.operand)
            elif op is Op.POP:
                self._pop(stack)
            elif op is Op.DUP:
                if not stack:
                    raise VMError("DUP on empty stack")
                stack.append(stack[-1])
            elif op is Op.SWAP:
                if len(stack) < 2:
                    raise VMError("SWAP needs two operands")
                stack[-1], stack[-2] = stack[-2], stack[-1]
            elif op in (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.LT, Op.EQ):
                rhs = self._pop_int(stack)
                lhs = self._pop_int(stack)
                stack.append(self._binary(op, lhs, rhs))
            elif op is Op.ISZERO:
                stack.append(1 if self._pop_int(stack) == 0 else 0)
            elif op is Op.JUMP:
                pc = self._jump_target(instruction, program)
                continue
            elif op is Op.JUMPI:
                condition = self._pop_int(stack)
                if condition != 0:
                    pc = self._jump_target(instruction, program)
                    continue
            elif op is Op.SLOAD:
                key = self._operand_or_pop(instruction.operand, stack)
                context.reads.add((self_address, key))
                raw = account.storage.get(key, "0")
                stack.append(int(raw) if raw.lstrip("-").isdigit() else raw)
            elif op is Op.SSTORE:
                # Dynamic form pops the key first, then the value.
                key = self._operand_or_pop(instruction.operand, stack)
                value = self._pop(stack)
                # Charge the cheaper update rate when overwriting.
                if key in account.storage:
                    refund = schedule.sstore_set - schedule.sstore_update
                    context.gas_remaining += refund
                context.writes.add((self_address, key))
                account.storage[key] = str(value)
            elif op is Op.BALANCE:
                address = self._operand_or_pop(instruction.operand, stack)
                context.reads.add((address, "__balance__"))
                stack.append(state.balance_of(address))
            elif op in (Op.CALL, Op.TRANSFER):
                target, call_value = instruction.operand  # type: ignore[misc]
                target = self._operand_or_pop(target, stack)
                call_value = int(call_value)
                if call_value:
                    context.charge(schedule.call_value_transfer)
                    if account.balance < call_value:
                        return False
                    account.balance -= call_value
                    state.account(str(target)).balance += call_value
                if op is Op.CALL:
                    ok = self._call(
                        state=state,
                        caller=self_address,
                        callee=str(target),
                        value=call_value,
                        depth=depth + 1,
                        context=context,
                        record_trace=True,
                    )
                    if not ok:
                        return False
                else:
                    context.internals.append(
                        InternalTransaction(
                            sender=self_address,
                            receiver=str(target),
                            value=call_value,
                            call_type="transfer",
                            depth=depth + 1,
                        )
                    )
            elif op is Op.LOG:
                context.logs.append(str(self._pop(stack)))
            else:  # pragma: no cover - enum is exhaustive
                raise VMError(f"unhandled opcode {op!r}")
            pc += 1
        return True

    # -- helpers --------------------------------------------------------------

    @classmethod
    def _operand_or_pop(cls, operand: object, stack: list[object]) -> str:
        """Resolve a key/address operand, popping the stack for ``$``."""
        if operand == STACK_OPERAND:
            return str(cls._pop(stack))
        return str(operand)

    @staticmethod
    def _pop(stack: list[object]) -> object:
        if not stack:
            raise VMError("stack underflow")
        return stack.pop()

    @classmethod
    def _pop_int(cls, stack: list[object]) -> int:
        value = cls._pop(stack)
        if not isinstance(value, int):
            raise VMError(f"expected integer on stack, got {value!r}")
        return value

    @staticmethod
    def _jump_target(instruction: Instruction, program: Program) -> int:
        target = instruction.operand
        if not isinstance(target, int) or not 0 <= target < len(program):
            raise VMError(f"jump target {target!r} out of range")
        return target

    @staticmethod
    def _binary(op: Op, lhs: int, rhs: int) -> int:
        if op is Op.ADD:
            return lhs + rhs
        if op is Op.SUB:
            return lhs - rhs
        if op is Op.MUL:
            return lhs * rhs
        if op is Op.DIV:
            return lhs // rhs if rhs != 0 else 0
        if op is Op.LT:
            return 1 if lhs < rhs else 0
        if op is Op.EQ:
            return 1 if lhs == rhs else 0
        raise VMError(f"not a binary op: {op!r}")
