"""Calibrated per-chain workload profiles — the seven blockchains of Table I.

Each profile describes one blockchain's traffic as a sequence of *eras*
(anchor points in calendar time) whose numeric parameters are linearly
interpolated, giving smooth historical trends like the real datasets.
The parameter values are calibrated so the synthetic histories land in
the regimes the paper reports (see DESIGN.md §5 for the targets and
EXPERIMENTS.md for measured outcomes):

* UTXO chains get their conflicts from intra-block TXO spend chains
  (exchange sweeps, pool payout cascades — paper Fig. 6);
* account chains get theirs from fan-in to hot exchange/contract
  addresses and repeat senders (paper Fig. 1);
* smaller user bases produce higher conflict rates at equal load, which
  is the paper's explanation for Ethereum Classic vs. Ethereum and
  Bitcoin Cash vs. Bitcoin (§IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

SECONDS_PER_YEAR = 365.25 * 24 * 3600


@dataclass(frozen=True)
class Era:
    """Workload parameters in force from calendar time *year* onward.

    Numeric fields are linearly interpolated between consecutive eras.

    Attributes (UTXO-model knobs):
        pair_spend_rate: expected number of length-2 intra-block spend
            pairs per block, as a fraction of block transactions.
        chain_event_rate: expected number of longer sweep chains per
            block (absolute count, not a fraction).
        chain_length_mean: mean length of those sweep chains.

    Attributes (account-model knobs):
        exchange_deposit_share: fraction of txs that are deposits to an
            exchange hot wallet.
        exchange_withdrawal_share: fraction that are exchange payouts.
        contract_call_share: fraction that are smart-contract calls.
        contract_creation_share: fraction that deploy new contracts
            (high gas, essentially never conflicted — §IV-A).
        internal_burst_prob: per-block probability of an internal-tx
            burst (the 2017 DoS-attack spikes of Fig. 4a).
    """

    year: float
    mean_txs_per_block: float
    num_users: int
    # UTXO knobs
    pair_spend_rate: float = 0.0
    chain_event_rate: float = 0.0
    chain_length_mean: float = 6.0
    # Account knobs
    exchange_deposit_share: float = 0.0
    exchange_withdrawal_share: float = 0.0
    contract_call_share: float = 0.0
    contract_creation_share: float = 0.0
    internal_burst_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_txs_per_block < 0:
            raise ValueError("mean_txs_per_block must be non-negative")
        if self.num_users < 1:
            raise ValueError("num_users must be positive")
        shares = (
            self.exchange_deposit_share
            + self.exchange_withdrawal_share
            + self.contract_call_share
            + self.contract_creation_share
        )
        if shares > 1.0 + 1e-9:
            raise ValueError("transaction-type shares exceed 1")


_INTERPOLATED_FIELDS = [
    f.name for f in fields(Era) if f.name not in ("year",)
]


def interpolate_era(eras: tuple[Era, ...], year: float) -> Era:
    """The era parameters in force at *year*, linearly interpolated.

    Before the first anchor the first era applies unchanged; after the
    last anchor, the last.
    """
    if not eras:
        raise ValueError("at least one era is required")
    ordered = sorted(eras, key=lambda era: era.year)
    if year <= ordered[0].year:
        return ordered[0]
    if year >= ordered[-1].year:
        return ordered[-1]
    for earlier, later in zip(ordered, ordered[1:]):
        if earlier.year <= year <= later.year:
            span = later.year - earlier.year
            t = 0.0 if span == 0 else (year - earlier.year) / span
            updates: dict[str, object] = {"year": year}
            for name in _INTERPOLATED_FIELDS:
                a = getattr(earlier, name)
                b = getattr(later, name)
                value = a + (b - a) * t
                updates[name] = int(round(value)) if isinstance(a, int) else value
            return replace(earlier, **updates)
    raise AssertionError("unreachable: year not bracketed")


@dataclass(frozen=True)
class ChainProfile:
    """Full description of one simulated blockchain (cf. paper Table I)."""

    name: str
    display_name: str
    data_model: str            # "utxo" | "account"
    consensus: str             # "PoW" | "PoW+Sharding"
    smart_contracts: bool
    data_source: str           # "BigQuery" | "—" (Table I's last column)
    start_year: float
    end_year: float
    block_interval: float      # target seconds between blocks
    eras: tuple[Era, ...]
    num_exchanges: int = 3
    num_pools: int = 4
    num_contracts: int = 0
    # How many of the contracts (taken from the end of the population)
    # use dynamic-operand bodies (stack-popped storage keys and call
    # targets).  Default 0 keeps the stock profiles byte-identical;
    # the static-analysis bench and CLI opt in via dataclasses.replace.
    num_dynamic_contracts: int = 0
    user_zipf_exponent: float = 0.8
    exchange_zipf_exponent: float = 1.2
    num_shards: int = 0        # >0 enables Zilliqa-style sharding
    pool_names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.data_model not in ("utxo", "account"):
            raise ValueError(f"unknown data model {self.data_model!r}")
        if self.end_year <= self.start_year:
            raise ValueError("end_year must exceed start_year")
        if not self.eras:
            raise ValueError("profile needs at least one era")
        if not 0 <= self.num_dynamic_contracts <= self.num_contracts:
            raise ValueError(
                "num_dynamic_contracts must lie in [0, num_contracts]"
            )

    def era_at(self, year: float) -> Era:
        return interpolate_era(self.eras, year)

    def year_of_timestamp(self, timestamp: float) -> float:
        """Convert a chain-relative timestamp to a calendar year."""
        return self.start_year + timestamp / SECONDS_PER_YEAR

    @property
    def duration_years(self) -> float:
        return self.end_year - self.start_year


# ---------------------------------------------------------------------------
# The seven calibrated profiles.
# ---------------------------------------------------------------------------

BITCOIN = ChainProfile(
    name="bitcoin",
    display_name="Bitcoin",
    data_model="utxo",
    consensus="PoW",
    smart_contracts=False,
    data_source="BigQuery",
    start_year=2009.0,
    end_year=2019.8,
    block_interval=600.0,
    pool_names=("AntPool", "F2Pool", "BTC.com", "SlushPool"),
    eras=(
        Era(year=2009.0, mean_txs_per_block=2, num_users=300,
            pair_spend_rate=0.01, chain_event_rate=0.0),
        Era(year=2012.0, mean_txs_per_block=120, num_users=20_000,
            pair_spend_rate=0.09, chain_event_rate=0.5,
            chain_length_mean=5.0),
        Era(year=2015.0, mean_txs_per_block=700, num_users=120_000,
            pair_spend_rate=0.11, chain_event_rate=1.5,
            chain_length_mean=7.0),
        Era(year=2017.5, mean_txs_per_block=2100, num_users=400_000,
            pair_spend_rate=0.12, chain_event_rate=2.5,
            chain_length_mean=9.0),
        Era(year=2019.5, mean_txs_per_block=2300, num_users=500_000,
            pair_spend_rate=0.11, chain_event_rate=2.5,
            chain_length_mean=9.0),
    ),
    num_exchanges=5,
    num_pools=4,
)

BITCOIN_CASH = ChainProfile(
    name="bitcoin_cash",
    display_name="Bitcoin Cash",
    data_model="utxo",
    consensus="PoW",
    smart_contracts=False,
    data_source="BigQuery",
    # Shares Bitcoin's chain until the July 2017 fork; we simulate the
    # post-fork segment, whose traffic the paper contrasts with Bitcoin.
    start_year=2017.55,
    end_year=2019.8,
    block_interval=600.0,
    pool_names=("BTC.TOP", "ViaBTC", "AntPool"),
    eras=(
        # Fewer users than Bitcoin; exchanges generate a larger share of
        # the (smaller) traffic, hence higher conflict rates (§IV-C).
        Era(year=2017.55, mean_txs_per_block=180, num_users=12_000,
            pair_spend_rate=0.10, chain_event_rate=1.0,
            chain_length_mean=9.0),
        Era(year=2018.5, mean_txs_per_block=120, num_users=9_000,
            pair_spend_rate=0.12, chain_event_rate=1.2,
            chain_length_mean=10.0),
        Era(year=2019.5, mean_txs_per_block=220, num_users=10_000,
            pair_spend_rate=0.12, chain_event_rate=1.4,
            chain_length_mean=10.0),
    ),
    num_exchanges=3,
    num_pools=3,
)

LITECOIN = ChainProfile(
    name="litecoin",
    display_name="Litecoin",
    data_model="utxo",
    consensus="PoW",
    smart_contracts=False,
    data_source="BigQuery",
    start_year=2011.8,
    end_year=2019.8,
    block_interval=150.0,
    pool_names=("LitecoinPool", "F2Pool", "ViaBTC"),
    eras=(
        Era(year=2011.8, mean_txs_per_block=2, num_users=2_000,
            pair_spend_rate=0.01),
        Era(year=2015.0, mean_txs_per_block=8, num_users=15_000,
            pair_spend_rate=0.05, chain_event_rate=0.08,
            chain_length_mean=4.0),
        Era(year=2017.5, mean_txs_per_block=45, num_users=60_000,
            pair_spend_rate=0.07, chain_event_rate=0.2,
            chain_length_mean=5.0),
        Era(year=2019.5, mean_txs_per_block=30, num_users=50_000,
            pair_spend_rate=0.07, chain_event_rate=0.15,
            chain_length_mean=5.0),
    ),
    num_exchanges=3,
    num_pools=3,
)

DOGECOIN = ChainProfile(
    name="dogecoin",
    display_name="Dogecoin",
    data_model="utxo",
    consensus="PoW",
    smart_contracts=False,
    data_source="BigQuery",
    start_year=2013.95,
    end_year=2019.8,
    block_interval=60.0,
    pool_names=("Aikapool", "Prohashing"),
    eras=(
        Era(year=2013.95, mean_txs_per_block=25, num_users=8_000,
            pair_spend_rate=0.06, chain_event_rate=0.12,
            chain_length_mean=4.0),
        Era(year=2016.0, mean_txs_per_block=8, num_users=6_000,
            pair_spend_rate=0.07, chain_event_rate=0.12,
            chain_length_mean=4.0),
        Era(year=2019.5, mean_txs_per_block=15, num_users=9_000,
            pair_spend_rate=0.07, chain_event_rate=0.15,
            chain_length_mean=5.0),
    ),
    num_exchanges=2,
    num_pools=2,
)

ETHEREUM = ChainProfile(
    name="ethereum",
    display_name="Ethereum",
    data_model="account",
    consensus="PoW",
    smart_contracts=True,
    data_source="BigQuery",
    start_year=2015.6,
    end_year=2019.8,
    block_interval=14.0,
    pool_names=("Ethermine", "SparkPool", "DwarfPool", "F2Pool"),
    eras=(
        # Early era: small user base, exchange traffic dominates, high
        # conflict (tx-weighted single rate ~0.8).
        Era(year=2015.6, mean_txs_per_block=12, num_users=400,
            exchange_deposit_share=0.55, exchange_withdrawal_share=0.24,
            contract_call_share=0.08, contract_creation_share=0.030),
        Era(year=2016.5, mean_txs_per_block=45, num_users=1_800,
            exchange_deposit_share=0.48, exchange_withdrawal_share=0.22,
            contract_call_share=0.13, contract_creation_share=0.028),
        # 2017: ICO boom plus the underpriced-opcode DoS bursts.
        Era(year=2017.5, mean_txs_per_block=130, num_users=40_000,
            exchange_deposit_share=0.28, exchange_withdrawal_share=0.12,
            contract_call_share=0.24, contract_creation_share=0.022,
            internal_burst_prob=0.08),
        Era(year=2018.5, mean_txs_per_block=110, num_users=120_000,
            exchange_deposit_share=0.23, exchange_withdrawal_share=0.10,
            contract_call_share=0.28, contract_creation_share=0.018),
        Era(year=2019.5, mean_txs_per_block=120, num_users=260_000,
            exchange_deposit_share=0.17, exchange_withdrawal_share=0.07,
            contract_call_share=0.30, contract_creation_share=0.018),
    ),
    num_exchanges=5,
    num_pools=4,
    num_contracts=400,
    user_zipf_exponent=0.95,
    exchange_zipf_exponent=2.5,
)

ETHEREUM_CLASSIC = ChainProfile(
    name="ethereum_classic",
    display_name="Ethereum Classic",
    data_model="account",
    consensus="PoW",
    smart_contracts=True,
    data_source="BigQuery",
    start_year=2016.55,
    end_year=2019.8,
    block_interval=14.0,
    pool_names=("EtherMine-ETC", "2Miners"),
    eras=(
        # An order of magnitude fewer transactions *and* users than
        # Ethereum; the small user base concentrates traffic on the few
        # exchange addresses, driving the group conflict rate to ~0.7.
        Era(year=2016.55, mean_txs_per_block=12, num_users=900,
            exchange_deposit_share=0.45, exchange_withdrawal_share=0.22,
            contract_call_share=0.06, contract_creation_share=0.01),
        Era(year=2018.0, mean_txs_per_block=10, num_users=700,
            exchange_deposit_share=0.48, exchange_withdrawal_share=0.24,
            contract_call_share=0.05, contract_creation_share=0.01),
        Era(year=2019.5, mean_txs_per_block=9, num_users=650,
            exchange_deposit_share=0.50, exchange_withdrawal_share=0.24,
            contract_call_share=0.05, contract_creation_share=0.01),
    ),
    num_exchanges=2,
    num_pools=2,
    num_contracts=40,
    exchange_zipf_exponent=3.0,
)

ZILLIQA = ChainProfile(
    name="zilliqa",
    display_name="Zilliqa",
    data_model="account",
    consensus="PoW+Sharding",
    smart_contracts=True,
    data_source="—",  # not on BigQuery; collected via the SDK client
    start_year=2019.08,
    end_year=2019.8,
    block_interval=45.0,
    pool_names=("ZilPool",),
    eras=(
        # Young chain, small user base, heavily exchange-driven traffic:
        # the paper attributes Zilliqa's high conflict rates to workload
        # characteristics, not to sharding (§IV-A).
        Era(year=2019.08, mean_txs_per_block=8, num_users=400,
            exchange_deposit_share=0.52, exchange_withdrawal_share=0.26,
            contract_call_share=0.04, contract_creation_share=0.01),
        Era(year=2019.5, mean_txs_per_block=6, num_users=500,
            exchange_deposit_share=0.50, exchange_withdrawal_share=0.26,
            contract_call_share=0.05, contract_creation_share=0.01),
    ),
    num_exchanges=2,
    num_pools=1,
    num_contracts=10,
    exchange_zipf_exponent=2.5,
    num_shards=4,
)

ALL_PROFILES: tuple[ChainProfile, ...] = (
    BITCOIN,
    BITCOIN_CASH,
    LITECOIN,
    DOGECOIN,
    ETHEREUM,
    ETHEREUM_CLASSIC,
    ZILLIQA,
)

PROFILES_BY_NAME = {profile.name: profile for profile in ALL_PROFILES}

UTXO_PROFILES = tuple(p for p in ALL_PROFILES if p.data_model == "utxo")
ACCOUNT_PROFILES = tuple(p for p in ALL_PROFILES if p.data_model == "account")


def get_profile(name: str) -> ChainProfile:
    """Look up a profile by its short name (e.g. "ethereum")."""
    try:
        return PROFILES_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES_BY_NAME))
        raise KeyError(f"unknown chain {name!r}; known: {known}") from None
