"""Popularity distributions for workload generation.

Real blockchain traffic is extremely skewed: a handful of exchange and
mining-pool addresses appear in a large share of transactions (the
paper identifies Poloniex and DwarfPool by name in its Fig. 1 examples).
The workload generators model address popularity with truncated Zipf
distributions; this module implements efficient sampling.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class ZipfSampler:
    """Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^s.

    Precomputes the CDF once; each draw is a binary search, so sampling
    millions of transactions stays cheap.
    """

    population: int
    exponent: float
    _cdf: tuple[float, ...]

    def __len__(self) -> int:
        return self.population

    @staticmethod
    def create(population: int, exponent: float = 1.0) -> "ZipfSampler":
        """Build a sampler over *population* ranks with Zipf *exponent*.

        ``exponent = 0`` degenerates to the uniform distribution; larger
        exponents concentrate mass on the first ranks.
        """
        if population < 1:
            raise ValueError("population must be positive")
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        weights = [1.0 / (rank + 1) ** exponent for rank in range(population)]
        total = sum(weights)
        cumulative = 0.0
        cdf = []
        for weight in weights:
            cumulative += weight / total
            cdf.append(cumulative)
        cdf[-1] = 1.0  # guard against float drift
        return ZipfSampler(
            population=population, exponent=exponent, _cdf=tuple(cdf)
        )

    def sample(self, rng: random.Random) -> int:
        """Draw one rank."""
        return bisect.bisect_left(self._cdf, rng.random())

    def sample_many(self, rng: random.Random, count: int) -> list[int]:
        """Draw *count* i.i.d. ranks."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.sample(rng) for _ in range(count)]

    def probability_of(self, rank: int) -> float:
        """Probability mass of *rank*."""
        if not 0 <= rank < self.population:
            raise ValueError("rank out of range")
        previous = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - previous


def truncated_geometric(
    rng: random.Random, *, mean: float, minimum: int, maximum: int
) -> int:
    """Sample a geometric-like integer in [minimum, maximum] with ~*mean*.

    Used for intra-block spend-chain lengths: mostly short chains with
    an exponential tail, truncated so a chain never exceeds the block.
    """
    if minimum > maximum:
        raise ValueError("minimum exceeds maximum")
    if mean <= minimum:
        return minimum
    # Geometric on the offset above the minimum.
    p = 1.0 / (mean - minimum + 1.0)
    offset = 0
    while rng.random() > p and offset < maximum - minimum:
        offset += 1
    return minimum + offset
