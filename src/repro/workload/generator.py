"""Top-level workload entry point: profile -> analyzed chain history.

This is the function the examples and benches call.  It builds the
profile's synthetic chain (UTXO or account, sharded or not), runs the
analysis pipeline over every block, and returns the
:class:`repro.core.pipeline.ChainHistory`.

Block counts default to modest values so the full seven-chain suite runs
in seconds; ``num_blocks`` and ``scale`` let callers trade fidelity for
speed in either direction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import (
    ChainHistory,
    analyze_account_blocks,
    analyze_utxo_ledger,
)
from repro.workload.account_workload import (
    AccountWorkloadBuilder,
    build_account_chain,
)
from repro.workload.profiles import ChainProfile, get_profile
from repro.workload.utxo_workload import build_utxo_chain

DEFAULT_NUM_BLOCKS = 400


@dataclass(frozen=True)
class GeneratedChain:
    """A built chain plus its analyzed history."""

    profile: ChainProfile
    history: ChainHistory
    account_builder: AccountWorkloadBuilder | None = None


def generate_chain(
    profile: ChainProfile | str,
    *,
    num_blocks: int = DEFAULT_NUM_BLOCKS,
    seed: int = 0,
    scale: float = 1.0,
    backend: str = "serial",
    jobs: int | None = None,
    chunk_size: int | None = None,
) -> GeneratedChain:
    """Build and analyze one chain's synthetic history.

    Args:
        profile: a :class:`ChainProfile` or its short name.
        num_blocks: blocks to simulate, spread evenly over the profile's
            calendar span (block timestamps come from the PoW simulator,
            so longer chains cover the same years at finer resolution).
        seed: determinism seed.
        scale: per-block transaction volume multiplier.
        backend: analysis backend (``serial`` / ``thread`` / ``process``,
            see :mod:`repro.core.parallel`); chain *generation* stays
            serial either way, and every backend yields the same history.
        jobs: worker count for the parallel backends.
        chunk_size: blocks per parallel work unit.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    if profile.data_model == "utxo":
        ledger = build_utxo_chain(
            profile, num_blocks=num_blocks, seed=seed, scale=scale
        )
        history = analyze_utxo_ledger(
            ledger,
            name=profile.name,
            start_year=profile.start_year,
            backend=backend,
            jobs=jobs,
            chunk_size=chunk_size,
        )
        return GeneratedChain(profile=profile, history=history)
    builder = build_account_chain(
        profile, num_blocks=num_blocks, seed=seed, scale=scale
    )
    history = analyze_account_blocks(
        builder.executed_blocks,
        name=profile.name,
        start_year=profile.start_year,
        backend=backend,
        jobs=jobs,
        chunk_size=chunk_size,
    )
    return GeneratedChain(
        profile=profile, history=history, account_builder=builder
    )


def generate_all_chains(
    *,
    num_blocks: int = DEFAULT_NUM_BLOCKS,
    seed: int = 0,
    scale: float = 1.0,
    names: tuple[str, ...] | None = None,
    backend: str = "serial",
    jobs: int | None = None,
) -> dict[str, GeneratedChain]:
    """Generate every profile (or the named subset); keyed by chain name."""
    from repro.workload.profiles import ALL_PROFILES

    selected = [
        profile
        for profile in ALL_PROFILES
        if names is None or profile.name in names
    ]
    return {
        profile.name: generate_chain(
            profile, num_blocks=num_blocks, seed=seed, scale=scale,
            backend=backend, jobs=jobs,
        )
        for profile in selected
    }
