"""Top-level workload entry point: profile -> analyzed chain history.

This is the function the examples and benches call.  It builds the
profile's synthetic chain (UTXO or account, sharded or not), runs the
analysis pipeline over every block, and returns the
:class:`repro.core.pipeline.ChainHistory`.

Block counts default to modest values so the full seven-chain suite runs
in seconds; ``num_blocks`` and ``scale`` let callers trade fidelity for
speed in either direction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.pipeline import (
    ChainHistory,
    analyze_account_block,
    analyze_utxo_ledger,
)
from repro.workload.account_workload import (
    AccountWorkloadBuilder,
    build_account_chain,
)
from repro.workload.profiles import ChainProfile, get_profile
from repro.workload.utxo_workload import build_utxo_chain

DEFAULT_NUM_BLOCKS = 400


@dataclass(frozen=True)
class GeneratedChain:
    """A built chain plus its analyzed history."""

    profile: ChainProfile
    history: ChainHistory
    account_builder: AccountWorkloadBuilder | None = None


def generate_chain(
    profile: ChainProfile | str,
    *,
    num_blocks: int = DEFAULT_NUM_BLOCKS,
    seed: int = 0,
    scale: float = 1.0,
) -> GeneratedChain:
    """Build and analyze one chain's synthetic history.

    Args:
        profile: a :class:`ChainProfile` or its short name.
        num_blocks: blocks to simulate, spread evenly over the profile's
            calendar span (block timestamps come from the PoW simulator,
            so longer chains cover the same years at finer resolution).
        seed: determinism seed.
        scale: per-block transaction volume multiplier.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    if profile.data_model == "utxo":
        ledger = build_utxo_chain(
            profile, num_blocks=num_blocks, seed=seed, scale=scale
        )
        history = analyze_utxo_ledger(
            ledger, name=profile.name, start_year=profile.start_year
        )
        return GeneratedChain(profile=profile, history=history)
    builder = build_account_chain(
        profile, num_blocks=num_blocks, seed=seed, scale=scale
    )
    history = ChainHistory(
        name=profile.name,
        data_model="account",
        start_year=profile.start_year,
    )
    with obs.trace_span(
        "pipeline.chain", chain=profile.name, model="account"
    ):
        for block, executed in builder.executed_blocks:
            record, _tdg = analyze_account_block(
                executed,
                height=block.height,
                timestamp=block.header.timestamp,
            )
            history.append(record)
    return GeneratedChain(
        profile=profile, history=history, account_builder=builder
    )


def generate_all_chains(
    *,
    num_blocks: int = DEFAULT_NUM_BLOCKS,
    seed: int = 0,
    scale: float = 1.0,
    names: tuple[str, ...] | None = None,
) -> dict[str, GeneratedChain]:
    """Generate every profile (or the named subset); keyed by chain name."""
    from repro.workload.profiles import ALL_PROFILES

    selected = [
        profile
        for profile in ALL_PROFILES
        if names is None or profile.name in names
    ]
    return {
        profile.name: generate_chain(
            profile, num_blocks=num_blocks, seed=seed, scale=scale
        )
        for profile in selected
    }
