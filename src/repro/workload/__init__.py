"""Calibrated synthetic workloads for the seven blockchains of Table I."""

from repro.workload.account_workload import (
    AccountWorkloadBuilder,
    IntentKind,
    TxIntent,
    build_account_chain,
)
from repro.workload.actors import Actor, ActorKind, ActorPopulation
from repro.workload.generator import (
    DEFAULT_NUM_BLOCKS,
    GeneratedChain,
    generate_all_chains,
    generate_chain,
)
from repro.workload.profiles import (
    ACCOUNT_PROFILES,
    ALL_PROFILES,
    BITCOIN,
    BITCOIN_CASH,
    DOGECOIN,
    ETHEREUM,
    ETHEREUM_CLASSIC,
    LITECOIN,
    PROFILES_BY_NAME,
    UTXO_PROFILES,
    ZILLIQA,
    ChainProfile,
    Era,
    get_profile,
    interpolate_era,
)
from repro.workload.utxo_workload import UTXOWorkloadBuilder, build_utxo_chain
from repro.workload.zipf import ZipfSampler, truncated_geometric

__all__ = [
    "AccountWorkloadBuilder",
    "IntentKind",
    "TxIntent",
    "build_account_chain",
    "Actor",
    "ActorKind",
    "ActorPopulation",
    "DEFAULT_NUM_BLOCKS",
    "GeneratedChain",
    "generate_all_chains",
    "generate_chain",
    "ACCOUNT_PROFILES",
    "ALL_PROFILES",
    "BITCOIN",
    "BITCOIN_CASH",
    "DOGECOIN",
    "ETHEREUM",
    "ETHEREUM_CLASSIC",
    "LITECOIN",
    "PROFILES_BY_NAME",
    "UTXO_PROFILES",
    "ZILLIQA",
    "ChainProfile",
    "Era",
    "get_profile",
    "interpolate_era",
    "UTXOWorkloadBuilder",
    "build_utxo_chain",
    "ZipfSampler",
    "truncated_geometric",
]
