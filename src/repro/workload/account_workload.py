"""Synthetic account-chain history generation (Ethereum family, Zilliqa).

Builds a complete executed chain: transactions run against a live
:class:`repro.account.state.WorldState` through the contract VM, so
internal transactions, gas usage and storage access sets are *produced
by execution*, not sampled.  The traffic mix per block follows the
profile's era parameters:

* peer-to-peer transfers (mostly conflict-free);
* exchange deposits/withdrawals — fan-in/fan-out on a few hot addresses,
  the dominant conflict source (paper Fig. 1b's Poloniex example);
* contract calls — token transfers, proxy chains (depth-2 internal
  transactions like Fig. 1b's unverified-contract chain), and
  multi-call apps;
* contract creations — very high gas, essentially never conflicted,
  which is what pushes the gas-weighted conflict rate below the
  tx-weighted one (§IV-A);
* internal-transaction bursts modelling the 2017 underpriced-opcode DoS
  attacks (the spikes of Fig. 4a).

For sharded profiles (Zilliqa) the block's transaction intents are
routed through :class:`repro.sharding.zilliqa.ShardedChainBuilder`
first, which drops cross-shard contract calls and fixes the final
shard-major order before nonces are assigned.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum, unique

from repro.account.receipts import ExecutedTransaction
from repro.account.state import WorldState
from repro.account.transaction import (
    NULL_ADDRESS,
    AccountTransaction,
    make_account_transaction,
    make_coinbase_transaction,
)
from repro.chain.block import GENESIS_PARENT, Block, build_block
from repro.chain.errors import ChainError
from repro.chain.hashing import address_from_seed
from repro.chain.ledger import Ledger
from repro.consensus.pow import Miner, PoWSimulator, make_pool_set
from repro.sharding.zilliqa import ShardedChainBuilder
from repro.vm.contract import (
    CONST_INDEXED_ASM,
    DYNAMIC_COUNTER_ASM,
    DYNAMIC_PAYOUT_ASM,
    ROUTE_SINK_ASM,
    TOGGLE_BRANCH_ASM,
    TOKEN_TRANSFER_ASM,
    CodeRegistry,
    routed_call_asm,
    routed_payout_asm,
)
from repro.vm.vm import VM
from repro.workload.actors import ActorPopulation
from repro.workload.profiles import ChainProfile
from repro.workload.zipf import ZipfSampler

ETHER = 10**18
FAUCET_BALANCE = 10**24
FUNDING_THRESHOLD = 10**21


@unique
class IntentKind(Enum):
    TRANSFER = "transfer"
    DEPOSIT = "deposit"
    WITHDRAWAL = "withdrawal"
    CONTRACT_CALL = "contract_call"
    CONTRACT_CREATION = "contract_creation"
    BURST_CALL = "burst_call"


@dataclass(frozen=True)
class TxIntent:
    """A planned transaction before nonce assignment and execution."""

    kind: IntentKind
    sender: str
    receiver: str
    value: int
    gas_limit: int
    data: str = ""


@dataclass
class AccountWorkloadBuilder:
    """Generates an executed account chain from a :class:`ChainProfile`."""

    profile: ChainProfile
    seed: int = 0
    scale: float = 1.0
    rng: random.Random = field(init=False)
    population: ActorPopulation = field(init=False)
    state: WorldState = field(init=False)
    registry: CodeRegistry = field(init=False)
    vm: VM = field(init=False)
    ledger: Ledger[AccountTransaction] = field(init=False)
    executed_blocks: list[tuple[Block, list[ExecutedTransaction]]] = field(
        init=False, default_factory=list
    )
    sharding: ShardedChainBuilder | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.profile.data_model != "account":
            raise ValueError(
                f"profile {self.profile.name!r} is not an account chain"
            )
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        self.rng = random.Random(
            ("account", self.profile.name, self.seed).__repr__()
        )
        max_users = max(era.num_users for era in self.profile.eras)
        self.population = ActorPopulation.build(
            chain=self.profile.name,
            num_users=max_users,
            num_exchanges=self.profile.num_exchanges,
            num_pools=self.profile.num_pools,
            num_contracts=self.profile.num_contracts,
            user_zipf_exponent=self.profile.user_zipf_exponent,
        )
        self.state = WorldState()
        self.registry = CodeRegistry()
        self.vm = VM(self.registry)
        self.ledger = Ledger()
        self._user_sampler = ZipfSampler.create(
            max_users, self.profile.user_zipf_exponent
        )
        self._exchange_sampler = ZipfSampler.create(
            max(1, self.profile.num_exchanges),
            self.profile.exchange_zipf_exponent,
        )
        self._setup_contracts()
        if self.profile.num_shards > 0:
            self.sharding = ShardedChainBuilder(
                num_shards=self.profile.num_shards,
                contract_addresses={
                    actor.address for actor in self.population.contracts
                },
            )

    # -- setup -------------------------------------------------------------

    def _make_miners(self) -> list[Miner]:
        names = self.profile.pool_names or ("pool0",)
        share = 1.0 / len(names)
        return make_pool_set(
            [(name, share) for name in names],
            address_prefix=f"{self.profile.name}-pool",
        )

    def _helper_address(self, label: str) -> str:
        return address_from_seed(f"{self.profile.name}|helper|{label}")

    def _setup_contracts(self) -> None:
        """Deploy the profile's contract population.

        Archetypes rotate: plain token (no internal txs), proxy chains
        (depth-2/3 internal txs, Fig. 1b's pattern), and multi-call apps.
        A dedicated "burst" contract models the 2017 DoS transactions.
        When the profile sets ``num_dynamic_contracts``, that many
        contracts (from the end of the population) use dynamic-operand
        bodies instead, exercising the static analyzer's ⊤-widening.
        """
        first_dynamic = (
            len(self.population.contracts)
            - self.profile.num_dynamic_contracts
        )
        for index, actor in enumerate(self.population.contracts):
            if index >= first_dynamic:
                self.state.account(actor.address).code_id = (
                    self._setup_dynamic_contract(index, actor.address)
                )
                continue
            archetype = index % 4
            if archetype == 0:
                code_id = f"token{index}"
                self.registry.register_assembly(code_id, TOKEN_TRANSFER_ASM)
            elif archetype == 1:
                # Depth-3 proxy chain, like Fig. 1b's unverified contract
                # that forwards to another contract that hits ElcoinDb.
                # The terminal db contract is *shared* between proxies
                # (Fig. 1b's ElcoinDb serves several callers), so calls
                # to different proxies can truly conflict through an
                # internal edge invisible to the approximate TDG (§V-C).
                hop1 = self._helper_address(f"hop1_{index}")
                hop2 = self._helper_address(f"hop2_{index}")
                db = self._helper_address(f"shared_db{index // 8}")
                self.registry.register_assembly(
                    f"shared_db{index // 8}", "push 1\nsstore hits\nstop"
                )
                self.registry.register_assembly(
                    f"hop2_{index}", f"call {db} 0\nstop"
                )
                self.registry.register_assembly(
                    f"hop1_{index}", f"call {hop2} 0\nstop"
                )
                self.state.account(hop1).code_id = f"hop1_{index}"
                self.state.account(hop2).code_id = f"hop2_{index}"
                self.state.account(db).code_id = f"shared_db{index // 8}"
                code_id = f"proxy{index}"
                self.registry.register_assembly(
                    code_id, f"call {hop1} 0\nstop"
                )
            else:
                # Multi-call apps: wide fans of internal transactions
                # (airdrops, batch payouts, DeFi-style composition).
                width = 8 if archetype == 2 else 12
                targets = [
                    self._helper_address(f"sink{index}_{slot}")
                    for slot in range(width)
                ]
                body = "\n".join(f"transfer {target} 0" for target in targets)
                code_id = f"multicall{index}"
                self.registry.register_assembly(code_id, body + "\nstop")
            self.state.account(actor.address).code_id = code_id

        # DoS burst contract: a wide fan of zero-value transfers.
        burst_targets = [
            self._helper_address(f"burst{slot}") for slot in range(16)
        ]
        burst_body = "\n".join(
            f"transfer {target} 0" for target in burst_targets
        )
        self.registry.register_assembly("burst", burst_body + "\nstop")
        self._burst_address = self._helper_address("burst-entry")
        self.state.account(self._burst_address).code_id = "burst"

    def _setup_dynamic_contract(self, index: int, address: str) -> str:
        """Deploy one dynamic-operand contract body.

        Six archetypes rotate: storage-flag branching (static analysis
        must take both arms), counter-keyed writes (storage write ⊤),
        storage-read transfer targets (balance/endpoint ⊤),
        constant-indexed access (dynamic forms that still resolve
        precisely), and two *routed* bodies whose branch arms push
        different constant targets — ⊤-widened under the Const/⊤
        lattice, exactly resolved under the value-set lattice (the
        archetypes the static-conflict bench's before/after precision
        comparison turns on).
        """
        archetype = index % 6
        if archetype == 0:
            code_id = f"toggle{index}"
            self.registry.register_assembly(code_id, TOGGLE_BRANCH_ASM)
        elif archetype == 1:
            code_id = f"counter{index}"
            self.registry.register_assembly(code_id, DYNAMIC_COUNTER_ASM)
        elif archetype == 2:
            code_id = f"payout{index}"
            self.registry.register_assembly(code_id, DYNAMIC_PAYOUT_ASM)
            payee = self._helper_address(f"payee{index}")
            self.state.account(address).storage["payee"] = payee
            self.state.credit(address, FAUCET_BALANCE)
        elif archetype == 3:
            code_id = f"constidx{index}"
            self.registry.register_assembly(code_id, CONST_INDEXED_ASM)
        elif archetype == 4:
            # Two-way payout routed by a toggle: value-set-exact
            # balance targets.  Symbolic payee names keep the assembler
            # from parsing them as integers.
            code_id = f"routedpay{index}"
            self.registry.register_assembly(
                code_id,
                routed_payout_asm(f"payee_{index}_a", f"payee_{index}_b"),
            )
            self.state.credit(address, FAUCET_BALANCE)
        else:
            # Two-way call routed by a toggle: value-set-exact call
            # targets, each bound to a one-write sink contract.
            sink_a = f"route_{index}_a"
            sink_b = f"route_{index}_b"
            self.registry.register_assembly(f"routesink_{index}", ROUTE_SINK_ASM)
            self.state.account(sink_a).code_id = f"routesink_{index}"
            self.state.account(sink_b).code_id = f"routesink_{index}"
            code_id = f"routedcall{index}"
            self.registry.register_assembly(
                code_id, routed_call_asm(sink_a, sink_b)
            )
        return code_id

    # -- sampling helpers -----------------------------------------------------

    def _active_users(self, era) -> int:
        return max(1, min(era.num_users, len(self.population.users)))

    def _zipf_user(self, era) -> str:
        """A busy-head-biased user, restricted to the era's active base."""
        rank = self._user_sampler.sample(self.rng) % self._active_users(era)
        return self.population.users[rank].address

    def _uniform_user(self, era) -> str:
        rank = self.rng.randrange(self._active_users(era))
        return self.population.users[rank].address

    def _exchange(self) -> str:
        rank = self._exchange_sampler.sample(self.rng)
        return self.population.exchanges[rank].address

    def _ensure_funded(self, address: str) -> None:
        if self.state.balance_of(address) < FUNDING_THRESHOLD:
            self.state.credit(address, FAUCET_BALANCE)

    # -- intent generation -------------------------------------------------------

    def _plan_block(self, era) -> list[TxIntent]:
        """Draw this block's transaction intents from the era's mix."""
        mean = era.mean_txs_per_block * self.scale
        if mean <= 0:
            return []
        count = max(0, int(round(mean * self.rng.lognormvariate(0.0, 0.3))))
        intents: list[TxIntent] = []
        creation_data = "c" * 2_200  # heavy init code => ~0.2M gas
        for _ in range(count):
            roll = self.rng.random()
            deposit_cut = era.exchange_deposit_share
            withdrawal_cut = deposit_cut + era.exchange_withdrawal_share
            call_cut = withdrawal_cut + era.contract_call_share
            creation_cut = call_cut + era.contract_creation_share
            if roll < deposit_cut and self.population.exchanges:
                intents.append(
                    TxIntent(
                        kind=IntentKind.DEPOSIT,
                        sender=self._uniform_user(era),
                        receiver=self._exchange(),
                        value=self.rng.randint(1, 50) * ETHER // 10,
                        gas_limit=21_000,
                    )
                )
            elif roll < withdrawal_cut and self.population.exchanges:
                intents.append(
                    TxIntent(
                        kind=IntentKind.WITHDRAWAL,
                        sender=self._exchange(),
                        receiver=self._uniform_user(era),
                        value=self.rng.randint(1, 50) * ETHER // 10,
                        gas_limit=21_000,
                    )
                )
            elif roll < call_cut and self.population.contracts:
                contract = self.population.sample_contract(self.rng)
                intents.append(
                    TxIntent(
                        kind=IntentKind.CONTRACT_CALL,
                        sender=self._zipf_user(era),
                        receiver=contract.address,
                        value=0,
                        gas_limit=500_000,
                    )
                )
            elif roll < creation_cut:
                intents.append(
                    TxIntent(
                        kind=IntentKind.CONTRACT_CREATION,
                        sender=self._uniform_user(era),
                        receiver=NULL_ADDRESS,
                        value=0,
                        gas_limit=2_000_000,
                        data=creation_data,
                    )
                )
            else:
                sender = self._zipf_user(era)
                receiver = self._zipf_user(era)
                if receiver == sender:
                    receiver = self._uniform_user(era)
                intents.append(
                    TxIntent(
                        kind=IntentKind.TRANSFER,
                        sender=sender,
                        receiver=receiver,
                        value=self.rng.randint(1, 100) * ETHER // 100,
                        gas_limit=21_000,
                    )
                )
        # DoS-era bursts: a volley of calls into the burst contract.
        if era.internal_burst_prob > 0:
            if self.rng.random() < era.internal_burst_prob:
                volley = self.rng.randint(10, 30)
                attacker = self._uniform_user(era)
                intents.extend(
                    TxIntent(
                        kind=IntentKind.BURST_CALL,
                        sender=attacker,
                        receiver=self._burst_address,
                        value=0,
                        gas_limit=1_000_000,
                    )
                    for _ in range(volley)
                )
        return intents

    # -- block production ---------------------------------------------------------

    def build_chain(self, num_blocks: int) -> Ledger[AccountTransaction]:
        """Mine, plan, execute and commit *num_blocks* blocks.

        As with the UTXO builder, the PoW interval is compressed so the
        blocks sample the profile's full calendar span.
        """
        if num_blocks < 1:
            raise ValueError("num_blocks must be positive")
        from repro.workload.profiles import SECONDS_PER_YEAR

        effective_interval = (
            self.profile.duration_years * SECONDS_PER_YEAR / num_blocks
        )
        pow_sim = PoWSimulator(
            miners=self._make_miners(),
            target_interval=effective_interval,
            retarget_window=max(1, num_blocks // 10),
            rng=random.Random(("pow", self.profile.name, self.seed).__repr__()),
        )
        slots = pow_sim.mine_chain_timing(num_blocks)
        for slot in slots:
            self._build_block(slot.height, slot.timestamp, slot)
        return self.ledger

    def _build_block(self, height: int, timestamp: float, slot) -> None:
        year = self.profile.year_of_timestamp(timestamp)
        era = self.profile.era_at(year)
        intents = self._plan_block(era)

        if self.sharding is not None:
            intents = self._shard_order(intents)

        executed: list[ExecutedTransaction] = []
        transactions: list[AccountTransaction] = []

        coinbase = make_coinbase_transaction(
            miner=slot.miner.address, reward=2 * ETHER, height=height
        )
        executed.append(self.state.apply_transaction(coinbase))
        transactions.append(coinbase)

        for intent in intents:
            self._ensure_funded(intent.sender)
            tx = make_account_transaction(
                sender=intent.sender,
                receiver=intent.receiver,
                value=intent.value,
                nonce=self.state.nonce_of(intent.sender),
                gas_limit=intent.gas_limit,
                data=intent.data,
            )
            try:
                result = self.state.apply_transaction(
                    tx, executor=self.vm.execute_transaction
                )
            except ChainError:
                continue  # drop invalid intents, as a real mempool would
            executed.append(result)
            transactions.append(tx)

        parent = GENESIS_PARENT if height == 0 else self.ledger.tip.block_hash
        block: Block[AccountTransaction] = build_block(
            transactions,
            height=height,
            parent_hash=parent,
            timestamp=timestamp,
            difficulty=slot.difficulty,
            nonce=slot.nonce,
            miner=slot.miner.address,
            extra=f"shards={self.profile.num_shards}"
            if self.sharding
            else "",
        )
        self.ledger.append(block)
        self.executed_blocks.append((block, executed))

    def _shard_order(self, intents: list[TxIntent]) -> list[TxIntent]:
        """Route intents through the sharded chain builder.

        Cross-shard contract calls are dropped (recorded on the builder)
        and the surviving intents come back in shard-major order.
        """
        assert self.sharding is not None
        ordered: list[TxIntent] = []
        buckets: list[list[TxIntent]] = [
            [] for _ in range(self.sharding.num_shards)
        ]
        for intent in intents:
            is_contract = intent.receiver in self.sharding.contract_addresses
            sender_shard = self.sharding.shard_of(intent.sender)
            if is_contract and sender_shard != self.sharding.shard_of(
                intent.receiver
            ):
                continue  # cross-shard contract call: not supported
            buckets[sender_shard].append(intent)
        for bucket in buckets:
            ordered.extend(bucket)
        return ordered


def build_account_chain(
    profile: ChainProfile,
    *,
    num_blocks: int,
    seed: int = 0,
    scale: float = 1.0,
) -> AccountWorkloadBuilder:
    """One-call construction of a profile's synthetic account chain.

    Returns the builder, whose ``executed_blocks`` feed the analysis
    pipeline and whose ``ledger`` holds the committed chain.
    """
    builder = AccountWorkloadBuilder(profile=profile, seed=seed, scale=scale)
    builder.build_chain(num_blocks)
    return builder
