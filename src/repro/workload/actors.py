"""Actor populations: who sends blockchain transactions.

The paper's empirical findings all trace back to *who* is transacting:
exchanges receiving deposit fan-in, mining pools paying out and sweeping
rewards, ordinary users making one-off payments, and contracts being
called.  The workload generators draw senders and receivers from an
:class:`ActorPopulation`, whose composition per chain and per era is set
by the profiles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum, unique

from repro.chain.hashing import address_from_seed
from repro.workload.zipf import ZipfSampler


@unique
class ActorKind(Enum):
    USER = "user"
    EXCHANGE = "exchange"
    MINING_POOL = "mining_pool"
    CONTRACT = "contract"


@dataclass(frozen=True)
class Actor:
    """One address-bearing participant."""

    kind: ActorKind
    name: str
    address: str

    @staticmethod
    def create(kind: ActorKind, name: str, *, chain: str) -> "Actor":
        return Actor(
            kind=kind,
            name=name,
            address=address_from_seed(f"{chain}|{kind.value}|{name}"),
        )


@dataclass
class ActorPopulation:
    """The actor mix of one chain at one point in its history.

    Receiver sampling is a two-stage mixture: first pick a *kind* by the
    configured shares, then pick an actor of that kind — Zipf within
    users (some users are simply busier), uniform among the few
    exchanges/pools.  This reproduces the observed structure: a small
    hot set (exchanges, pools) plus a long user tail.
    """

    chain: str
    users: list[Actor]
    exchanges: list[Actor]
    pools: list[Actor]
    contracts: list[Actor] = field(default_factory=list)
    user_zipf_exponent: float = 0.8
    _user_sampler: ZipfSampler | None = field(default=None, repr=False)
    _contract_sampler: ZipfSampler | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.users:
            raise ValueError("population needs at least one user")
        self._user_sampler = ZipfSampler.create(
            len(self.users), self.user_zipf_exponent
        )
        if self.contracts:
            # Contract popularity is itself heavy-tailed: a few dominant
            # apps (the paper's ElCoin token handled 73k calls in 3 months).
            self._contract_sampler = ZipfSampler.create(len(self.contracts), 1.0)

    @staticmethod
    def build(
        *,
        chain: str,
        num_users: int,
        num_exchanges: int,
        num_pools: int,
        num_contracts: int = 0,
        user_zipf_exponent: float = 0.8,
    ) -> "ActorPopulation":
        """Create a deterministic population of the given shape."""
        users = [
            Actor.create(ActorKind.USER, f"user{index}", chain=chain)
            for index in range(num_users)
        ]
        exchanges = [
            Actor.create(ActorKind.EXCHANGE, f"exchange{index}", chain=chain)
            for index in range(num_exchanges)
        ]
        pools = [
            Actor.create(ActorKind.MINING_POOL, f"pool{index}", chain=chain)
            for index in range(num_pools)
        ]
        contracts = [
            Actor.create(ActorKind.CONTRACT, f"contract{index}", chain=chain)
            for index in range(num_contracts)
        ]
        return ActorPopulation(
            chain=chain,
            users=users,
            exchanges=exchanges,
            pools=pools,
            contracts=contracts,
            user_zipf_exponent=user_zipf_exponent,
        )

    # -- sampling -----------------------------------------------------------

    def sample_user(self, rng: random.Random) -> Actor:
        """A user, Zipf-weighted toward the busy head."""
        assert self._user_sampler is not None
        return self.users[self._user_sampler.sample(rng)]

    def sample_uniform_user(self, rng: random.Random) -> Actor:
        """A user chosen uniformly (e.g. a fresh withdrawal target)."""
        return rng.choice(self.users)

    def sample_exchange(self, rng: random.Random) -> Actor:
        if not self.exchanges:
            raise ValueError(f"chain {self.chain} has no exchanges")
        return rng.choice(self.exchanges)

    def sample_pool(self, rng: random.Random) -> Actor:
        if not self.pools:
            raise ValueError(f"chain {self.chain} has no pools")
        return rng.choice(self.pools)

    def sample_contract(self, rng: random.Random) -> Actor:
        if not self.contracts:
            raise ValueError(f"chain {self.chain} has no contracts")
        assert self._contract_sampler is not None
        return self.contracts[self._contract_sampler.sample(rng)]

    def all_actors(self) -> list[Actor]:
        return [*self.users, *self.exchanges, *self.pools, *self.contracts]
