"""Synthetic UTXO-chain history generation (Bitcoin family).

Builds a complete, *valid* chain: every generated transaction spends
real unspent outputs against a live :class:`repro.utxo.utxo_set.UTXOSet`,
blocks are assembled with Merkle commitments and appended to a
link-validated ledger, and PoW simulation supplies timestamps and miner
identities.

Conflict structure is injected explicitly, following the mechanisms the
paper identifies for UTXO chains (§IV-A):

* **pair spends** — an output created earlier in the block is spent by a
  later transaction (deposit-then-sweep patterns);
* **sweep chains** — long sequences of transactions each spending the
  previous one's output within one block, like the 18-transaction chain
  of Bitcoin block 500,000 (paper Fig. 6); attributed to exchanges,
  pools and protocols layered over the scripting language.

Everything else in a block spends outputs of *earlier* blocks and is
therefore conflict-free, matching the dominant Bitcoin behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.chain.block import GENESIS_PARENT, Block, build_block
from repro.chain.ledger import Ledger
from repro.consensus.pow import Miner, PoWSimulator, make_pool_set
from repro.utxo.transaction import (
    TxOutputSpec,
    UTXOTransaction,
    make_coinbase,
    make_transaction,
)
from repro.utxo.txo import COIN, TXO
from repro.utxo.utxo_set import UTXOSet
from repro.workload.actors import ActorPopulation
from repro.workload.profiles import ChainProfile
from repro.workload.zipf import truncated_geometric

# Outputs below this value are treated as dust and never respent.
DUST_LIMIT = 1_000
# Faucet endowment backing the whole simulated economy.
FAUCET_ENDOWMENT = 10_000_000 * COIN
FANOUT_WIDTH = 24


def _tx_size(num_inputs: int, num_outputs: int) -> int:
    """Approximate serialised size of a transaction in bytes."""
    return 10 + 148 * num_inputs + 34 * num_outputs


@dataclass
class UTXOWorkloadBuilder:
    """Generates a UTXO chain following a :class:`ChainProfile`.

    Args:
        profile: the chain's calibrated profile.
        seed: RNG seed; equal seeds give byte-identical chains.
        scale: multiplier on per-block transaction volume, letting tests
            and benches run the same code at reduced cost.
    """

    profile: ChainProfile
    seed: int = 0
    scale: float = 1.0
    rng: random.Random = field(init=False)
    population: ActorPopulation = field(init=False)
    utxo_set: UTXOSet = field(init=False)
    ledger: Ledger[UTXOTransaction] = field(init=False)

    def __post_init__(self) -> None:
        if self.profile.data_model != "utxo":
            raise ValueError(
                f"profile {self.profile.name!r} is not a UTXO chain"
            )
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        self.rng = random.Random(("utxo", self.profile.name, self.seed).__repr__())
        max_users = max(era.num_users for era in self.profile.eras)
        self.population = ActorPopulation.build(
            chain=self.profile.name,
            num_users=max_users,
            num_exchanges=self.profile.num_exchanges,
            num_pools=self.profile.num_pools,
            user_zipf_exponent=self.profile.user_zipf_exponent,
        )
        self.utxo_set = UTXOSet()
        self.ledger = Ledger()
        self._spendable: list[TXO] = []

    def _make_miners(self) -> list[Miner]:
        names = self.profile.pool_names or ("pool0",)
        share = 1.0 / len(names)
        return make_pool_set(
            [(name, share) for name in names],
            address_prefix=f"{self.profile.name}-pool",
        )

    # -- spendable-output management ----------------------------------------

    def _take_spendable(self) -> TXO | None:
        """Pop a uniformly random spendable output (swap-remove)."""
        while self._spendable:
            index = self.rng.randrange(len(self._spendable))
            self._spendable[index], self._spendable[-1] = (
                self._spendable[-1],
                self._spendable[index],
            )
            txo = self._spendable.pop()
            if txo.outpoint in self.utxo_set and txo.value >= DUST_LIMIT:
                return txo
        return None

    def _offer(self, txos: list[TXO]) -> None:
        """Queue freshly confirmed outputs for spending in later blocks."""
        for txo in txos:
            if txo.value >= DUST_LIMIT:
                self._spendable.append(txo)

    # -- transaction fabrication ----------------------------------------------

    def _payment_outputs(
        self, value: int, receiver: str, change_owner: str
    ) -> list[TxOutputSpec]:
        """Split *value* into a payment plus change."""
        payment = max(DUST_LIMIT, int(value * self.rng.uniform(0.1, 0.9)))
        payment = min(payment, value)
        change = value - payment
        outputs = [TxOutputSpec(value=payment, owner=receiver)]
        if change >= DUST_LIMIT:
            outputs.append(TxOutputSpec(value=change, owner=change_owner))
        else:
            outputs[0] = TxOutputSpec(value=value, owner=receiver)
        return outputs

    def _sample_receiver(self) -> str:
        """Receivers: mostly users, with an exchange-bound share."""
        if self.rng.random() < 0.25 and self.population.exchanges:
            return self.population.sample_exchange(self.rng).address
        return self.population.sample_user(self.rng).address

    def _independent_payment(self, nonce: int) -> UTXOTransaction | None:
        """A payment spending previous-block outputs: conflict-free.

        Real wallets often consolidate several UTXOs into one payment;
        transactions here spend 1-3 inputs (the paper's Fig. 5a shows
        roughly twice as many input TXOs as transactions per block).
        """
        source = self._take_spendable()
        if source is None:
            return None
        sources = [source]
        roll = self.rng.random()
        extra_inputs = 0 if roll < 0.5 else (1 if roll < 0.8 else 2)
        for _ in range(extra_inputs):
            extra = self._take_spendable()
            if extra is None:
                break
            sources.append(extra)
        total_value = sum(txo.value for txo in sources)
        outputs = self._payment_outputs(
            total_value, self._sample_receiver(), source.owner
        )
        return make_transaction(
            inputs=[txo.outpoint for txo in sources],
            outputs=outputs,
            nonce=nonce,
            size_bytes=_tx_size(len(sources), len(outputs)),
        )

    def _pair_spend(self, nonce: int) -> list[UTXOTransaction]:
        """Two transactions where the second spends the first's output."""
        source = self._take_spendable()
        if source is None:
            return []
        exchange = (
            self.population.sample_exchange(self.rng).address
            if self.population.exchanges
            else self.population.sample_user(self.rng).address
        )
        first = make_transaction(
            inputs=[source.outpoint],
            outputs=[TxOutputSpec(value=source.value, owner=exchange)],
            nonce=(nonce, 0),
            size_bytes=_tx_size(1, 1),
        )
        second = make_transaction(
            inputs=[first.outputs[0].outpoint],
            outputs=self._payment_outputs(
                source.value, self._sample_receiver(), exchange
            ),
            nonce=(nonce, 1),
            size_bytes=_tx_size(1, 2),
        )
        return [first, second]

    def _sweep_chain(self, nonce: int, length: int) -> list[UTXOTransaction]:
        """A Fig. 6-style chain: each tx spends its predecessor's output."""
        source = self._take_spendable()
        if source is None or length < 2:
            return []
        owner = (
            self.population.sample_exchange(self.rng).address
            if self.population.exchanges
            else source.owner
        )
        chain: list[UTXOTransaction] = []
        current = source
        for step in range(length):
            value = current.value
            splinter = 0
            outputs = [TxOutputSpec(value=value, owner=owner)]
            if value >= 4 * DUST_LIMIT and step < length - 1:
                splinter = max(
                    DUST_LIMIT, int(value * self.rng.uniform(0.005, 0.05))
                )
                outputs = [
                    TxOutputSpec(value=value - splinter, owner=owner),
                    TxOutputSpec(
                        value=splinter, owner=self._sample_receiver()
                    ),
                ]
            tx = make_transaction(
                inputs=[current.outpoint],
                outputs=outputs,
                nonce=(nonce, step),
                size_bytes=_tx_size(1, len(outputs)),
            )
            chain.append(tx)
            current = tx.outputs[0]
            if current.value < DUST_LIMIT:
                break
        return chain

    def _fanout(self, source: TXO, nonce: int) -> UTXOTransaction:
        """Split one large output into FANOUT_WIDTH user outputs."""
        share = source.value // FANOUT_WIDTH
        outputs = [
            TxOutputSpec(
                value=share,
                owner=self.population.sample_uniform_user(self.rng).address,
            )
            for _ in range(FANOUT_WIDTH - 1)
        ]
        outputs.append(
            TxOutputSpec(
                value=source.value - share * (FANOUT_WIDTH - 1),
                owner=source.owner,
            )
        )
        return make_transaction(
            inputs=[source.outpoint],
            outputs=outputs,
            nonce=("fanout", nonce),
            size_bytes=_tx_size(1, FANOUT_WIDTH),
        )


    # -- block production -------------------------------------------------------

    def build_chain(self, num_blocks: int) -> Ledger[UTXOTransaction]:
        """Mine and fill *num_blocks* blocks; returns the ledger.

        The simulated blocks sample the profile's full calendar span:
        the PoW target interval is compressed so *num_blocks* blocks
        cover ``start_year .. end_year``, with the usual exponential
        jitter around each interval.
        """
        if num_blocks < 1:
            raise ValueError("num_blocks must be positive")
        from repro.workload.profiles import SECONDS_PER_YEAR

        effective_interval = (
            self.profile.duration_years * SECONDS_PER_YEAR / num_blocks
        )
        pow_sim = PoWSimulator(
            miners=self._make_miners(),
            target_interval=effective_interval,
            retarget_window=max(1, num_blocks // 10),
            hashrate_growth=0.0005,
            rng=random.Random(("pow", self.profile.name, self.seed).__repr__()),
        )
        slots = pow_sim.mine_chain_timing(num_blocks)
        for slot in slots:
            self._build_block(slot.height, slot.timestamp, slot)
        return self.ledger

    def _target_txs(self, era_mean: float) -> int:
        """Per-block transaction count: lognormal-ish around the mean."""
        scaled = era_mean * self.scale
        if scaled <= 0:
            return 0
        jitter = self.rng.lognormvariate(0.0, 0.35)
        return max(0, int(round(scaled * jitter)))

    def _build_block(self, height: int, timestamp: float, slot) -> None:
        year = self.profile.year_of_timestamp(timestamp)
        era = self.profile.era_at(year)
        reward = 50 * COIN
        miner_address = slot.miner.address

        transactions: list[UTXOTransaction] = [
            make_coinbase(reward=reward, miner=miner_address, height=height)
        ]
        if height == 0:
            # The faucet bootstraps the economy: a large endowment the
            # first block fans out from.
            transactions[0] = make_coinbase(
                reward=FAUCET_ENDOWMENT, miner=miner_address, height=0
            )

        target = self._target_txs(era.mean_txs_per_block)
        confirmed_outputs: list[TXO] = []

        # Keep the spendable pool deep enough for this block's demand.
        nonce_counter = height * 1_000_000
        while len(self._spendable) < target * 2 + FANOUT_WIDTH:
            big = self._largest_spendable()
            if big is None:
                break
            fanout = self._fanout(big, nonce_counter)
            nonce_counter += 1
            transactions.append(fanout)
            confirmed_outputs.extend(fanout.outputs)
            if len(transactions) - 1 >= max(target, 1):
                break

        budget = max(0, target - (len(transactions) - 1))

        # Sweep chains (Fig. 6 events).
        num_chains = self._poisson(era.chain_event_rate)
        for _ in range(num_chains):
            if budget < 3:
                break
            length = truncated_geometric(
                self.rng,
                mean=era.chain_length_mean,
                minimum=3,
                maximum=min(40, budget),
            )
            chain = self._sweep_chain(nonce_counter, length)
            nonce_counter += 1
            if not chain:
                break
            transactions.extend(chain)
            confirmed_outputs.extend(
                txo for tx in chain for txo in tx.outputs
            )
            budget -= len(chain)

        # Pair spends.
        num_pairs = int(round(era.pair_spend_rate * target / 2.0))
        for _ in range(num_pairs):
            if budget < 2:
                break
            pair = self._pair_spend(nonce_counter)
            nonce_counter += 1
            if not pair:
                break
            transactions.extend(pair)
            confirmed_outputs.extend(txo for tx in pair for txo in tx.outputs)
            budget -= 2

        # Independent payments fill the rest of the block.
        for _ in range(budget):
            tx = self._independent_payment(nonce_counter)
            nonce_counter += 1
            if tx is None:
                break
            transactions.append(tx)
            confirmed_outputs.extend(tx.outputs)

        # Apply to state (validates every spend), then commit the block.
        self.utxo_set.apply_block(transactions)
        self._offer(confirmed_outputs)
        self._offer(list(transactions[0].outputs))

        parent = (
            GENESIS_PARENT if height == 0 else self.ledger.tip.block_hash
        )
        block: Block[UTXOTransaction] = build_block(
            transactions,
            height=height,
            parent_hash=parent,
            timestamp=timestamp,
            difficulty=slot.difficulty,
            nonce=slot.nonce,
            miner=miner_address,
        )
        self.ledger.append(block)

    def _largest_spendable(self) -> TXO | None:
        """Pop the most valuable live output (for fan-outs)."""
        best_index = -1
        best_value = 0
        for index, txo in enumerate(self._spendable):
            if txo.value > best_value and txo.outpoint in self.utxo_set:
                best_value = txo.value
                best_index = index
        if best_index < 0:
            return None
        self._spendable[best_index], self._spendable[-1] = (
            self._spendable[-1],
            self._spendable[best_index],
        )
        return self._spendable.pop()

    def _poisson(self, mean: float) -> int:
        """Small-mean Poisson sample via inversion."""
        if mean <= 0:
            return 0
        # Knuth's method is fine for the small means used here.
        import math

        limit = math.exp(-mean)
        count = 0
        product = self.rng.random()
        while product > limit:
            count += 1
            product *= self.rng.random()
        return count


def build_utxo_chain(
    profile: ChainProfile,
    *,
    num_blocks: int,
    seed: int = 0,
    scale: float = 1.0,
) -> Ledger[UTXOTransaction]:
    """One-call construction of a profile's synthetic UTXO chain."""
    builder = UTXOWorkloadBuilder(profile=profile, seed=seed, scale=scale)
    return builder.build_chain(num_blocks)
