"""Command-line interface for the reproduction.

Usage (also installed as the ``repro`` console script)::

    python -m repro.cli table1
    python -m repro.cli analyze --chain ethereum --blocks 120
    python -m repro.cli speedup --chain ethereum --cores 4,8,64
    python -m repro.cli compare --left ethereum --right ethereum_classic
    python -m repro.cli examples
    python -m repro.cli export --chain bitcoin --out ./data
    python -m repro.cli profile --chain ethereum --blocks 50 \
        --trace-out spans.jsonl
    python -m repro.cli analyze --chain bitcoin --blocks 500 \
        --backend process --jobs 8
    python -m repro.cli replay --chain ethereum --blocks 40 \
        --backend process --jobs 4 --out replay_trace.json

Every command is deterministic under ``--seed`` — including the
parallel analysis backends (``--backend`` / ``--jobs``), which produce
output identical to the serial walk.  Unknown ``--chain`` names, bad
``--jobs`` and friends exit with status 2 and a one-line message.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.examples import (
    block_358624_block,
    figure_1a_block,
    figure_1b_block,
    figure_6_chain,
)
from repro.analysis.figures import (
    conflict_series,
    figure10,
    load_series,
)
from repro.analysis.report import (
    format_rate,
    render_series_table,
    render_table,
    render_table1,
)
from repro.workload.generator import generate_chain
from repro.workload.profiles import ALL_PROFILES, PROFILES_BY_NAME


class CLIError(Exception):
    """A user-facing CLI failure: printed to stderr, exit status 2."""


def _resolve_profile(name: str):
    """Profile lookup with a clear, nonzero-exit error for bad names."""
    try:
        return PROFILES_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES_BY_NAME))
        raise CLIError(
            f"unknown chain {name!r}; known chains: {known}"
        ) from None


def _add_generation_args(
    parser: argparse.ArgumentParser, *, default_blocks: int = 120
) -> None:
    known = ", ".join(sorted(PROFILES_BY_NAME))
    parser.add_argument(
        "--chain",
        required=True,
        metavar="NAME",
        help=f"which blockchain profile to simulate (one of: {known})",
    )
    parser.add_argument("--blocks", type=int, default=default_blocks,
                        help="number of blocks to simulate")
    parser.add_argument("--seed", type=int, default=0,
                        help="determinism seed")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="transaction-volume multiplier")
    parser.add_argument("--buckets", type=int, default=16,
                        help="number of time buckets in printed series")


def _add_parallel_args(parser: argparse.ArgumentParser) -> None:
    from repro.core.parallel import BACKENDS

    parser.add_argument(
        "--backend", choices=BACKENDS, default="serial",
        help="block-analysis backend (parallel backends produce "
             "identical output; see docs/parallel_pipeline.md)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker count for the thread/process backends "
             "(default: CPU count)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None, metavar="BLOCKS",
        help="blocks per parallel work unit (default: balanced)",
    )


def _parallel_kwargs(args: argparse.Namespace) -> dict:
    """Validate --backend/--jobs/--chunk-size into analyze kwargs.

    Raises :class:`CLIError` (exit 2) instead of a raw traceback on
    ``--jobs 0`` and friends, mirroring the unknown-chain handling.
    """
    from repro.core.parallel import validate_backend, validate_jobs

    backend = getattr(args, "backend", "serial")
    jobs = getattr(args, "jobs", None)
    try:
        backend = validate_backend(backend)
        jobs = validate_jobs(jobs, backend=backend)
        chunk_size = getattr(args, "chunk_size", None)
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(
                f"chunk size must be >= 1, got {chunk_size}"
            )
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    return {"backend": backend, "jobs": jobs, "chunk_size": chunk_size}


def _add_sampling_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--rate", default="1/1", metavar="K/N",
        help="head-based trace sampling rate, e.g. 1/100 (default: "
             "1/1, trace everything; counters stay exact either way)",
    )
    parser.add_argument(
        "--policy", default="exact", choices=("exact", "sketch"),
        help="histogram policy: exact sample retention or "
             "bounded-memory sketches (default: exact)",
    )
    parser.add_argument(
        "--tail", type=float, default=None, metavar="SECONDS",
        help="tail-based sampling: keep any trace whose simulated "
             "duration reaches SECONDS even if head-dropped "
             "(default: off)",
    )


def _sampling_components(args: argparse.Namespace):
    """(rate, registry, lifecycle tracer) from --rate/--policy/--tail.

    Bad values raise :class:`CLIError` (exit 2), matching the rest of
    the argument validation.
    """
    from repro.obs.lifecycle import LifecycleTracer
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.sampling import SampledLifecycleTracer, parse_rate

    tail = getattr(args, "tail", None)
    try:
        rate = parse_rate(args.rate)
        registry = MetricsRegistry(policy=args.policy)
        if rate.is_full and tail is None:
            life: LifecycleTracer = LifecycleTracer(registry=registry)
        else:
            life = SampledLifecycleTracer(
                rate=rate, registry=registry, tail_seconds=tail
            )
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    return rate, registry, life


def _generate(args: argparse.Namespace):
    profile = _resolve_profile(args.chain)
    return generate_chain(
        profile,
        num_blocks=args.blocks,
        seed=args.seed,
        scale=args.scale,
        **_parallel_kwargs(args),
    )


def cmd_table1(_args: argparse.Namespace) -> int:
    print(render_table1(ALL_PROFILES))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    chain = _generate(args)
    history = chain.history
    print(render_series_table(
        load_series(history, num_buckets=args.buckets).series,
        title=f"{args.chain}: transactions per block",
        value_format="{:10.1f}",
    ))
    print()
    print(render_series_table(
        conflict_series(
            history, metric="single", num_buckets=args.buckets
        ).series,
        title=f"{args.chain}: single-transaction conflict rate",
    ))
    print()
    print(render_series_table(
        conflict_series(
            history, metric="group", num_buckets=args.buckets
        ).series,
        title=f"{args.chain}: group conflict rate",
    ))
    return 0


def cmd_speedup(args: argparse.Namespace) -> int:
    try:
        cores = tuple(int(part) for part in args.cores.split(","))
    except ValueError:
        print(f"error: --cores must be comma-separated integers, "
              f"got {args.cores!r}", file=sys.stderr)
        return 2
    if not cores or any(n < 1 for n in cores):
        print("error: core counts must be positive", file=sys.stderr)
        return 2
    chain = _generate(args)
    panels = figure10(chain.history, cores=cores, num_buckets=args.buckets)
    print(render_series_table(
        panels["speculative"].series,
        title=f"{args.chain}: speculative speed-ups (Eq. 1)",
        value_format="{:10.3f}",
    ))
    print()
    print(render_series_table(
        panels["grouped"].series,
        title=f"{args.chain}: group-concurrency speed-ups (Eq. 2)",
        value_format="{:10.3f}",
    ))
    if args.measured:
        from repro.execution.parallel_replay import ENGINES, replay_profile

        parallel = _parallel_kwargs(args)
        profile = _resolve_profile(args.chain)
        per_core = {}
        for n in cores:
            result = replay_profile(
                profile, blocks=args.blocks, seed=args.seed,
                scale=args.scale, engines=ENGINES, cores=n, **parallel,
            )
            per_core[n] = {s.engine: s for s in result.summaries()}
        print()
        print(render_table(
            ["engine", *(f"{n} cores" for n in cores)],
            [
                (engine,
                 *(f"{per_core[n][engine].speedup:7.3f}" for n in cores))
                for engine in ENGINES
            ],
            title=(
                f"{args.chain}: measured replay speed-ups "
                f"({parallel['backend']} backend)"
            ),
        ))
        roots = {
            per_core[n][engine].state_root
            for n in cores for engine in ENGINES
        }
        if len(roots) == 1:
            print("state roots identical across all engines and core "
                  "counts")
        else:
            print("warning: engines disagree on committed state roots",
                  file=sys.stderr)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    parallel = _parallel_kwargs(args)
    headers = ["chain", "mean txs", "single conflict", "group conflict"]
    if args.measured:
        headers += ["spec R", "group R"]
    rows = []
    for name in (args.left, args.right):
        profile = _resolve_profile(name)
        chain = generate_chain(
            profile, num_blocks=args.blocks, seed=args.seed,
            scale=args.scale, **parallel,
        )
        records = chain.history.non_empty_records()
        weight = sum(r.weight_tx for r in records) or 1.0
        single = sum(
            r.metrics.single_conflict_rate * r.weight_tx for r in records
        ) / weight
        group = sum(
            r.metrics.group_conflict_rate * r.weight_tx for r in records
        ) / weight
        row = (
            name,
            f"{chain.history.mean_transactions_per_block():9.1f}",
            format_rate(single),
            format_rate(group),
        )
        if args.measured:
            from repro.execution.parallel_replay import replay_profile

            result = replay_profile(
                profile, blocks=args.blocks, seed=args.seed,
                scale=args.scale, engines=("speculative", "grouped"),
                cores=args.cores, **parallel,
            )
            row = row + (
                f"{result.summary('speculative').speedup:6.3f}",
                f"{result.summary('grouped').speedup:6.3f}",
            )
        rows.append(row)
    title = "chain comparison (cf. paper Figs. 8-9)"
    if args.measured:
        title += f"; measured R on {args.cores} cores"
    print(render_table(headers, rows, title=title))
    return 0


def cmd_examples(_args: argparse.Namespace) -> int:
    a = figure_1a_block()
    b = figure_1b_block()
    transactions, tdg = figure_6_chain()
    print("paper worked examples:")
    print(f"  Fig. 1a (block 1000007): single "
          f"{format_rate(a.metrics.single_conflict_rate)}, group "
          f"{format_rate(a.metrics.group_conflict_rate)}  (paper: 40%/40%)")
    print(f"  Fig. 1b (block 1000124): single "
          f"{format_rate(b.single_conflict_rate_with_coinbase)}, group "
          f"{format_rate(b.group_conflict_rate_with_coinbase)}  "
          f"(paper: 87.5%/56.25%)")
    print(f"  Fig. 6 (block 500000): spend chain of {len(transactions)} "
          f"transactions, LCC {tdg.lcc_size}  (paper: 18)")
    extreme = block_358624_block()
    print(f"  §I (block 358624): {extreme.metrics.lcc_size} of "
          f"{extreme.tdg.num_transactions} transactions dependent  "
          f"(paper: 3217 of 3264)")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from repro.datasets.export import (
        export_account_blocks,
        export_utxo_ledger,
    )
    from repro.workload.account_workload import build_account_chain
    from repro.workload.utxo_workload import build_utxo_chain

    profile = _resolve_profile(args.chain)
    if profile.data_model == "utxo":
        ledger = build_utxo_chain(
            profile, num_blocks=args.blocks, seed=args.seed,
            scale=args.scale,
        )
        store = export_utxo_ledger(ledger, chain=args.chain)
    else:
        builder = build_account_chain(
            profile, num_blocks=args.blocks, seed=args.seed,
            scale=args.scale,
        )
        store = export_account_blocks(
            builder.executed_blocks, chain=args.chain
        )
    written = store.export_csv(args.out)
    for path in written:
        print(f"wrote {path}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Generate the full per-figure report into a directory."""
    from pathlib import Path

    from repro.analysis.figures import figure7, figure8, figure9

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    def write(name: str, text: str) -> None:
        path = out / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"wrote {path}")

    write("table1", render_table1(ALL_PROFILES))

    print("generating chains (this takes a minute at full volume)...")
    parallel = _parallel_kwargs(args)
    chains = {
        profile.name: generate_chain(
            profile,
            num_blocks=args.blocks,
            seed=args.seed,
            scale=args.scale,
            **parallel,
        )
        for profile in ALL_PROFILES
    }
    histories = {name: chain.history for name, chain in chains.items()}

    for name in ("ethereum", "bitcoin"):
        history = histories[name]
        fig = "fig4" if name == "ethereum" else "fig5"
        parts = [
            render_series_table(
                load_series(history, num_buckets=args.buckets).series,
                title=f"{fig}a: {name} transactions per block",
                value_format="{:10.1f}",
            ),
            render_series_table(
                conflict_series(
                    history, metric="single", num_buckets=args.buckets
                ).series,
                title=f"{fig}b: {name} single-transaction conflict rate",
            ),
            render_series_table(
                conflict_series(
                    history, metric="group", num_buckets=args.buckets
                ).series,
                title=f"{fig}c: {name} group conflict rate",
            ),
        ]
        write(f"{fig}_{name}", "\n\n".join(parts))

    panels = figure7(histories, num_buckets=args.buckets)
    write(
        "fig7_all_chains",
        "\n\n".join(
            render_series_table(panels[metric].series,
                                title=f"fig7 {metric} conflict rate")
            for metric in ("single", "group")
        ),
    )
    eight = figure8(
        histories["ethereum"], histories["ethereum_classic"],
        num_buckets=args.buckets,
    )
    write(
        "fig8_eth_vs_etc",
        "\n\n".join(
            render_series_table(eight[k].series, title=f"fig8 {k}")
            for k in ("load", "single", "group")
        ),
    )
    nine = figure9(
        histories["bitcoin"], histories["bitcoin_cash"],
        num_buckets=args.buckets,
    )
    write(
        "fig9_btc_vs_bch",
        "\n\n".join(
            render_series_table(nine[k].series, title=f"fig9 {k}")
            for k in ("load", "single", "lcc_absolute")
        ),
    )
    ten = figure10(
        histories["ethereum"], cores=(4, 8, 64), num_buckets=args.buckets
    )
    write(
        "fig10_speedups",
        "\n\n".join(
            render_series_table(
                ten[k].series, title=f"fig10 {k}", value_format="{:10.3f}"
            )
            for k in ("speculative", "grouped")
        ),
    )
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Run the instrumented pipeline + executors; dump spans and metrics.

    Generates the chain, analyzes every block (TDG + metrics under
    ``pipeline.*`` / ``tdg.*`` spans), then replays each block through
    the speculative, OCC and grouped executors so the trace carries the
    ``exec.*`` spans and abort/retry counters.  Output is a JSON-lines
    file of spans ending in a metrics snapshot, plus a human-readable
    summary on stdout.
    """
    from repro import obs
    from repro.core.pipeline import (
        analyze_account_blocks,
        analyze_utxo_ledger,
    )
    from repro.execution.engine import (
        tasks_from_account_block,
        tasks_from_utxo_block,
    )
    from repro.execution.grouped import GroupedExecutor
    from repro.execution.occ import OCCExecutor
    from repro.execution.speculative import SpeculativeExecutor
    from repro.obs.exporters import (
        render_prometheus,
        render_summary,
        write_trace_jsonl,
    )
    from repro.workload.account_workload import build_account_chain
    from repro.workload.utxo_workload import build_utxo_chain

    profile = _resolve_profile(args.chain)
    if args.cores < 1:
        raise CLIError("--cores must be at least 1")
    parallel = _parallel_kwargs(args)

    def run_executors(tasks, height: int) -> None:
        with obs.trace_span("exec.block", height=height):
            SpeculativeExecutor(args.cores).run(tasks)
            OCCExecutor(args.cores).run(tasks)
            GroupedExecutor(args.cores).run(tasks)

    with obs.instrumented() as state:
        with obs.trace_span("profile.run", chain=args.chain,
                            blocks=args.blocks):
            # Analysis pass first (backend-aware, possibly fanned out
            # over workers), then the executor replay, which models
            # simulated cores in-process and therefore stays serial.
            if profile.data_model == "utxo":
                ledger = build_utxo_chain(
                    profile, num_blocks=args.blocks, seed=args.seed,
                    scale=args.scale,
                )
                analyze_utxo_ledger(
                    ledger, name=profile.name,
                    start_year=profile.start_year, **parallel,
                )
                block_tasks = [
                    (block.height,
                     tasks_from_utxo_block(block.transactions))
                    for block in ledger
                ]
            else:
                builder = build_account_chain(
                    profile, num_blocks=args.blocks, seed=args.seed,
                    scale=args.scale,
                )
                analyze_account_blocks(
                    builder.executed_blocks, name=profile.name,
                    start_year=profile.start_year, **parallel,
                )
                block_tasks = [
                    (block.height, tasks_from_account_block(executed))
                    for block, executed in builder.executed_blocks
                ]
            for height, tasks in block_tasks:
                run_executors(tasks, height)

    try:
        num_spans = write_trace_jsonl(
            args.trace_out, state.tracer, state.registry
        )
    except OSError as exc:
        raise CLIError(f"cannot write trace file: {exc}") from None
    print(f"wrote {num_spans} spans + metrics snapshot to "
          f"{args.trace_out}")
    if args.prometheus_out:
        from pathlib import Path

        try:
            Path(args.prometheus_out).write_text(
                render_prometheus(state.registry) + "\n"
            )
        except OSError as exc:
            raise CLIError(
                f"cannot write Prometheus file: {exc}"
            ) from None
        print(f"wrote Prometheus metrics to {args.prometheus_out}")
    print()
    print(render_summary(state.tracer, state.registry))
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    """Replay a chain through one executor; emit a Chrome trace.

    Every block runs under the flight recorder; the captured events are
    exported as Chrome trace-event JSON (``--out`` or stdout) and a
    per-block measured-vs-analytical table (Eq. 1 / Eq. 2) is printed —
    to stderr when the JSON goes to stdout, so the trace stays parseable.
    """
    from repro import obs
    from repro.obs.critical_path import (
        compare_to_bounds,
        profile_events,
        record_timeline_metrics,
        task_conflict_profile,
    )
    from repro.obs.exporters import write_chrome_trace
    from repro.obs.regress import (
        chain_prediction_blocks,
        chain_task_blocks,
        make_executor,
        run_block_dag,
    )

    profile = _resolve_profile(args.chain)
    if args.jobs < 1:
        raise CLIError("--jobs must be at least 1")
    if args.blocks < 1:
        raise CLIError("--blocks must be at least 1")
    try:
        executor = (
            None if args.executor == "dag"
            else make_executor(args.executor, args.jobs)
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    if args.executor == "static-grouped" and executor is not None:
        predictions: dict[str, object] = {}
        for _height, block_predictions in chain_prediction_blocks(
            profile, blocks=args.blocks, seed=args.seed, scale=args.scale
        ):
            for prediction in block_predictions:
                predictions[prediction.tx_hash] = prediction
        executor.predictions = predictions

    info = sys.stderr if not args.out else sys.stdout
    rows = []
    with obs.instrumented() as state:
        recorder = state.recorder
        for height, tasks, payload in chain_task_blocks(
            profile, blocks=args.blocks, seed=args.seed, scale=args.scale
        ):
            if not tasks:
                continue
            conflict = task_conflict_profile(tasks)
            with recorder.block(height):
                if executor is None:
                    report = run_block_dag(profile, payload, args.jobs)
                else:
                    report = executor.run(tasks)
            block_profile = profile_events(
                recorder.events(executor=report.executor, block=height)
            )
            comparison = compare_to_bounds(report, conflict)
            record_timeline_metrics(block_profile, comparison)
            flag = "" if comparison.within_eq2 else (
                " !" if not comparison.strict else " VIOLATION"
            )
            rows.append((
                str(height), str(conflict.x),
                f"{comparison.measured:.3f}", f"{comparison.eq1:.3f}",
                f"{comparison.eq2:.3f}{flag}",
                f"{block_profile.critical_chain_cost:.1f}",
                f"{block_profile.mean_utilization:.2f}",
            ))
        events = recorder.events()
        if args.out:
            try:
                count = write_chrome_trace(args.out, events)
            except OSError as exc:
                raise CLIError(f"cannot write trace file: {exc}") from None
            print(f"wrote {count} trace events to {args.out}", file=info)
        else:
            import json

            from repro.obs.exporters import chrome_trace_events

            print(json.dumps(
                {"traceEvents": chrome_trace_events(events),
                 "displayTimeUnit": "ms"},
            ))
    if not rows:
        print(
            "(no executable transactions in the replayed blocks — "
            "empty timeline; try more --blocks or a larger --scale)",
            file=info,
        )
        return 0
    print(render_table(
        ["block", "txs", "measured R", "Eq.1 R", "Eq.2 bound",
         "crit path", "util"],
        rows,
        title=(
            f"{args.chain} / {args.executor} on {args.jobs} lanes "
            "(! = bound legitimately exceeded; see docs/observability.md)"
        ),
    ), file=info)
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Fan a chain's executor replay over workers; print per-engine digests.

    Every block replays through every requested engine on the chosen
    backend (``--backend serial|thread|process``).  The printed table
    carries each engine's measured speed-up and determinism digests;
    the command exits 1 when any two engines disagree on the committed
    state root — the same cross-executor differential check
    ``tests/execution/test_differential.py`` runs in CI.
    """
    from repro import obs
    from repro.execution.parallel_replay import (
        ENGINES,
        replay_profile,
        validate_engines,
    )
    from repro.obs.exporters import write_chrome_trace

    profile = _resolve_profile(args.chain)
    if args.cores < 1:
        raise CLIError("--cores must be at least 1")
    if args.blocks < 1:
        raise CLIError("--blocks must be at least 1")
    if args.engines:
        requested = tuple(
            part.strip() for part in args.engines.split(",") if part.strip()
        )
    else:
        requested = ENGINES
    try:
        engines = validate_engines(requested)
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    parallel = _parallel_kwargs(args)

    with obs.instrumented() as state:
        result = replay_profile(
            profile, blocks=args.blocks, seed=args.seed, scale=args.scale,
            engines=engines, cores=args.cores, **parallel,
        )
    summaries = result.summaries()
    print(render_table(
        ["engine", "blocks", "txs", "wall", "R", "commits", "aborts",
         "retries", "state root"],
        [
            (
                s.engine,
                str(s.blocks),
                str(s.tasks),
                f"{s.wall_time:9.1f}",
                f"{s.speedup:6.3f}",
                str(s.committed),
                str(s.aborted),
                str(s.retried),
                s.state_root[:16],
            )
            for s in summaries
        ],
        title=(
            f"{args.chain}: executor replay on {args.cores} cores "
            f"({parallel['backend']} backend, {args.blocks} blocks)"
        ),
    ))
    roots = {s.state_root for s in summaries}
    receipt_roots = {s.receipt_root for s in summaries}
    if len(roots) == 1 and len(receipt_roots) == 1:
        print(
            f"state roots agree across {len(summaries)} engine(s): "
            f"{next(iter(roots))[:16]}"
        )
        status = 0
    else:
        print(
            "DIVERGENCE: engines disagree on the committed state",
            file=sys.stderr,
        )
        for s in summaries:
            print(f"  {s.engine}: {s.state_root}", file=sys.stderr)
        status = 1
    if args.out:
        try:
            count = write_chrome_trace(args.out, state.recorder.events())
        except OSError as exc:
            raise CLIError(f"cannot write trace file: {exc}") from None
        print(f"wrote {count} trace events to {args.out}")
    return status


def cmd_lifecycle(args: argparse.Namespace) -> int:
    """Run the full pipeline; print the per-stage latency breakdown.

    Every transaction flows mempool → gossip → (sharding) → packing →
    consensus → execution under lifecycle tracing; the report shows
    where end-to-end latency goes per stage (count/p50/p95/p99 and the
    share of total traced time), the slowest traces stage by stage, and
    the executor's per-lane Gantt chart.  ``--out`` additionally writes
    the stitched traces and execution timeline as one Chrome trace file.
    """
    from repro import obs
    from repro.analysis.report import render_gantt, render_stage_shares
    from repro.obs.exporters import write_chrome_trace
    from repro.obs.lifecycle import (
        slowest_traces,
        stage_shares,
    )
    from repro.obs.lifecycle_run import run_lifecycle

    profile = _resolve_profile(args.chain)
    if args.top < 1:
        raise CLIError("--top must be at least 1")
    rate, registry, life = _sampling_components(args)
    try:
        with obs.instrumented(registry=registry, lifecycle=life) as state:
            result = run_lifecycle(
                profile,
                blocks=args.blocks,
                seed=args.seed,
                cores=args.cores,
                executor=args.executor,
                scale=args.scale,
                nodes=args.nodes,
                mempool_weight=args.mempool_weight,
            )
    except ValueError as exc:
        raise CLIError(str(exc)) from None

    print(
        f"{args.chain} / {args.executor}: {result.admitted} admitted, "
        f"{result.committed} committed, {result.dropped} dropped "
        f"over {result.blocks} block(s)"
    )
    if not rate.is_full:
        print(
            f"(head-based sampling at {rate}: latency detail covers "
            f"{len(result.traces)} sampled trace(s); stage counters "
            "remain exact)"
        )
    breakdown = result.breakdown()
    if not breakdown:
        if not rate.is_full:
            print(
                f"(no traces sampled at rate {rate} — try a coarser "
                "rate or more blocks; counters are still exact)"
            )
        else:
            print("(no traces recorded)")
        return 0
    shares = stage_shares(breakdown)
    print()
    print(render_table(
        ["stage", "count", "p50 s", "p95 s", "p99 s", "max s", "share"],
        [
            (
                stage,
                str(stats.count),
                f"{stats.p50:.3f}",
                f"{stats.p95:.3f}",
                f"{stats.p99:.3f}",
                f"{stats.max:.3f}",
                f"{100.0 * shares[stage]:.1f}%",
            )
            for stage, stats in breakdown.items()
        ],
        title="per-stage latency (simulated seconds since previous stage)",
    ))
    print()
    print(render_stage_shares(
        [(stage, shares[stage]) for stage in breakdown],
        title="share of total traced latency",
    ))
    print()
    slowest = slowest_traces(result.traces, limit=args.top)
    if slowest:
        print(f"slowest {args.top} trace(s):")
        for trace in slowest:
            print(
                f"  {trace.trace_id}  total {trace.total_latency:.3f}s "
                f"({trace.outcome})"
            )
            for stage, latency in trace.stage_latencies():
                print(f"    {stage:<12} +{latency:.3f}s")
    else:
        print(
            "(no closed traces to drill into — every traced "
            "transaction is still in flight)"
        )
    events = state.recorder.events()
    gantt = render_gantt(
        events, title=f"executor lanes ({args.executor})"
    )
    print()
    print(gantt)
    if args.out:
        try:
            count = write_chrome_trace(
                args.out, events, lifecycle_traces=result.traces
            )
        except OSError as exc:
            raise CLIError(f"cannot write trace file: {exc}") from None
        print()
        print(f"wrote {count} trace events to {args.out}")
    parallel = _parallel_kwargs(args)
    if parallel["backend"] != "serial":
        # A fanned-out verification replay of the same seeded blocks:
        # the chosen executor must reach the exact per-block commit
        # state the serial replay does, whichever backend carried it.
        from repro.execution.parallel_replay import replay_profile

        serial = replay_profile(
            profile, blocks=args.blocks, seed=args.seed, scale=args.scale,
            engines=(args.executor,), cores=args.cores, backend="serial",
        )
        fanned = replay_profile(
            profile, blocks=args.blocks, seed=args.seed, scale=args.scale,
            engines=(args.executor,), cores=args.cores, **parallel,
        )
        print()
        if serial.records == fanned.records:
            root = serial.summary(args.executor).state_root
            print(
                f"parallel replay verification ({parallel['backend']} "
                f"backend, jobs={parallel['jobs']}): state root "
                f"{root[:16]} matches the serial replay"
            )
        else:
            print(
                f"parallel replay verification ({parallel['backend']} "
                "backend): DIVERGENCE from the serial replay",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    """Stream the pipeline through the sliding-window SLO monitor.

    Runs the same seeded pipeline as ``lifecycle`` but watches it live:
    after each block the monitor folds a :class:`BlockSample` into its
    ring buffer and (unless ``--once``) re-renders the windowed
    dashboard — abort rate, sampled stage percentiles, lane
    utilization, mempool depth, and block wall-clock percentiles.
    ``--once`` prints only the final window (the CI snapshot mode);
    ``--snapshot-out`` writes the aggregate + rule verdicts as JSON.

    Exit status: 0 when no *hard* rule breached, 1 on a hard breach
    (only ``--max-abort-rate`` installs one; the wall-clock gate from
    ``--wall-p95`` is always advisory), 2 on bad arguments.

    With ``--follow`` the monitor attaches to a *live node network*
    (:mod:`repro.node`) instead of the one-shot pipeline: an N-node
    network runs to the target height and the followed node's per-block
    samples stream through the same sliding window.  A network that
    diverges also exits 1.
    """
    from repro import obs
    from repro.obs.monitor import (
        StreamingMonitor,
        default_rules,
        monitor_snapshot,
        render_monitor,
    )

    profile = _resolve_profile(args.chain)
    rate, registry, life = _sampling_components(args)
    if args.window < 1:
        raise CLIError("--window must be at least 1")
    if args.max_abort_rate is not None and args.max_abort_rate < 0:
        raise CLIError("--max-abort-rate must be non-negative")
    if args.wall_p95 is not None and args.wall_p95 <= 0:
        raise CLIError("--wall-p95 must be positive")
    rules = default_rules(
        max_abort_rate=args.max_abort_rate,
        wall_p95_budget=args.wall_p95,
    )
    monitor = StreamingMonitor(
        window=args.window, rules=rules, registry=registry
    )
    live = not args.once

    def on_block(sample) -> None:
        aggregate = monitor.observe_block(sample)
        if live:
            print(render_monitor(
                aggregate,
                monitor.evaluate(aggregate),
                title=f"{args.chain} block {sample.height}",
            ))
            print()

    network_failed = ""
    if args.follow:
        from repro.node import NetworkConfig, NodeNetwork

        follow_id = args.follow_node

        def on_net_block(node_id: str, sample) -> None:
            if node_id == follow_id:
                on_block(sample)

        try:
            config = NetworkConfig(
                nodes=args.net_nodes,
                chain=args.chain,
                engine=args.executor,
                cores=args.cores,
                transport=args.transport,
                height=args.height,
                seed=args.seed,
                scale=args.scale,
                max_sim_time=args.max_sim_time,
            )
        except ValueError as exc:
            raise CLIError(str(exc)) from None
        if not any(
            f"n{i}" == follow_id for i in range(config.nodes)
        ):
            raise CLIError(
                f"--follow-node {follow_id!r} is not in the network "
                f"(nodes are n0..n{config.nodes - 1})"
            )
        network = NodeNetwork(config, on_block=on_net_block)
        try:
            with obs.instrumented(registry=registry, lifecycle=life):
                result = network.run()
        except ValueError as exc:
            raise CLIError(str(exc)) from None
        print(
            f"network {result.reason} at height {result.height} "
            f"(sim {result.sim_seconds:.2f}s, "
            f"{result.committed} committed)"
        )
        if not result.converged:
            network_failed = result.reason
    else:
        from repro.obs.lifecycle_run import run_lifecycle

        try:
            with obs.instrumented(registry=registry, lifecycle=life):
                run_lifecycle(
                    profile,
                    blocks=args.blocks,
                    seed=args.seed,
                    cores=args.cores,
                    executor=args.executor,
                    scale=args.scale,
                    nodes=args.nodes,
                    mempool_weight=args.mempool_weight,
                    on_block=on_block,
                )
        except ValueError as exc:
            raise CLIError(str(exc)) from None

    aggregate = monitor.aggregate()
    results = monitor.evaluate(aggregate)
    if monitor.blocks_seen == 0:
        print(
            "(no blocks produced transactions — nothing to monitor; "
            "try more --blocks or a larger --scale)"
        )
        if network_failed:
            print(
                f"error: followed network did not converge "
                f"({network_failed})",
                file=sys.stderr,
            )
            return 1
        return 0
    if not live:
        print(render_monitor(
            aggregate, results,
            title=f"{args.chain} / {args.executor} (rate {rate}, "
                  f"{args.policy} policy)",
        ))
    if args.snapshot_out:
        import json

        try:
            with open(args.snapshot_out, "w", encoding="utf-8") as fh:
                json.dump(
                    monitor_snapshot(aggregate, results), fh, indent=2
                )
                fh.write("\n")
        except OSError as exc:
            raise CLIError(
                f"cannot write monitor snapshot: {exc}"
            ) from None
        print(f"wrote monitor snapshot to {args.snapshot_out}")
    breaches = monitor.hard_breaches(results)
    if breaches:
        for breach in breaches:
            print(
                f"SLO BREACH: {breach.rule.name}: "
                f"{breach.rule.metric}={breach.value:.4g} violates "
                f"{breach.rule.op} {breach.rule.threshold:g}",
                file=sys.stderr,
            )
        return 1
    if network_failed:
        print(
            f"error: followed network did not converge "
            f"({network_failed})",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_node(args: argparse.Namespace) -> int:
    """Run an N-node in-process network to a target height.

    ``repro node run`` boots N full nodes (mempool ingress, push-relay
    gossip, PoW/PBFT proposal, executor-replay validation with fork
    choice) over the chosen transport, injects the seeded chain
    workload through random ingress nodes, and runs until every node
    converges — same head, height at least ``--height``, identical
    mempools — or the simulation budget runs out.

    Exit status: 0 when the network converged with byte-identical
    per-node chain state roots; 1 on divergence, timeout, or a root
    mismatch; 2 on bad arguments.
    """
    from repro import obs
    from repro.node import (
        FaultProfile,
        NetworkConfig,
        NodeNetwork,
        network_fingerprint,
    )

    _resolve_profile(args.chain)
    rate, registry, life = _sampling_components(args)
    try:
        faults = FaultProfile(
            latency=args.latency,
            loss=args.loss,
            duplicate=args.duplicate,
            reorder=args.reorder,
        )
        config = NetworkConfig(
            nodes=args.nodes,
            chain=args.chain,
            engine=args.executor,
            cores=args.cores,
            consensus=args.consensus,
            transport=args.transport,
            height=args.height,
            seed=args.seed,
            scale=args.scale,
            workload_blocks=args.workload_blocks,
            block_interval=args.block_interval,
            block_weight=args.block_weight,
            faults=faults,
            max_sim_time=args.max_sim_time,
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from None

    quiet = args.quiet

    def on_block(node_id: str, sample) -> None:
        if not quiet:
            print(
                f"[{node_id}] block {sample.height}: "
                f"{sample.txs} txs, {sample.committed} committed, "
                f"{sample.aborted} aborted, "
                f"pool depth {sample.mempool_depth}"
            )

    network = NodeNetwork(config, on_block=on_block)
    try:
        with obs.instrumented(registry=registry, lifecycle=life):
            result = network.run()
    except ValueError as exc:
        raise CLIError(str(exc)) from None

    print()
    print(
        f"{config.nodes}-node {config.chain} network over "
        f"{config.transport} transport ({config.consensus}, "
        f"{args.executor} executor, rate {rate}): {result.reason} "
        f"at height {result.height}"
    )
    print(
        f"  sim {result.sim_seconds:.2f}s  wall "
        f"{result.wall_seconds:.2f}s  injected {result.injected}  "
        f"committed {result.committed}  samples {result.samples}"
    )
    for snap in result.snapshots:
        print(
            f"  {snap.node_id}: height {snap.height} "
            f"head {snap.head_hash[:12]} root {snap.chain_root[:12]} "
            f"proposed {snap.proposed} applied {snap.applied} "
            f"reorgs {snap.reorgs} pool {len(snap.pool_hashes)}"
        )
    print(f"  fingerprint {network_fingerprint(result)[:16]}")

    if args.snapshot_out:
        import json

        try:
            with open(args.snapshot_out, "w", encoding="utf-8") as fh:
                json.dump(result.snapshot_dict(), fh, indent=2)
                fh.write("\n")
        except OSError as exc:
            raise CLIError(
                f"cannot write network snapshot: {exc}"
            ) from None
        print(f"wrote network snapshot to {args.snapshot_out}")

    if not result.converged:
        print(
            f"error: network did not converge ({result.reason})",
            file=sys.stderr,
        )
        return 1
    if not result.roots_agree:
        print(
            "error: per-node chain state roots disagree",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_regress(args: argparse.Namespace) -> int:
    """Compare a fresh deterministic snapshot against the baseline.

    Exit 0 when every key is within tolerance, 1 on any regression,
    2 on usage errors (missing baseline, unknown chain, bad schema).
    With ``--update`` the baseline file is (re)written instead.
    """
    from repro.obs.regress import (
        DEFAULT_EXECUTORS,
        build_snapshot,
        compare_snapshots,
        load_snapshot,
        tolerances_from_spec,
        write_snapshot,
    )

    if args.update:
        try:
            snapshot = build_snapshot(
                chain=args.chain, blocks=args.blocks, cores=args.cores,
                seed=args.seed,
            )
        except ValueError as exc:
            raise CLIError(str(exc)) from None
        write_snapshot(args.baseline, snapshot)
        print(f"wrote baseline snapshot to {args.baseline}")
        return 0

    try:
        baseline = load_snapshot(args.baseline)
    except FileNotFoundError:
        raise CLIError(
            f"baseline {args.baseline!r} not found; create it with "
            "--update"
        ) from None
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    try:
        tolerances = tolerances_from_spec(baseline.pop("tolerances", {}))
    except ValueError as exc:
        raise CLIError(str(exc)) from None

    workload = baseline.get("workload", {})
    try:
        fresh = build_snapshot(
            chain=workload.get("chain", args.chain),
            blocks=int(workload.get("blocks", args.blocks)),
            cores=int(workload.get("cores", args.cores)),
            seed=int(workload.get("seed", args.seed)),
            executors=tuple(
                workload.get("executors") or DEFAULT_EXECUTORS
            ),
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    if args.snapshot_out:
        write_snapshot(args.snapshot_out, fresh)
        print(f"wrote fresh snapshot to {args.snapshot_out}")
    report = compare_snapshots(baseline, fresh, tolerances=tolerances)
    print(report.render())
    return 0 if report.ok else 1


def cmd_staticcheck(args: argparse.Namespace) -> int:
    """Lint a workload's contract registry with the static analyzer.

    Deploys the profile's contract population (no chain is mined) and
    runs the abstract interpreter over every registered program.  Exit
    status 1 when any contract has errors (or, with ``--strict``, any
    finding at all), 0 when the registry is clean.
    """
    import dataclasses

    from repro.staticcheck import lint_registry, render_lint_report
    from repro.workload.account_workload import AccountWorkloadBuilder

    profile = _resolve_profile(args.chain)
    if profile.data_model != "account":
        raise CLIError(
            f"chain {args.chain!r} is a {profile.data_model} chain with "
            "no contract code; pick an account chain"
        )
    if args.dynamic < 0:
        raise CLIError("--dynamic must be non-negative")
    if args.dynamic:
        if args.dynamic > profile.num_contracts:
            raise CLIError(
                f"--dynamic {args.dynamic} exceeds the profile's "
                f"{profile.num_contracts} contracts"
            )
        profile = dataclasses.replace(
            profile, num_dynamic_contracts=args.dynamic
        )
    builder = AccountWorkloadBuilder(profile=profile, seed=args.seed)
    if args.with_defects:
        from repro.vm.opcodes import Instruction, Op

        # Hand-built defective programs (the assembler rejects these
        # now, so they are registered as raw instruction tuples): dead
        # code behind an unconditional jump, a guaranteed stack
        # underflow, and an out-of-range jump target.
        builder.registry.register(
            "defect_unreachable",
            (
                Instruction(op=Op.JUMP, operand=2),
                Instruction(op=Op.SSTORE, operand="dead"),
                Instruction(op=Op.STOP, operand=None),
            ),
        )
        builder.registry.register(
            "defect_underflow", (Instruction(op=Op.POP, operand=None),)
        )
        builder.registry.register(
            "defect_jump_range", (Instruction(op=Op.JUMP, operand=99),)
        )
    try:
        report = lint_registry(builder.registry, lattice=args.lattice)
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    print(render_lint_report(report))
    if args.incremental:
        from repro.staticcheck import IncrementalAnalyzer, code_bindings

        analyzer = IncrementalAnalyzer(
            builder.registry,
            code_bindings(builder.state),
            lattice=args.lattice,
        )
        analyzer.analyze_all()
        # Grow the registry by one unconnected probe contract and
        # re-analyze: every pre-existing closure digest still matches,
        # so the second pass should be nearly all cache hits.
        builder.registry.register_assembly(
            "incremental_probe", "push 1\nsstore probe\nstop"
        )
        analyzer.bind("contract_incremental_probe", "incremental_probe")
        analyzer.analyze_all()
        stats = analyzer.stats
        print(
            "incremental: "
            + " ".join(
                f"{key}={value}" for key, value in stats.as_dict().items()
            )
        )
    return report.exit_code(strict=args.strict)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'On Exploiting Transaction Concurrency To "
            "Speed Up Blockchains' (ICDCS 2020)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub = subparsers.add_parser("table1", help="print paper Table I")
    sub.set_defaults(func=cmd_table1)

    sub = subparsers.add_parser(
        "analyze", help="simulate a chain and print its conflict series"
    )
    _add_generation_args(sub)
    _add_parallel_args(sub)
    sub.set_defaults(func=cmd_analyze)

    sub = subparsers.add_parser(
        "speedup", help="print Fig. 10-style speed-up series"
    )
    _add_generation_args(sub)
    _add_parallel_args(sub)
    sub.add_argument("--cores", default="4,8,64",
                     help="comma-separated core counts")
    sub.add_argument(
        "--measured", action="store_true",
        help="also replay every engine at each core count and print "
             "measured speed-ups beside the Eq. 1 / Eq. 2 bounds",
    )
    sub.set_defaults(func=cmd_speedup)

    sub = subparsers.add_parser(
        "compare", help="compare two chains (Figs. 8-9 style)"
    )
    sub.add_argument("--left", required=True)
    sub.add_argument("--right", required=True)
    sub.add_argument("--blocks", type=int, default=80)
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument("--scale", type=float, default=0.5)
    _add_parallel_args(sub)
    sub.add_argument("--cores", type=int, default=4,
                     help="simulated cores for --measured replays")
    sub.add_argument(
        "--measured", action="store_true",
        help="add measured speculative/grouped speed-up columns from a "
             "replay of each chain",
    )
    sub.set_defaults(func=cmd_compare)

    sub = subparsers.add_parser(
        "examples", help="print the paper's worked examples"
    )
    sub.set_defaults(func=cmd_examples)

    sub = subparsers.add_parser(
        "export", help="export a simulated chain to CSV tables"
    )
    _add_generation_args(sub)
    sub.add_argument("--out", required=True, help="output directory")
    sub.set_defaults(func=cmd_export)

    sub = subparsers.add_parser(
        "profile",
        help="instrumented run: dump tracing spans and metrics",
    )
    _add_generation_args(sub, default_blocks=50)
    _add_parallel_args(sub)
    sub.add_argument("--cores", type=int, default=8,
                     help="simulated core count for the executors")
    sub.add_argument("--trace-out", required=True,
                     help="output path for the span/metric JSON lines")
    sub.add_argument("--prometheus-out", default="",
                     help="also write a Prometheus text-format snapshot")
    sub.set_defaults(func=cmd_profile)

    sub = subparsers.add_parser(
        "timeline",
        help="replay one executor with the flight recorder; emit a "
             "Chrome trace and measured-vs-analytical bounds",
    )
    known = ", ".join(sorted(PROFILES_BY_NAME))
    sub.add_argument(
        "--chain", required=True, metavar="NAME",
        help=f"which blockchain profile to replay (one of: {known})",
    )
    from repro.obs.regress import EXECUTOR_CHOICES

    sub.add_argument(
        "--executor", default="speculative", choices=EXECUTOR_CHOICES,
        help="execution engine to record (default: speculative)",
    )
    sub.add_argument(
        "--jobs", type=int, default=4, metavar="N",
        help="simulated worker lanes / cores (default: 4)",
    )
    sub.add_argument("--blocks", type=int, default=20,
                     help="number of blocks to replay")
    sub.add_argument("--seed", type=int, default=0,
                     help="determinism seed")
    sub.add_argument("--scale", type=float, default=1.0,
                     help="transaction-volume multiplier")
    sub.add_argument(
        "--out", default="",
        help="write the Chrome trace JSON here (default: stdout)",
    )
    sub.set_defaults(func=cmd_timeline)

    sub = subparsers.add_parser(
        "replay",
        help="fan the per-block executor replay over workers; print "
             "per-engine speed-ups and state-root digests (exit 1 on "
             "cross-engine divergence)",
    )
    known = ", ".join(sorted(PROFILES_BY_NAME))
    sub.add_argument(
        "--chain", required=True, metavar="NAME",
        help=f"which blockchain profile to replay (one of: {known})",
    )
    from repro.execution.parallel_replay import ENGINES as _ENGINE_NAMES

    sub.add_argument(
        "--engines", default="", metavar="A,B,...",
        help="comma-separated engine subset (default: all of "
             f"{', '.join(_ENGINE_NAMES)})",
    )
    sub.add_argument("--blocks", type=int, default=20,
                     help="number of blocks to replay")
    sub.add_argument("--seed", type=int, default=0,
                     help="determinism seed")
    sub.add_argument("--scale", type=float, default=1.0,
                     help="transaction-volume multiplier")
    sub.add_argument("--cores", type=int, default=4,
                     help="simulated cores handed to each engine")
    _add_parallel_args(sub)
    sub.add_argument(
        "--out", default="",
        help="write the merged replay events as a Chrome trace here",
    )
    sub.set_defaults(func=cmd_replay)

    sub = subparsers.add_parser(
        "lifecycle",
        help="trace every transaction mempool→gossip→consensus→commit; "
             "print the per-stage latency breakdown",
    )
    known = ", ".join(sorted(PROFILES_BY_NAME))
    sub.add_argument(
        "--chain", required=True, metavar="NAME",
        help=f"which blockchain profile to run (one of: {known})",
    )
    from repro.obs.regress import EXECUTOR_CHOICES as _EXEC_CHOICES

    sub.add_argument(
        "--executor", default="dag", choices=_EXEC_CHOICES,
        help="execution engine for the commit stage (default: dag)",
    )
    sub.add_argument("--blocks", type=int, default=5,
                     help="number of blocks to run")
    sub.add_argument("--seed", type=int, default=0,
                     help="determinism seed")
    sub.add_argument("--scale", type=float, default=1.0,
                     help="transaction-volume multiplier")
    sub.add_argument("--cores", type=int, default=4,
                     help="simulated cores for the executor")
    sub.add_argument("--nodes", type=int, default=24,
                     help="gossip topology size")
    sub.add_argument(
        "--mempool-weight", type=int, default=None, metavar="W",
        help="mempool capacity; small values force evictions "
             "(default: unbounded)",
    )
    sub.add_argument("--top", type=int, default=3, metavar="N",
                     help="slowest traces to drill into (default: 3)")
    sub.add_argument(
        "--out", default="",
        help="write a Chrome trace (execution + lifecycle flows) here",
    )
    _add_sampling_args(sub)
    _add_parallel_args(sub)
    sub.set_defaults(func=cmd_lifecycle)

    sub = subparsers.add_parser(
        "monitor",
        help="stream the pipeline through a sliding-window SLO "
             "monitor (abort rate, stage percentiles, lane "
             "utilization, mempool depth)",
    )
    sub.add_argument(
        "--chain", required=True, metavar="NAME",
        help=f"which blockchain profile to run (one of: {known})",
    )
    sub.add_argument(
        "--executor", default="dag", choices=_EXEC_CHOICES,
        help="execution engine for the commit stage (default: dag)",
    )
    sub.add_argument("--blocks", type=int, default=8,
                     help="number of blocks to run")
    sub.add_argument("--seed", type=int, default=0,
                     help="determinism seed")
    sub.add_argument("--scale", type=float, default=1.0,
                     help="transaction-volume multiplier")
    sub.add_argument("--cores", type=int, default=4,
                     help="simulated cores for the executor")
    sub.add_argument("--nodes", type=int, default=24,
                     help="gossip topology size")
    sub.add_argument(
        "--mempool-weight", type=int, default=None, metavar="W",
        help="mempool capacity; small values force evictions "
             "(default: unbounded)",
    )
    sub.add_argument(
        "--window", type=int, default=8, metavar="BLOCKS",
        help="sliding-window size in blocks (default: 8)",
    )
    sub.add_argument(
        "--once", action="store_true",
        help="print only the final window instead of re-rendering "
             "after every block (CI snapshot mode)",
    )
    sub.add_argument(
        "--max-abort-rate", type=float, default=None, metavar="FRAC",
        help="hard SLO: fail (exit 1) when the windowed abort rate "
             "exceeds this fraction",
    )
    sub.add_argument(
        "--wall-p95", type=float, default=None, metavar="SECONDS",
        help="advisory SLO: report (never fail) when the windowed "
             "block wall-clock p95 exceeds this many real seconds",
    )
    sub.add_argument(
        "--snapshot-out", default="", metavar="PATH",
        help="write the final window aggregate + rule verdicts as "
             "JSON (CI artifact)",
    )
    sub.add_argument(
        "--follow", action="store_true",
        help="attach to a live node network (repro.node) instead of "
             "the one-shot pipeline; per-block samples from the "
             "followed node stream through the window",
    )
    sub.add_argument(
        "--follow-node", default="n0", metavar="ID",
        help="which node's block stream to follow (default: n0)",
    )
    sub.add_argument(
        "--transport", default="virtual", choices=("virtual", "tcp"),
        help="network transport with --follow (default: virtual)",
    )
    sub.add_argument(
        "--net-nodes", type=int, default=4, metavar="N",
        help="network size with --follow (default: 4)",
    )
    sub.add_argument(
        "--height", type=int, default=6,
        help="target chain height with --follow (default: 6)",
    )
    sub.add_argument(
        "--max-sim-time", type=float, default=600.0, metavar="SECONDS",
        help="simulated-time budget with --follow before giving up "
             "(default: 600)",
    )
    _add_sampling_args(sub)
    sub.set_defaults(func=cmd_monitor)

    sub = subparsers.add_parser(
        "node",
        help="run a long-running N-node network (mempool ingress, "
             "gossip, consensus, executor-replay validation) to a "
             "target height",
    )
    sub.add_argument(
        "action", choices=("run",),
        help="node subcommand (currently only 'run')",
    )
    sub.add_argument(
        "--chain", required=True, metavar="NAME",
        help=f"which blockchain profile to run (one of: {known})",
    )
    sub.add_argument(
        "--executor", default="occ", choices=_EXEC_CHOICES,
        help="execution engine for proposal and validation replay "
             "(default: occ)",
    )
    sub.add_argument(
        "--transport", default="virtual", choices=("virtual", "tcp"),
        help="virtual = deterministic simulated clock + seeded "
             "faults; tcp = real asyncio loopback sockets "
             "(default: virtual)",
    )
    sub.add_argument(
        "--consensus", default="pow", choices=("pow", "pbft"),
        help="block proposal schedule (default: pow)",
    )
    sub.add_argument("--nodes", type=int, default=4,
                     help="network size (default: 4)")
    sub.add_argument("--height", type=int, default=5,
                     help="target chain height (default: 5)")
    sub.add_argument("--seed", type=int, default=2020,
                     help="determinism seed")
    sub.add_argument("--scale", type=float, default=1.0,
                     help="transaction-volume multiplier")
    sub.add_argument("--cores", type=int, default=2,
                     help="simulated executor cores per node")
    sub.add_argument(
        "--workload-blocks", type=int, default=6, metavar="N",
        help="seeded workload size in source blocks (default: 6)",
    )
    sub.add_argument(
        "--block-interval", type=float, default=2.0, metavar="SECONDS",
        help="target seconds between blocks (default: 2.0)",
    )
    sub.add_argument(
        "--block-weight", type=int, default=400, metavar="W",
        help="block weight budget for packing (default: 400)",
    )
    sub.add_argument(
        "--latency", type=float, default=0.01, metavar="SECONDS",
        help="virtual-transport base link latency (default: 0.01)",
    )
    sub.add_argument(
        "--loss", type=float, default=0.0, metavar="FRAC",
        help="virtual-transport frame loss probability (default: 0)",
    )
    sub.add_argument(
        "--duplicate", type=float, default=0.0, metavar="FRAC",
        help="virtual-transport duplication probability (default: 0)",
    )
    sub.add_argument(
        "--reorder", type=float, default=0.0, metavar="FRAC",
        help="virtual-transport reorder probability (default: 0)",
    )
    sub.add_argument(
        "--max-sim-time", type=float, default=600.0, metavar="SECONDS",
        help="simulated-time budget before giving up with exit 1 "
             "(default: 600)",
    )
    sub.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-block stream; print only the summary",
    )
    sub.add_argument(
        "--snapshot-out", default="", metavar="PATH",
        help="write the deterministic network snapshot as JSON "
             "(CI artifact)",
    )
    _add_sampling_args(sub)
    sub.set_defaults(func=cmd_node)

    sub = subparsers.add_parser(
        "regress",
        help="diff a fresh deterministic snapshot against the checked-in "
             "baseline (exit 1 on regression)",
    )
    sub.add_argument(
        "--baseline", default="tests/obs/baseline/regress_baseline.json",
        help="baseline snapshot path",
    )
    sub.add_argument(
        "--update", action="store_true",
        help="(re)write the baseline from the current code instead of "
             "comparing",
    )
    sub.add_argument(
        "--snapshot-out", default="",
        help="also write the fresh snapshot here (CI artifact)",
    )
    sub.add_argument("--chain", default="ethereum",
                     help="workload chain (with --update)")
    sub.add_argument("--blocks", type=int, default=10,
                     help="workload blocks (with --update)")
    sub.add_argument("--cores", type=int, default=4,
                     help="simulated cores (with --update)")
    sub.add_argument("--seed", type=int, default=2020,
                     help="determinism seed (with --update)")
    sub.set_defaults(func=cmd_regress)

    sub = subparsers.add_parser(
        "staticcheck",
        help="lint a workload's contract registry with the static "
             "analyzer (exit 1 on errors)",
    )
    known = ", ".join(sorted(PROFILES_BY_NAME))
    sub.add_argument(
        "--chain", required=True, metavar="NAME",
        help=f"account-chain profile to lint (one of: {known})",
    )
    sub.add_argument("--seed", type=int, default=0,
                     help="determinism seed")
    sub.add_argument(
        "--dynamic", type=int, default=0, metavar="N",
        help="deploy N dynamic-operand contracts (⊤-widening cases)",
    )
    sub.add_argument(
        "--strict", action="store_true",
        help="treat warnings as errors for the exit status",
    )
    sub.add_argument(
        "--with-defects", action="store_true",
        help="seed known-defective programs (for CI smoke tests)",
    )
    sub.add_argument(
        "--lattice", default="valueset", choices=("const", "valueset"),
        help="abstract value domain: two-point const/⊤ or the bounded "
             "value-set lattice (default: valueset)",
    )
    sub.add_argument(
        "--incremental", action="store_true",
        help="after linting, run the incremental analyzer twice (growing "
             "the registry by a probe contract in between) and print the "
             "cache hit/miss statistics",
    )
    sub.set_defaults(func=cmd_staticcheck)

    sub = subparsers.add_parser(
        "report",
        help="regenerate every paper table/figure into a directory",
    )
    sub.add_argument("--out", required=True, help="output directory")
    sub.add_argument("--blocks", type=int, default=120)
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument("--scale", type=float, default=0.5)
    sub.add_argument("--buckets", type=int, default=16)
    _add_parallel_args(sub)
    sub.set_defaults(func=cmd_report)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
