"""repro — reproduction of Reijsbergen & Dinh, "On Exploiting Transaction
Concurrency To Speed Up Blockchains" (ICDCS 2020).

Public API highlights:

* :mod:`repro.core` — TDG construction, conflict metrics, speed-up models.
* :mod:`repro.workload` — calibrated synthetic chains for all 7 blockchains.
* :mod:`repro.execution` — parallel execution engines validating the models.
* :mod:`repro.analysis` — per-figure series builders and report rendering.
"""

from repro.core import (
    BlockMetrics,
    TDGResult,
    account_tdg,
    compute_block_metrics,
    estimate_block_speedups,
    group_speedup_bound,
    speculative_speedup,
    utxo_tdg,
)

__version__ = "1.0.0"

__all__ = [
    "BlockMetrics",
    "TDGResult",
    "account_tdg",
    "compute_block_metrics",
    "estimate_block_speedups",
    "group_speedup_bound",
    "speculative_speedup",
    "utxo_tdg",
    "__version__",
]
