"""Dataset layer: BigQuery-shaped stores, queries, and the Zilliqa client."""

from repro.datasets.export import export_account_blocks, export_utxo_ledger
from repro.datasets.queries import (
    BlockQueryRow,
    process_graph,
    query_account_conflicts,
    query_utxo_conflicts,
)
from repro.datasets.schema import (
    AccountTraceRow,
    AccountTransactionRow,
    BlockRow,
    UTXOInputRow,
    UTXOTransactionRow,
    row_from_dict,
    row_to_dict,
)
from repro.datasets.store import TABLE_SCHEMAS, DatasetStore
from repro.datasets.zilliqa_client import (
    RPCError,
    SimulatedClock,
    SimulatedZilliqaNode,
    ZilliqaCollector,
)

__all__ = [
    "export_account_blocks",
    "export_utxo_ledger",
    "BlockQueryRow",
    "process_graph",
    "query_account_conflicts",
    "query_utxo_conflicts",
    "AccountTraceRow",
    "AccountTransactionRow",
    "BlockRow",
    "UTXOInputRow",
    "UTXOTransactionRow",
    "row_from_dict",
    "row_to_dict",
    "TABLE_SCHEMAS",
    "DatasetStore",
    "RPCError",
    "SimulatedClock",
    "SimulatedZilliqaNode",
    "ZilliqaCollector",
]
