"""An in-memory dataset store with CSV round-tripping.

Plays the role of BigQuery in the reproduction: chains are exported
into schema-typed tables, and the query layer reads them back without
ever touching the original Python objects — the same decoupling the
paper gets from running SQL over the public datasets.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Callable, Iterable, TypeVar

from repro.chain.errors import DatasetError
from repro.datasets.schema import (
    AccountTraceRow,
    AccountTransactionRow,
    BlockRow,
    UTXOInputRow,
    UTXOTransactionRow,
    row_from_dict,
    row_to_dict,
)

RowT = TypeVar("RowT")

TABLE_SCHEMAS: dict[str, type] = {
    "blocks": BlockRow,
    "utxo_inputs": UTXOInputRow,
    "utxo_transactions": UTXOTransactionRow,
    "account_transactions": AccountTransactionRow,
    "account_traces": AccountTraceRow,
}


@dataclass
class DatasetStore:
    """Typed tables for one chain's exported history."""

    chain: str
    tables: dict[str, list] = field(default_factory=dict)

    def insert(self, table: str, rows: Iterable[object]) -> None:
        """Append *rows* to *table*, enforcing the table's schema."""
        schema = TABLE_SCHEMAS.get(table)
        if schema is None:
            raise DatasetError(f"unknown table {table!r}")
        bucket = self.tables.setdefault(table, [])
        for row in rows:
            if not isinstance(row, schema):
                raise DatasetError(
                    f"table {table!r} expects {schema.__name__}, "
                    f"got {type(row).__name__}"
                )
            bucket.append(row)

    def scan(
        self,
        table: str,
        *,
        where: Callable[[object], bool] | None = None,
    ) -> list:
        """Full-table scan with an optional row predicate."""
        rows = self.tables.get(table, [])
        if where is None:
            return list(rows)
        return [row for row in rows if where(row)]

    def group_by_block(self, table: str) -> dict[int, list]:
        """Group a table's rows by ``block_number``, ascending."""
        grouped: dict[int, list] = {}
        for row in self.tables.get(table, []):
            grouped.setdefault(row.block_number, []).append(row)
        return dict(sorted(grouped.items()))

    def count(self, table: str) -> int:
        return len(self.tables.get(table, []))

    # -- CSV round-trip -----------------------------------------------------

    def export_csv(self, directory: str | Path) -> list[Path]:
        """Write every table to ``<directory>/<table>.csv``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written: list[Path] = []
        for table, rows in self.tables.items():
            schema = TABLE_SCHEMAS[table]
            path = directory / f"{table}.csv"
            with path.open("w", newline="") as handle:
                writer = csv.DictWriter(
                    handle, fieldnames=[f.name for f in fields(schema)]
                )
                writer.writeheader()
                for row in rows:
                    writer.writerow(row_to_dict(row))
            written.append(path)
        return written

    @staticmethod
    def import_csv(chain: str, directory: str | Path) -> "DatasetStore":
        """Load every recognised ``<table>.csv`` under *directory*."""
        directory = Path(directory)
        store = DatasetStore(chain=chain)
        for table, schema in TABLE_SCHEMAS.items():
            path = directory / f"{table}.csv"
            if not path.exists():
                continue
            with path.open(newline="") as handle:
                reader = csv.DictReader(handle)
                store.insert(
                    table,
                    (row_from_dict(schema, line) for line in reader),
                )
        return store
