"""Query layer: a Python port of the paper's BigQuery SQL + UDF pipeline.

:func:`process_graph` is a line-for-line faithful port of the paper's
JavaScript UDF (Figs. 2-3): it takes the two parallel arrays the SQL
builds — the spending transaction hashes and the spent transaction
hashes — and returns ``[num_transactions, num_conflict_txs,
max_lcc_size]`` for the block, using the same ``nbMap`` / ``visitedMap``
breadth-first search.

The higher-level functions replay the outer SQL over a
:class:`repro.datasets.store.DatasetStore`, yielding per-block metric
rows identical in content to what the BigQuery jobs returned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.chain.errors import DatasetError
from repro.datasets.store import DatasetStore


def process_graph(
    txs: Sequence[str], spent_txs: Sequence[str]
) -> tuple[int, int, int]:
    """Faithful port of the paper's ``process_graph`` UDF (Figs. 2-3).

    Args:
        txs: i-th element is the hash of the transaction that spends the
            i-th input TXO (one entry per input, so hashes repeat for
            multi-input transactions).
        spent_txs: i-th element is the hash of the transaction that
            *created* the i-th input TXO.

    Returns:
        (num_transactions, num_conflict_txs, max_lcc_size) where the
        node universe is the set of spending transactions in the block
        and edges link creators to spenders when both are in the block.
    """
    if len(txs) != len(spent_txs):
        raise DatasetError("txs and spent_txs must be parallel arrays")

    # nbMap: transaction -> neighbours; inBlockMap: tx -> in this block.
    nb_map: dict[str, set[str]] = {}
    in_block: set[str] = set(txs)
    for tx in txs:
        nb_map.setdefault(tx, set())
    for spender, creator in zip(txs, spent_txs):
        if creator in in_block and creator != spender:
            nb_map[spender].add(creator)
            nb_map[creator].add(spender)

    # Breadth-first search exactly as in paper Fig. 3.
    visited: dict[str, int] = {tx: 0 for tx in nb_map}
    ccs: list[list[str]] = []
    for tx in nb_map:
        if visited[tx] == 0:
            cc = [tx]
            visited[tx] = 1
            neighbors = set(nb_map[tx])
            neighbors = {nb for nb in neighbors if visited[nb] == 0}
            while neighbors:
                new_neighbors: set[str] = set()
                for nb in neighbors:
                    cc.append(nb)
                    visited[nb] = 1
                for nb in neighbors:
                    for nnb in nb_map[nb]:
                        if visited[nnb] == 0:
                            new_neighbors.add(nnb)
                neighbors = new_neighbors
            ccs.append(cc)

    num_transactions = len(nb_map)
    unconflicted = sum(1 for cc in ccs if len(cc) == 1)
    max_lcc = max((len(cc) for cc in ccs), default=0)
    return (num_transactions, num_transactions - unconflicted, max_lcc)


@dataclass(frozen=True)
class BlockQueryRow:
    """One row of the outer query's result set (cf. paper Fig. 2)."""

    block_number: int
    num_transactions: int
    num_conflict_txs: int
    max_lcc_size: int

    @property
    def single_conflict_rate(self) -> float:
        if self.num_transactions == 0:
            return 0.0
        return self.num_conflict_txs / self.num_transactions

    @property
    def group_conflict_rate(self) -> float:
        if self.num_transactions == 0:
            return 0.0
        return self.max_lcc_size / self.num_transactions


def query_utxo_conflicts(store: DatasetStore) -> list[BlockQueryRow]:
    """Replay the paper's Bitcoin-family SQL over a dataset store.

    Reproduces Fig. 2: per block, aggregate the input rows into the two
    parallel arrays and hand them to :func:`process_graph`.  Coinbase
    transactions have no input rows, so — exactly as in the original
    query — they never enter the node universe.
    """
    results: list[BlockQueryRow] = []
    for block_number, rows in store.group_by_block("utxo_inputs").items():
        txs = [row.spending_tx_hash for row in rows]
        spent = [row.spent_tx_hash for row in rows]
        num_txs, num_conflicted, max_lcc = process_graph(txs, spent)
        results.append(
            BlockQueryRow(
                block_number=block_number,
                num_transactions=num_txs,
                num_conflict_txs=num_conflicted,
                max_lcc_size=max_lcc,
            )
        )
    return results


def query_account_conflicts(
    store: DatasetStore,
) -> list[BlockQueryRow]:
    """Replay the Ethereum-family query: address graph, tx-level metrics.

    The Ethereum variant of the paper's query differs "in terms of how
    the nodes and edges are defined, and requires one more step where
    the connected components for the addresses are mapped to the
    transactions" (§III-C).  Regular transactions and traces both
    contribute edges; coinbase (reward) rows are skipped.
    """
    from repro.core.tdg import account_tdg_from_edges

    tx_table = store.group_by_block("account_transactions")
    trace_table = store.group_by_block("account_traces")
    results: list[BlockQueryRow] = []
    for block_number, tx_rows in tx_table.items():
        tx_edges: dict[str, list[tuple[str, str]]] = {}
        for row in tx_rows:
            if row.is_coinbase:
                continue
            tx_edges[row.tx_hash] = [(row.from_address, row.to_address)]
        for trace in trace_table.get(block_number, []):
            if trace.trace_type == "reward":
                continue
            if trace.trace_address == "":
                continue  # top-level call: already the regular tx edge
            if trace.tx_hash in tx_edges:
                tx_edges[trace.tx_hash].append(
                    (trace.from_address, trace.to_address)
                )
        tdg = account_tdg_from_edges(tx_edges)
        results.append(
            BlockQueryRow(
                block_number=block_number,
                num_transactions=tdg.num_transactions,
                num_conflict_txs=tdg.num_conflicted,
                max_lcc_size=tdg.lcc_size,
            )
        )
    return results
