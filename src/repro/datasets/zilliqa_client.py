"""Simulated Zilliqa SDK client — the paper's §III-B collection path.

Zilliqa is not on BigQuery, so the paper wrote "a lightweight client for
downloading the data from Zilliqa's mainnet ... in two phases": first
``GetTransactionsForTxBlock`` for every block, then ``GetTransaction``
for every hash, at roughly 4 requests per second.

This module reproduces that pipeline against a *simulated node* wrapping
a synthetic Zilliqa chain: the node exposes the same two RPC methods
(plus ``GetNumTxBlocks``), enforces a configurable rate limit with a
simulated clock, and the :class:`ZilliqaCollector` downloads the whole
chain through them into dataset rows — exercising exactly the collection
code path the paper describes, network aside.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.account.receipts import ExecutedTransaction
from repro.chain.block import Block
from repro.chain.errors import DatasetError
from repro.datasets.schema import AccountTransactionRow, BlockRow
from repro.datasets.store import DatasetStore


class RPCError(DatasetError):
    """Raised for malformed or unanswerable RPC requests."""


@dataclass
class SimulatedClock:
    """A virtual clock advanced by the node's rate limiter."""

    now: float = 0.0

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        self.now += seconds


@dataclass
class SimulatedZilliqaNode:
    """A mainnet-like JSON-RPC endpoint over a built Zilliqa chain.

    Args:
        executed_blocks: the chain, as (block, executed txs) pairs.
        requests_per_second: SDK throughput cap (the paper measured ~4).
        clock: shared virtual clock; each request advances it by the
            rate-limit interval, letting tests assert collection cost
            without real sleeping.
    """

    executed_blocks: list[tuple[Block, list[ExecutedTransaction]]]
    requests_per_second: float = 4.0
    clock: SimulatedClock = field(default_factory=SimulatedClock)
    request_count: int = 0

    def __post_init__(self) -> None:
        if self.requests_per_second <= 0:
            raise ValueError("requests_per_second must be positive")
        self._tx_index: dict[str, tuple[int, ExecutedTransaction]] = {}
        for block, executed in self.executed_blocks:
            for item in executed:
                self._tx_index[item.tx_hash] = (block.height, item)

    def _throttle(self) -> None:
        self.request_count += 1
        self.clock.advance(1.0 / self.requests_per_second)

    # -- RPC methods ----------------------------------------------------------

    def get_num_tx_blocks(self) -> int:
        """``GetNumTxBlocks``: chain length."""
        self._throttle()
        return len(self.executed_blocks)

    def get_transactions_for_tx_block(self, block_number: int) -> list[str]:
        """``GetTransactionsForTxBlock``: all tx hashes in one block."""
        self._throttle()
        if not 0 <= block_number < len(self.executed_blocks):
            raise RPCError(f"block {block_number} out of range")
        block, _executed = self.executed_blocks[block_number]
        return [tx.tx_hash for tx in block.transactions]

    def get_transaction(self, tx_hash: str) -> dict[str, Any]:
        """``GetTransaction``: full detail for one transaction."""
        self._throttle()
        entry = self._tx_index.get(tx_hash)
        if entry is None:
            raise RPCError(f"unknown transaction {tx_hash!r}")
        height, item = entry
        return {
            "ID": tx_hash,
            "blockNumber": height,
            "senderAddress": item.tx.sender,
            "toAddr": item.tx.receiver,
            "amount": item.tx.value,
            "gasUsed": item.gas_used,
            "gasPrice": item.tx.gas_price,
            "coinbase": item.tx.is_coinbase,
            "receipt": {"success": item.receipt.success},
        }


@dataclass
class ZilliqaCollector:
    """The paper's two-phase downloader, against a simulated node."""

    node: SimulatedZilliqaNode

    def collect(self) -> DatasetStore:
        """Download the whole chain into an Ethereum-schema store.

        Phase one lists transaction hashes block by block; phase two
        fetches each transaction's detail.  The node's virtual clock
        accumulates the (simulated) wall time the real collection took.
        """
        store = DatasetStore(chain="zilliqa")
        num_blocks = self.node.get_num_tx_blocks()
        hashes_per_block: list[list[str]] = []
        for block_number in range(num_blocks):
            hashes_per_block.append(
                self.node.get_transactions_for_tx_block(block_number)
            )
        for block_number, hashes in enumerate(hashes_per_block):
            rows = []
            for tx_hash in hashes:
                detail = self.node.get_transaction(tx_hash)
                rows.append(
                    AccountTransactionRow(
                        block_number=detail["blockNumber"],
                        tx_hash=detail["ID"],
                        from_address=detail["senderAddress"],
                        to_address=detail["toAddr"],
                        value=detail["amount"],
                        gas_used=detail["gasUsed"],
                        gas_price=detail["gasPrice"],
                        is_coinbase=detail["coinbase"],
                    )
                )
            store.insert("account_transactions", rows)
            block, _executed = self.node.executed_blocks[block_number]
            store.insert(
                "blocks",
                [
                    BlockRow(
                        block_number=block.height,
                        timestamp=block.header.timestamp,
                        miner=block.header.miner,
                        transaction_count=len(block),
                    )
                ],
            )
        return store

    def estimated_duration(self) -> float:
        """Simulated seconds spent collecting so far (clock time)."""
        return self.node.clock.now
