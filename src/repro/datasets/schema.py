"""Row schemas mirroring the BigQuery public crypto datasets.

The paper queries six chains through two BigQuery schemas: the Bitcoin
dataset layout (shared by Bitcoin Cash, Litecoin, Dogecoin) and the
Ethereum layout (shared by Ethereum Classic).  This module defines the
subset of columns the paper's queries touch, so the reproduction's
query layer (:mod:`repro.datasets.queries`) runs against the same shape
of data the real pipeline did.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Type, TypeVar

RowT = TypeVar("RowT", bound="object")


@dataclass(frozen=True)
class UTXOInputRow:
    """One (transaction, input) pair from a Bitcoin-style dataset.

    Corresponds to the paper's Fig. 2 inner query: ``UNNEST(inputs)``
    over the transactions table yields one row per input, carrying the
    spending transaction's hash and the hash of the transaction that
    created the spent output.
    """

    block_number: int
    spending_tx_hash: str
    spent_tx_hash: str


@dataclass(frozen=True)
class UTXOTransactionRow:
    """One transaction from a Bitcoin-style dataset (per-tx columns)."""

    block_number: int
    tx_hash: str
    is_coinbase: bool
    input_count: int
    output_count: int
    output_value: int
    size_bytes: int


@dataclass(frozen=True)
class AccountTransactionRow:
    """One transaction from an Ethereum-style dataset."""

    block_number: int
    tx_hash: str
    from_address: str
    to_address: str
    value: int
    gas_used: int
    gas_price: int
    is_coinbase: bool


@dataclass(frozen=True)
class AccountTraceRow:
    """One trace row from an Ethereum-style ``traces`` table."""

    block_number: int
    tx_hash: str
    from_address: str
    to_address: str
    value: int
    trace_type: str
    trace_address: str


@dataclass(frozen=True)
class BlockRow:
    """One block header row (both schemas share these columns)."""

    block_number: int
    timestamp: float
    miner: str
    transaction_count: int


def row_to_dict(row: object) -> dict[str, Any]:
    """Serialise a schema row to a plain dict (CSV export)."""
    return {f.name: getattr(row, f.name) for f in fields(row)}


def row_from_dict(row_type: Type[RowT], data: dict[str, str]) -> RowT:
    """Rebuild a schema row from string-valued CSV fields."""
    kwargs: dict[str, Any] = {}
    for f in fields(row_type):
        raw = data[f.name]
        if f.type in ("int", int):
            kwargs[f.name] = int(raw)
        elif f.type in ("float", float):
            kwargs[f.name] = float(raw)
        elif f.type in ("bool", bool):
            kwargs[f.name] = raw in ("True", "true", "1")
        else:
            kwargs[f.name] = raw
    return row_type(**kwargs)
