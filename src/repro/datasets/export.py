"""Export built chains into BigQuery-shaped dataset stores.

This is the bridge between the substrates and the query layer: a UTXO
ledger becomes ``blocks`` + ``utxo_transactions`` + ``utxo_inputs``
tables, an executed account chain becomes ``blocks`` +
``account_transactions`` + ``account_traces`` tables — the same
information the public BigQuery datasets expose to the paper's SQL.
"""

from __future__ import annotations

from repro.account.receipts import ExecutedTransaction
from repro.account.transaction import AccountTransaction
from repro.chain.block import Block
from repro.chain.ledger import Ledger
from repro.datasets.schema import (
    AccountTraceRow,
    AccountTransactionRow,
    BlockRow,
    UTXOInputRow,
    UTXOTransactionRow,
)
from repro.datasets.store import DatasetStore
from repro.utxo.transaction import UTXOTransaction
from repro.vm.tracer import trace_rows_for_block


def export_utxo_ledger(
    ledger: Ledger[UTXOTransaction], *, chain: str
) -> DatasetStore:
    """Flatten a UTXO ledger into Bitcoin-schema tables."""
    store = DatasetStore(chain=chain)
    for block in ledger:
        store.insert(
            "blocks",
            [
                BlockRow(
                    block_number=block.height,
                    timestamp=block.header.timestamp,
                    miner=block.header.miner,
                    transaction_count=len(block),
                )
            ],
        )
        tx_rows = []
        input_rows = []
        for tx in block:
            tx_rows.append(
                UTXOTransactionRow(
                    block_number=block.height,
                    tx_hash=tx.tx_hash,
                    is_coinbase=tx.is_coinbase,
                    input_count=len(tx.inputs),
                    output_count=len(tx.outputs),
                    output_value=tx.total_output_value(),
                    size_bytes=tx.size_bytes,
                )
            )
            input_rows.extend(
                UTXOInputRow(
                    block_number=block.height,
                    spending_tx_hash=tx.tx_hash,
                    spent_tx_hash=outpoint.tx_hash,
                )
                for outpoint in tx.inputs
            )
        store.insert("utxo_transactions", tx_rows)
        store.insert("utxo_inputs", input_rows)
    return store


def export_account_blocks(
    executed_blocks: list[tuple[Block[AccountTransaction], list[ExecutedTransaction]]],
    *,
    chain: str,
) -> DatasetStore:
    """Flatten executed account blocks into Ethereum-schema tables."""
    store = DatasetStore(chain=chain)
    for block, executed in executed_blocks:
        store.insert(
            "blocks",
            [
                BlockRow(
                    block_number=block.height,
                    timestamp=block.header.timestamp,
                    miner=block.header.miner,
                    transaction_count=len(block),
                )
            ],
        )
        store.insert(
            "account_transactions",
            [
                AccountTransactionRow(
                    block_number=block.height,
                    tx_hash=item.tx.tx_hash,
                    from_address=item.tx.sender,
                    to_address=(
                        item.receipt.created_contract
                        if item.tx.is_contract_creation
                        and item.receipt.created_contract
                        else item.tx.receiver
                    ),
                    value=item.tx.value,
                    gas_used=item.gas_used,
                    gas_price=item.tx.gas_price,
                    is_coinbase=item.tx.is_coinbase,
                )
                for item in executed
            ],
        )
        store.insert(
            "account_traces",
            [
                AccountTraceRow(
                    block_number=row.block_number,
                    tx_hash=row.transaction_hash,
                    from_address=row.from_address,
                    to_address=row.to_address,
                    value=row.value,
                    trace_type=row.trace_type,
                    trace_address=row.trace_address,
                )
                for row in trace_rows_for_block(block.height, executed)
            ],
        )
    return store
