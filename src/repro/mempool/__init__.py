"""Mempool substrate: fee market, RBF, eviction, block packing."""

from repro.mempool.pool import (
    AdmissionError,
    Mempool,
    MempoolError,
    PoolEntry,
)

__all__ = ["AdmissionError", "Mempool", "MempoolError", "PoolEntry"]
