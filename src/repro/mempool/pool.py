"""Transaction mempool with a fee market and block packing.

Miners do not execute transactions in arrival order; they pack blocks
by fee density under a size/gas budget.  The mempool substrate gives
the workload layer (and downstream users) that machinery:

* admission with minimum-fee-rate policy and capacity-based eviction
  (lowest fee rate evicted first);
* replace-by-fee: a transaction with the same replacement key and a
  sufficiently higher fee rate supersedes the old one;
* greedy fee-density block packing under a weight budget — the
  classical knapsack heuristic miners actually use;
* fee estimation (percentile of recent inclusion fee rates).

The pool is deliberately model-agnostic: it stores
:class:`PoolEntry` records with opaque payloads, so both UTXO and
account transactions can flow through it.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Generic, TypeVar

from repro import obs

PayloadT = TypeVar("PayloadT")


class MempoolError(Exception):
    """Raised on invalid mempool operations."""


class AdmissionError(MempoolError):
    """A transaction failed the admission policy."""


@dataclass(frozen=True)
class PoolEntry(Generic[PayloadT]):
    """One queued transaction.

    Attributes:
        tx_hash: unique identifier.
        fee: total fee offered.
        weight: size/gas weight consumed in a block.
        payload: the underlying transaction object.
        replacement_key: transactions sharing this key compete;
            a newcomer must beat the incumbent's fee rate by the pool's
            replacement factor (e.g. "sender:nonce" for account chains,
            first outpoint for UTXO chains).  Empty = no competition.
    """

    tx_hash: str
    fee: int
    weight: int
    payload: PayloadT = None  # type: ignore[assignment]
    replacement_key: str = ""

    def __post_init__(self) -> None:
        if not self.tx_hash:
            raise ValueError("tx_hash must be non-empty")
        if self.fee < 0:
            raise ValueError("fee must be non-negative")
        if self.weight <= 0:
            raise ValueError("weight must be positive")

    @property
    def fee_rate(self) -> float:
        """Fee per unit of weight — the packing priority."""
        return self.fee / self.weight


@dataclass
class Mempool(Generic[PayloadT]):
    """A capacity-bounded, fee-prioritised transaction pool.

    Args:
        max_weight: total weight the pool retains; beyond it the
            cheapest entries are evicted.
        min_fee_rate: admission floor.
        replacement_factor: RBF multiplier — a replacement must offer
            at least this multiple of the incumbent's fee rate.
    """

    max_weight: int = 4_000_000
    min_fee_rate: float = 1.0
    replacement_factor: float = 1.1

    _entries: dict[str, PoolEntry[PayloadT]] = field(default_factory=dict)
    _by_replacement: dict[str, str] = field(default_factory=dict)
    _recent_rates: list[float] = field(default_factory=list)
    _total_weight: int = 0

    def __post_init__(self) -> None:
        if self.max_weight <= 0:
            raise ValueError("max_weight must be positive")
        if self.replacement_factor < 1.0:
            raise ValueError("replacement_factor must be >= 1")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, tx_hash: str) -> bool:
        return tx_hash in self._entries

    @property
    def total_weight(self) -> int:
        # Maintained incrementally on admission/removal: admission and
        # eviction consult this on every submit, and re-summing the
        # whole pool there is quadratic in pool size (it dominated
        # large lifecycle sweeps before it was made O(1)).
        return self._total_weight

    # -- admission -----------------------------------------------------------

    def submit(self, entry: PoolEntry[PayloadT]) -> None:
        """Admit *entry*, applying fee floor, RBF and eviction.

        Raises:
            AdmissionError: below the fee floor, duplicate hash, or an
                insufficient replacement bid.
        """
        if entry.tx_hash in self._entries:
            obs.counter("mempool.rejected", reason="duplicate").inc()
            raise AdmissionError(f"duplicate transaction {entry.tx_hash}")
        if entry.fee_rate < self.min_fee_rate:
            obs.counter("mempool.rejected", reason="fee_floor").inc()
            raise AdmissionError(
                f"fee rate {entry.fee_rate:.3f} below floor "
                f"{self.min_fee_rate:.3f}"
            )
        if entry.replacement_key:
            incumbent_hash = self._by_replacement.get(entry.replacement_key)
            if incumbent_hash is not None:
                incumbent = self._entries[incumbent_hash]
                required = incumbent.fee_rate * self.replacement_factor
                if entry.fee_rate < required:
                    obs.counter("mempool.rejected", reason="rbf_bid").inc()
                    raise AdmissionError(
                        "replacement bid too low: "
                        f"{entry.fee_rate:.3f} < required {required:.3f}"
                    )
                self._remove(incumbent_hash)
                obs.counter("mempool.replaced").inc()
                obs.lifecycle().close(
                    incumbent_hash, "dropped", reason="replaced"
                )
        self._entries[entry.tx_hash] = entry
        self._total_weight += entry.weight
        if entry.replacement_key:
            self._by_replacement[entry.replacement_key] = entry.tx_hash
        life = obs.lifecycle()
        if life.enabled and life.trace(entry.tx_hash) is None:
            life.begin(entry.tx_hash, fee=entry.fee, weight=entry.weight)
        self._evict_to_capacity()
        obs.counter("mempool.admitted").inc()
        if obs.enabled():
            obs.gauge("mempool.size").set(len(self._entries))
            obs.gauge("mempool.weight").set(self.total_weight)

    def _remove(self, tx_hash: str) -> PoolEntry[PayloadT] | None:
        entry = self._entries.pop(tx_hash, None)
        if entry is None:
            return None
        self._total_weight -= entry.weight
        if entry.replacement_key:
            if self._by_replacement.get(entry.replacement_key) == tx_hash:
                del self._by_replacement[entry.replacement_key]
        return entry

    def _evict_to_capacity(self) -> list[PoolEntry[PayloadT]]:
        """Drop cheapest entries until under the weight cap.

        Evicted transactions close their lifecycle trace as ``dropped``
        (reason ``evicted``) — without this, capacity pressure would
        leak open traces and the one-trace-per-transaction invariant
        the property tests check would silently erode.
        """
        evicted: list[PoolEntry[PayloadT]] = []
        if self.total_weight <= self.max_weight:
            return evicted
        with obs.trace_span("mempool.evict") as span:
            ordered = sorted(
                self._entries.values(), key=lambda entry: entry.fee_rate
            )
            for entry in ordered:
                if self.total_weight <= self.max_weight:
                    break
                self._remove(entry.tx_hash)
                evicted.append(entry)
            if evicted:
                obs.counter("mempool.evicted").inc(len(evicted))
                life = obs.lifecycle()
                for entry in evicted:
                    life.close(entry.tx_hash, "dropped", reason="evicted")
                if obs.enabled():
                    span.set(
                        evicted=len(evicted),
                        weight=sum(e.weight for e in evicted),
                    )
        return evicted

    # -- packing --------------------------------------------------------------

    def pack_block(self, weight_budget: int) -> list[PoolEntry[PayloadT]]:
        """Select and remove a block's worth of transactions.

        Greedy by fee rate (ties broken by insertion order), skipping
        entries that no longer fit — the standard miner heuristic.
        Selected entries leave the pool and their fee rates feed the
        estimator.
        """
        if weight_budget <= 0:
            raise MempoolError("weight_budget must be positive")
        counter = itertools.count()
        heap = [
            (-entry.fee_rate, next(counter), entry)
            for entry in self._entries.values()
        ]
        heapq.heapify(heap)
        selected: list[PoolEntry[PayloadT]] = []
        remaining = weight_budget
        while heap and remaining > 0:
            _neg_rate, _tiebreak, entry = heapq.heappop(heap)
            if entry.weight > remaining:
                continue
            selected.append(entry)
            remaining -= entry.weight
        for entry in selected:
            self._remove(entry.tx_hash)
            self._recent_rates.append(entry.fee_rate)
        # Keep the estimator window bounded.
        if len(self._recent_rates) > 10_000:
            self._recent_rates = self._recent_rates[-5_000:]
        self._note_packed(selected)
        return selected

    def _note_packed(self, selected: list[PoolEntry[PayloadT]]) -> None:
        if not obs.enabled():
            return
        obs.counter("mempool.packed_blocks").inc()
        obs.counter("mempool.packed_txs").inc(len(selected))
        obs.gauge("mempool.size").set(len(self._entries))
        obs.gauge("mempool.weight").set(self.total_weight)
        life = obs.lifecycle()
        if life.enabled:
            for entry in selected:
                life.record(
                    entry.tx_hash, "included", fee_rate=entry.fee_rate
                )

    def pack_block_with_dependencies(
        self,
        weight_budget: int,
        *,
        parents: dict[str, set[str]],
    ) -> list[PoolEntry[PayloadT]]:
        """Fee-greedy packing that respects intra-pool dependencies.

        UTXO transactions may spend outputs of other *pending*
        transactions; such a child is only eligible once every pending
        parent has been selected ahead of it (parents already confirmed
        on-chain are simply absent from *parents*).  Selection remains
        greedy by fee rate among currently-eligible entries — the
        simple form of child-pays-for-parent packing.

        Args:
            weight_budget: block capacity.
            parents: tx_hash -> set of parent tx hashes *within the
                pool* that must precede it.
        """
        if weight_budget <= 0:
            raise MempoolError("weight_budget must be positive")
        pending = dict(self._entries)
        selected: list[PoolEntry[PayloadT]] = []
        selected_hashes: set[str] = set()
        remaining = weight_budget
        while True:
            eligible = [
                entry
                for entry in pending.values()
                if entry.weight <= remaining
                and all(
                    parent in selected_hashes or parent not in pending
                    for parent in parents.get(entry.tx_hash, ())
                )
            ]
            if not eligible:
                break
            best = max(
                eligible, key=lambda entry: (entry.fee_rate, entry.tx_hash)
            )
            selected.append(best)
            selected_hashes.add(best.tx_hash)
            remaining -= best.weight
            del pending[best.tx_hash]
        for entry in selected:
            self._remove(entry.tx_hash)
            self._recent_rates.append(entry.fee_rate)
        self._note_packed(selected)
        return selected

    # -- external removal -------------------------------------------------------

    def remove(self, tx_hash: str) -> PoolEntry[PayloadT] | None:
        """Drop *tx_hash* without closing its lifecycle trace.

        The node runtime calls this when a received block confirms a
        transaction this pool still holds — the trace stays open
        because the *proposer's* execution stitching closes it.
        Returns the removed entry, or None when absent.
        """
        return self._remove(tx_hash)

    # -- introspection ----------------------------------------------------------

    def get(self, tx_hash: str) -> PoolEntry[PayloadT] | None:
        """The pending entry for *tx_hash*, or None."""
        return self._entries.get(tx_hash)

    def tx_hashes(self) -> list[str]:
        """Pending transaction hashes in insertion order."""
        return list(self._entries)

    def estimate_fee_rate(self, percentile: float = 0.5) -> float:
        """Fee-rate estimate from recently included transactions.

        Falls back to the admission floor with no history.
        """
        if not 0.0 <= percentile <= 1.0:
            raise ValueError("percentile must be in [0, 1]")
        if not self._recent_rates:
            return self.min_fee_rate
        ordered = sorted(self._recent_rates)
        index = min(
            len(ordered) - 1, int(round(percentile * (len(ordered) - 1)))
        )
        return ordered[index]

    def entries_by_fee_rate(self) -> list[PoolEntry[PayloadT]]:
        """All entries, most attractive first."""
        return sorted(
            self._entries.values(),
            key=lambda entry: -entry.fee_rate,
        )
