"""An authenticated state trie (Merkle-Patricia-lite).

Account chains commit to their global state with a state root in every
block header; this module provides that commitment for the account
substrate.  It is a hexary radix trie over key nibbles with node-level
hashing — structurally a simplified Merkle-Patricia trie (no RLP, no
extension-node compression, but the same authentication properties):

* equal contents ⇒ equal root, regardless of insertion order;
* any difference in contents ⇒ different root (up to SHA-256);
* inclusion proofs: a path of hashed nodes from root to leaf that a
  verifier can check against the root alone.

The world state uses it through :func:`state_root`, which folds every
account's balance/nonce/code/storage into trie entries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.hashing import sha256_hex

_RADIX = 16
EMPTY_ROOT = sha256_hex(b"empty-trie")


def _nibbles(key: str) -> list[int]:
    """Key string -> nibble path (hex digests of keys keep paths short)."""
    digest = sha256_hex(key.encode("utf-8"))
    return [int(ch, 16) for ch in digest[:16]]


class _Node:
    __slots__ = ("children", "value", "_hash")

    def __init__(self) -> None:
        self.children: dict[int, _Node] = {}
        self.value: str | None = None
        self._hash: str | None = None

    def invalidate(self) -> None:
        self._hash = None

    def node_hash(self) -> str:
        if self._hash is None:
            parts = ["node", self.value if self.value is not None else "\x00"]
            for index in range(_RADIX):
                child = self.children.get(index)
                parts.append(child.node_hash() if child else "-")
            self._hash = sha256_hex("\x1f".join(parts).encode("utf-8"))
        return self._hash


@dataclass(frozen=True)
class TrieProof:
    """Inclusion proof: the key, its value, and sibling hash layers.

    Each layer records, for one node on the root-to-leaf path, the
    node's own value slot and the hashes of all its children except the
    one continuing the path (identified by ``branch``).
    """

    key: str
    value: str
    layers: tuple[tuple[str, int, tuple[str, ...]], ...]


class StateTrie:
    """Mutable authenticated map from string keys to string values."""

    def __init__(self) -> None:
        self._root = _Node()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def get(self, key: str) -> str | None:
        node = self._root
        for nibble in _nibbles(key):
            child = node.children.get(nibble)
            if child is None:
                return None
            node = child
        return node.value

    def put(self, key: str, value: str) -> None:
        """Insert or update *key*; hashes along the path are invalidated."""
        if value is None:
            raise ValueError("value must not be None; use delete()")
        node = self._root
        path = [node]
        for nibble in _nibbles(key):
            child = node.children.get(nibble)
            if child is None:
                child = _Node()
                node.children[nibble] = child
            node = child
            path.append(node)
        if node.value is None:
            self._count += 1
        node.value = value
        for touched in path:
            touched.invalidate()

    def delete(self, key: str) -> bool:
        """Remove *key*; returns True when it was present."""
        node = self._root
        path: list[tuple[_Node, int]] = []
        for nibble in _nibbles(key):
            child = node.children.get(nibble)
            if child is None:
                return False
            path.append((node, nibble))
            node = child
        if node.value is None:
            return False
        node.value = None
        self._count -= 1
        # Prune now-empty branches and invalidate the path.
        for parent, nibble in reversed(path):
            child = parent.children[nibble]
            child.invalidate()
            if not child.children and child.value is None:
                del parent.children[nibble]
        self._root.invalidate()
        for parent, _nibble in path:
            parent.invalidate()
        return True

    @property
    def root(self) -> str:
        """The authenticated root of the current contents."""
        if self._count == 0:
            return EMPTY_ROOT
        return self._root.node_hash()

    # -- proofs -------------------------------------------------------------

    def prove(self, key: str) -> TrieProof:
        """Produce an inclusion proof for *key*.

        Raises:
            KeyError: when the key is absent.
        """
        node = self._root
        layers: list[tuple[str, int, tuple[str, ...]]] = []
        for nibble in _nibbles(key):
            siblings = tuple(
                node.children[index].node_hash()
                if index in node.children and index != nibble
                else ("-" if index != nibble else "*")
                for index in range(_RADIX)
            )
            layers.append(
                (
                    node.value if node.value is not None else "\x00",
                    nibble,
                    siblings,
                )
            )
            child = node.children.get(nibble)
            if child is None:
                raise KeyError(f"key {key!r} not in trie")
            node = child
        if node.value is None:
            raise KeyError(f"key {key!r} not in trie")
        return TrieProof(key=key, value=node.value, layers=tuple(layers))

    @staticmethod
    def verify_proof(proof: TrieProof, root: str) -> bool:
        """Check *proof* against *root* without any trie access."""
        # Rebuild the leaf hash, then fold the layers bottom-up.
        running = sha256_hex(
            "\x1f".join(
                ["node", proof.value] + ["-"] * _RADIX
            ).encode("utf-8")
        )
        # The leaf may have children in the real trie; proofs only work
        # for leaf-positioned values, which state keys always are
        # (fixed-length nibble paths).  Fold upward:
        for value_slot, branch, siblings in reversed(proof.layers):
            parts = ["node", value_slot]
            for index in range(_RADIX):
                if index == branch:
                    parts.append(running)
                else:
                    parts.append(siblings[index])
            running = sha256_hex("\x1f".join(parts).encode("utf-8"))
        return running == root


def state_root(state) -> str:
    """Authenticated root of a :class:`repro.account.state.WorldState`.

    Folds each account's balance, nonce, code id and storage into trie
    entries.  Deterministic: equal states yield equal roots.
    """
    trie = StateTrie()
    for address, account in sorted(state.iter_accounts()):
        trie.put(f"balance:{address}", str(account.balance))
        trie.put(f"nonce:{address}", str(account.nonce))
        if account.code_id:
            trie.put(f"code:{address}", account.code_id)
        for key, value in account.storage.items():
            trie.put(f"storage:{address}:{key}", value)
    return trie.root
