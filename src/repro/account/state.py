"""World state for the account data model.

Tracks balances, nonces, contract code handles and contract storage, and
applies transactions with Ethereum-like semantics: nonce check, intrinsic
gas, value transfer, and (when the receiver is a contract) dispatch into
the VM.  The VM integration point is a callable so the state layer does
not import the VM package directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.account.gas import DEFAULT_GAS_SCHEDULE, GasSchedule
from repro.account.receipts import ExecutedTransaction, Receipt
from repro.account.transaction import (
    NULL_ADDRESS,
    AccountTransaction,
    InternalTransaction,
)
from repro.chain.errors import (
    InsufficientBalanceError,
    NonceError,
    ValidationError,
)
from repro.chain.hashing import address_from_seed

# Signature of a contract executor: (state, tx, gas_budget) -> receipt
# fragments.  The VM package provides the real one; tests can stub it.
ContractExecutor = Callable[
    ["WorldState", AccountTransaction, int],
    tuple[bool, int, tuple[InternalTransaction, ...],
          frozenset[tuple[str, str]], frozenset[tuple[str, str]]],
]


@dataclass
class Account:
    """Mutable per-address state."""

    address: str
    balance: int = 0
    nonce: int = 0
    code_id: str = ""
    storage: dict[str, str] = field(default_factory=dict)

    @property
    def is_contract(self) -> bool:
        return bool(self.code_id)


class WorldState:
    """The global key-value state of an account-model chain."""

    def __init__(self, gas_schedule: GasSchedule = DEFAULT_GAS_SCHEDULE):
        self._accounts: dict[str, Account] = {}
        self.gas_schedule = gas_schedule

    # -- account access ---------------------------------------------------

    def account(self, address: str) -> Account:
        """Fetch (creating lazily) the account at *address*."""
        existing = self._accounts.get(address)
        if existing is None:
            existing = Account(address=address)
            self._accounts[address] = existing
        return existing

    def has_account(self, address: str) -> bool:
        return address in self._accounts

    def balance_of(self, address: str) -> int:
        account = self._accounts.get(address)
        return account.balance if account else 0

    def nonce_of(self, address: str) -> int:
        account = self._accounts.get(address)
        return account.nonce if account else 0

    def credit(self, address: str, amount: int) -> None:
        """Mint *amount* to *address* (genesis allocation, block rewards)."""
        if amount < 0:
            raise ValueError("credit amount must be non-negative")
        self.account(address).balance += amount

    def deploy_contract(self, deployer: str, code_id: str) -> str:
        """Register contract code at a fresh deterministic address."""
        account = self.account(deployer)
        address = address_from_seed(f"contract|{deployer}|{account.nonce}|{code_id}")
        contract = self.account(address)
        contract.code_id = code_id
        return address

    # -- transaction application ------------------------------------------

    def apply_transaction(
        self,
        tx: AccountTransaction,
        *,
        executor: ContractExecutor | None = None,
    ) -> ExecutedTransaction:
        """Validate and apply *tx*, returning its receipt.

        Coinbase transactions mint their value.  Regular transactions
        check nonce and balance, charge intrinsic gas, transfer value and
        run the contract executor when the receiver has code.

        Raises:
            NonceError / InsufficientBalanceError / ValidationError on
            invalid transactions; the state is unchanged in that case.
        """
        if tx.is_coinbase:
            self.credit(tx.receiver, tx.value)
            receipt = Receipt(tx_hash=tx.tx_hash, success=True, gas_used=0)
            return ExecutedTransaction(tx=tx, receipt=receipt)

        sender = self.account(tx.sender)
        if tx.nonce != sender.nonce:
            raise NonceError(
                f"tx {tx.tx_hash}: nonce {tx.nonce} != expected {sender.nonce}"
            )
        intrinsic = self.gas_schedule.intrinsic_gas(
            is_create=tx.is_contract_creation, data_length=len(tx.data)
        )
        if intrinsic > tx.gas_limit:
            raise ValidationError(
                f"tx {tx.tx_hash}: gas limit {tx.gas_limit} below "
                f"intrinsic cost {intrinsic}"
            )
        max_fee = tx.gas_limit * tx.gas_price
        if sender.balance < tx.value + max_fee:
            raise InsufficientBalanceError(
                f"tx {tx.tx_hash}: sender balance {sender.balance} cannot "
                f"cover value {tx.value} plus max fee {max_fee}"
            )

        sender.nonce += 1
        gas_used = intrinsic
        success = True
        internals: tuple[InternalTransaction, ...] = ()
        reads: frozenset[tuple[str, str]] = frozenset()
        writes: frozenset[tuple[str, str]] = frozenset()
        created = ""

        if tx.is_contract_creation:
            created = self.deploy_contract(tx.sender, code_id=tx.data or "raw")
            gas_used += self.gas_schedule.contract_creation
            sender.balance -= tx.value
            self.account(created).balance += tx.value
        else:
            receiver = self.account(tx.receiver)
            sender.balance -= tx.value
            receiver.balance += tx.value
            if receiver.is_contract and executor is not None:
                remaining = tx.gas_limit - gas_used
                success, vm_gas, internals, reads, writes = executor(
                    self, tx, remaining
                )
                gas_used += vm_gas
                if not success:
                    # Failed calls keep the fee but revert the transfer.
                    sender.balance += tx.value
                    receiver.balance -= tx.value

        gas_used = min(gas_used, tx.gas_limit)
        sender.balance -= gas_used * tx.gas_price
        if sender.balance < 0:
            # The max-fee precheck makes this unreachable; guard anyway.
            raise InsufficientBalanceError(
                f"tx {tx.tx_hash}: fee drove balance negative"
            )
        receipt = Receipt(
            tx_hash=tx.tx_hash,
            success=success,
            gas_used=gas_used,
            internal_transactions=internals,
            created_contract=created,
            storage_reads=reads,
            storage_writes=writes,
        )
        return ExecutedTransaction(tx=tx, receipt=receipt)

    def apply_block(
        self,
        transactions: Iterable[AccountTransaction],
        *,
        executor: ContractExecutor | None = None,
    ) -> list[ExecutedTransaction]:
        """Apply a block's transactions sequentially, in order."""
        return [
            self.apply_transaction(tx, executor=executor)
            for tx in transactions
        ]

    def total_supply(self) -> int:
        """Sum of all balances (monotone under regular txs, fees burn)."""
        return sum(account.balance for account in self._accounts.values())

    def iter_accounts(self):
        """Iterate (address, account) pairs — used for state commitments."""
        return iter(self._accounts.items())


__all__ = ["Account", "WorldState", "ContractExecutor", "NULL_ADDRESS"]
