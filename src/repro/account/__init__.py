"""Account data-model substrate (Ethereum, Ethereum Classic, Zilliqa)."""

from repro.account.gas import (
    DEFAULT_GAS_SCHEDULE,
    ETHEREUM_BLOCK_GAS_LIMITS,
    GasSchedule,
    block_gas_limit_for_year,
)
from repro.account.receipts import ExecutedTransaction, Receipt, total_gas
from repro.account.state import Account, WorldState
from repro.account.trie import EMPTY_ROOT, StateTrie, TrieProof, state_root
from repro.account.transaction import (
    NULL_ADDRESS,
    AccountTransaction,
    InternalTransaction,
    make_account_transaction,
    make_coinbase_transaction,
)

__all__ = [
    "DEFAULT_GAS_SCHEDULE",
    "ETHEREUM_BLOCK_GAS_LIMITS",
    "GasSchedule",
    "block_gas_limit_for_year",
    "ExecutedTransaction",
    "Receipt",
    "total_gas",
    "Account",
    "WorldState",
    "EMPTY_ROOT",
    "StateTrie",
    "TrieProof",
    "state_root",
    "NULL_ADDRESS",
    "AccountTransaction",
    "InternalTransaction",
    "make_account_transaction",
    "make_coinbase_transaction",
]
