"""Gas accounting for the account data model.

"Each operation in the EVM incurs a cost called gas that is proportional
to its computational cost" (§II-B).  Gas matters to this reproduction in
two places: the paper weights Ethereum's conflict-rate series by gas
(Fig. 4), and the gas model is what makes contract-creation transactions
expensive — the paper's explanation for why the gas-weighted conflict
rate sits *below* the tx-weighted one.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GasSchedule:
    """Per-operation gas prices, loosely modelled on Ethereum's.

    The absolute values are Ethereum mainnet's where a direct analogue
    exists; what the experiments rely on is only their relative ordering
    (create >> call >> transfer >> arithmetic).
    """

    tx_base: int = 21_000
    tx_create: int = 53_000
    tx_data_byte: int = 68
    contract_creation: int = 32_000
    call: int = 700
    call_value_transfer: int = 9_000
    sload: int = 200
    sstore_set: int = 20_000
    sstore_update: int = 5_000
    arithmetic: int = 3
    memory_word: int = 3
    log: int = 375
    balance: int = 400

    def intrinsic_gas(self, *, is_create: bool, data_length: int) -> int:
        """Gas charged before a single VM step runs."""
        base = self.tx_create if is_create else self.tx_base
        return base + self.tx_data_byte * data_length


DEFAULT_GAS_SCHEDULE = GasSchedule()

# Block gas limit trajectory for the synthetic Ethereum history; mainnet
# moved from ~3.1M (2016) to ~10M (2019).
ETHEREUM_BLOCK_GAS_LIMITS = {
    2016: 4_000_000,
    2017: 6_700_000,
    2018: 8_000_000,
    2019: 10_000_000,
}


def block_gas_limit_for_year(year: int) -> int:
    """Return the simulated block gas limit in force during *year*."""
    years = sorted(ETHEREUM_BLOCK_GAS_LIMITS)
    chosen = years[0]
    for candidate in years:
        if candidate <= year:
            chosen = candidate
    return ETHEREUM_BLOCK_GAS_LIMITS[chosen]
