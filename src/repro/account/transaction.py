"""Account-model transactions and internal transactions.

A regular transaction is a signed message from a sender account to a
receiver account (or to the null address for contract creation).
*Internal transactions* are contract-to-contract interactions produced
during execution; the paper defines them as "any interaction between
contracts that generates a so-called trace in the geth client ... and
which is not a regular or coinbase transaction" (§II-A).  They appear as
:class:`InternalTransaction` records attached to receipts, and the TDG
builder treats their (sender, receiver) pairs as additional edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.hashing import hash_fields

# The null address: contract-creation transactions send here, and the
# coinbase transaction originates here (cf. paper Fig. 1, "null" node).
NULL_ADDRESS = "0x" + "0" * 40


@dataclass(frozen=True)
class InternalTransaction:
    """One geth-style trace entry: a call between two addresses.

    Attributes:
        sender: address initiating the call.
        receiver: address being called.
        value: wei transferred along the call.
        call_type: "call", "delegatecall", "create" or "transfer".
        depth: call-stack depth (top-level message calls are depth 1).
    """

    sender: str
    receiver: str
    value: int = 0
    call_type: str = "call"
    depth: int = 1

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("internal transaction depth starts at 1")
        if self.value < 0:
            raise ValueError("value must be non-negative")


@dataclass(frozen=True)
class AccountTransaction:
    """A regular (or coinbase) account-model transaction.

    Attributes:
        sender: originating address; NULL_ADDRESS for coinbase rewards.
        receiver: destination address; NULL_ADDRESS for contract creation.
        value: wei transferred.
        nonce: sender's transaction counter, enforced by the state layer.
        gas_limit: maximum gas the sender pays for.
        gas_price: price per gas unit (fee market not modelled further).
        data: call data / init code for contract interactions.
        is_coinbase: block-reward marker; coinbases are excluded from TDGs.
    """

    sender: str
    receiver: str
    value: int
    nonce: int
    tx_hash: str
    gas_limit: int = 21_000
    gas_price: int = 1
    data: str = field(default="", compare=False)
    is_coinbase: bool = False

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("value must be non-negative")
        if self.nonce < 0:
            raise ValueError("nonce must be non-negative")
        if self.gas_limit <= 0:
            raise ValueError("gas_limit must be positive")

    @property
    def is_contract_creation(self) -> bool:
        return not self.is_coinbase and self.receiver == NULL_ADDRESS


def make_account_transaction(
    *,
    sender: str,
    receiver: str,
    value: int,
    nonce: int,
    gas_limit: int = 21_000,
    gas_price: int = 1,
    data: str = "",
) -> AccountTransaction:
    """Build a regular transaction with a deterministic content hash."""
    tx_hash = hash_fields(
        "account-tx", sender, receiver, value, nonce, gas_limit, gas_price, data
    )
    return AccountTransaction(
        sender=sender,
        receiver=receiver,
        value=value,
        nonce=nonce,
        tx_hash=tx_hash,
        gas_limit=gas_limit,
        gas_price=gas_price,
        data=data,
    )


def make_coinbase_transaction(
    *, miner: str, reward: int, height: int
) -> AccountTransaction:
    """Build the block-reward transaction paid to *miner*."""
    tx_hash = hash_fields("account-coinbase", miner, reward, height)
    return AccountTransaction(
        sender=NULL_ADDRESS,
        receiver=miner,
        value=reward,
        nonce=0,
        tx_hash=tx_hash,
        gas_limit=21_000,
        is_coinbase=True,
    )
