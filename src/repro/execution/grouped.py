"""Group-scheduled execution (paper §V-B).

With the TDG known, each dependency group can execute independently:
within a group transactions run sequentially in block order, while
groups are scheduled across cores.  The wall time is the scheduled
makespan — the quantity the paper bounds by ``max(L, x/n)``, i.e. a
speed-up of ``min(n, 1/l)``.

Scheduling groups onto finitely many cores is the NP-hard
multiprocessor scheduling problem (ref. [11]); this executor supports
the same policies as :mod:`repro.core.scheduling` (greedy list and LPT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.execution.engine import (
    ExecutionReport,
    TxTask,
    conflict_groups,
    record_report,
)
from repro.execution.simulator import CoreSimulator
from repro.obs.timeline import wave_rows


@dataclass
class GroupedExecutor:
    """Connected-component scheduler over a simulated multicore.

    Args:
        cores: number of cores.
        policy: "list" dispatches groups in discovery order; "lpt" sorts
            them by total cost, largest first (better makespans).
        scheduling_cost: the K of §V-B — TDG construction plus
            scheduling overhead, charged before execution starts.
    """

    cores: int
    policy: str = "lpt"
    scheduling_cost: float = 0.0
    name = "grouped"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be at least 1")
        if self.policy not in ("list", "lpt"):
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.scheduling_cost < 0:
            raise ValueError("scheduling_cost must be non-negative")

    def run(
        self,
        tasks: Sequence[TxTask],
        *,
        groups: Sequence[Sequence[TxTask]] | None = None,
    ) -> ExecutionReport:
        """Execute *tasks*; *groups* overrides conflict detection.

        When *groups* is omitted the executor derives dependency groups
        from the tasks' read/write sets (what a real engine would do
        after a TDG-construction pass).
        """
        total = sum(task.cost for task in tasks)
        if not tasks:
            return ExecutionReport(
                executor=self.name,
                cores=self.cores,
                wall_time=0.0,
                total_work=0.0,
                num_tasks=0,
            )
        with obs.trace_span(
            "exec.grouped.run", cores=self.cores, policy=self.policy
        ) as span:
            if groups is None:
                groups = conflict_groups(tasks)
            ordered = [list(group) for group in groups if group]
            if self.policy == "lpt":
                ordered.sort(
                    key=lambda group: -sum(task.cost for task in group)
                )
            run = CoreSimulator(self.cores).run_chains(ordered)
            recorder = obs.get_recorder()
            if recorder.enabled:
                # One wave: every task has its chain-scheduled start,
                # finish and core; the TDG pass (scheduling_cost) shifts
                # the whole schedule right.
                wave_rows(
                    recorder, self.name,
                    [task for group in ordered for task in group],
                    run, offset=self.scheduling_cost,
                )
            if obs.enabled():
                span.set(tasks=len(tasks), groups=len(ordered))
                obs.counter("exec.grouped.groups").inc(len(ordered))
                size_hist = obs.histogram("exec.grouped.group_size")
                for group in ordered:
                    size_hist.observe(len(group))
            report = ExecutionReport(
                executor=self.name,
                cores=self.cores,
                wall_time=self.scheduling_cost + run.makespan,
                total_work=total,
                num_tasks=len(tasks),
                rounds=1,
            )
        record_report(report)
        return report
