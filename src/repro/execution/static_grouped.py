"""Group-scheduled execution driven by *static* conflict predictions.

:class:`~repro.execution.grouped.GroupedExecutor` is the paper's §V-B
scheduler with oracle information: it derives dependency groups from
the runtime read/write sets, which only exist after execution.  This
executor makes the static analyzer's predictions
(:mod:`repro.staticcheck.predict`) load-bearing instead: each block is
partitioned into conflict groups by union-find over *predicted*
access-set overlaps, groups run as sequential chains across parallel
lanes, and the wall time is the scheduled makespan plus the analysis
charge K — the realizable version of ``min(n, 1/l)`` (Eq. 2).

Soundness makes this safe: a predicted set covers the runtime set, so
two truly conflicting transactions always land in the same predicted
group and execute sequentially in block order there.  As a safety net
against *unsound* predictions the executor still validates with the
runtime conflict relation: any true conflict spanning two predicted
groups aborts the tasks involved, which re-run sequentially in block
order after the parallel phase (PR 3's miss handling).  On the golden
chain the net never fires — the differential harness pins zero
re-executions and state/receipt roots identical to the oracle
scheduler's.

Tasks with no prediction fall back to "may touch anything" (sound,
maximally pessimistic): they collapse the block into one group, which
degrades to sequential block-order execution, never to a wrong result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro import obs
from repro.core.components import UnionFind
from repro.execution.engine import (
    ExecutionReport,
    TxTask,
    record_report,
)
from repro.execution.simulator import CoreSimulator
from repro.obs.timeline import sequential_rows, wave_rows

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.staticcheck.predict import PredictedAccess


@dataclass
class StaticGroupedExecutor:
    """Predicted-conflict group scheduler over a simulated multicore.

    Args:
        cores: number of parallel lanes.
        predictions: ``tx_hash`` → :class:`PredictedAccess`.  Tasks
            with no prediction are treated as "may touch anything".
        scheduling_cost: the K of §V-B — static analysis plus group
            scheduling, charged before execution starts.
    """

    cores: int
    predictions: Mapping[str, "PredictedAccess"] = field(
        default_factory=dict
    )
    scheduling_cost: float = 0.0
    name = "static-grouped"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be at least 1")
        if self.scheduling_cost < 0:
            raise ValueError("scheduling_cost must be non-negative")

    def _prediction(self, tx_hash: str) -> "PredictedAccess":
        from repro.staticcheck.predict import unknown_access

        found = self.predictions.get(tx_hash)
        return found if found is not None else unknown_access(tx_hash)

    def _predicted_groups(
        self, tasks: Sequence[TxTask]
    ) -> list[list[TxTask]]:
        """Union-find over predicted access-set overlaps.

        Groups come out in first-seen order with members in block
        order, so each group's sequential chain preserves the block's
        commit order — the property that makes the scheduled result
        state-root-equivalent to sequential execution when the
        predictions are sound.
        """
        from repro.staticcheck.predict import predicted_conflicts

        items = [self._prediction(task.tx_hash) for task in tasks]
        forest = UnionFind()
        for task in tasks:
            forest.add(task.tx_hash)
        for i, a in enumerate(items):
            for b in items[i + 1:]:
                if predicted_conflicts(a, b):
                    forest.union(a.tx_hash, b.tx_hash)
        groups: dict[object, list[TxTask]] = {}
        for task in tasks:
            groups.setdefault(forest.find(task.tx_hash), []).append(task)
        return list(groups.values())

    def _cross_group_aborts(
        self,
        tasks: Sequence[TxTask],
        groups: Sequence[Sequence[TxTask]],
    ) -> list[TxTask]:
        """Tasks whose *runtime* conflicts span two predicted groups."""
        group_of: dict[str, int] = {}
        for index, group in enumerate(groups):
            for task in group:
                group_of[task.tx_hash] = index
        aborted: dict[str, TxTask] = {}
        for i, a in enumerate(tasks):
            for b in tasks[i + 1:]:
                if group_of[a.tx_hash] == group_of[b.tx_hash]:
                    continue
                if a.conflicts_with(b):
                    aborted[a.tx_hash] = a
                    aborted[b.tx_hash] = b
        return [task for task in tasks if task.tx_hash in aborted]

    def run(self, tasks: Sequence[TxTask]) -> ExecutionReport:
        """Schedule predicted groups in parallel lanes; retry misses."""
        total = sum(task.cost for task in tasks)
        if not tasks:
            return ExecutionReport(
                executor=self.name,
                cores=self.cores,
                wall_time=0.0,
                total_work=0.0,
                num_tasks=0,
            )
        with obs.trace_span(
            "exec.static_grouped.run", cores=self.cores
        ) as span:
            groups = self._predicted_groups(tasks)
            ordered = [list(group) for group in groups]
            ordered.sort(key=lambda group: -sum(task.cost for task in group))
            run = CoreSimulator(self.cores).run_chains(ordered)
            aborted = self._cross_group_aborts(tasks, ordered)
            retry_time = sum(task.cost for task in aborted)
            recorder = obs.get_recorder()
            if recorder.enabled:
                wave_rows(
                    recorder, self.name,
                    [task for group in ordered for task in group],
                    run, offset=self.scheduling_cost,
                    aborted=aborted,
                )
                sequential_rows(
                    recorder, self.name, aborted,
                    offset=self.scheduling_cost + run.makespan,
                    round_index=1, retry=True,
                )
            if obs.enabled():
                span.set(
                    tasks=len(tasks),
                    groups=len(ordered),
                    aborts=len(aborted),
                )
                obs.counter("exec.static_grouped.groups").inc(len(ordered))
                size_hist = obs.histogram("exec.static_grouped.group_size")
                for group in ordered:
                    size_hist.observe(len(group))
                obs.counter("exec.static_grouped.aborts").inc(len(aborted))
            report = ExecutionReport(
                executor=self.name,
                cores=self.cores,
                wall_time=self.scheduling_cost + run.makespan + retry_time,
                total_work=total,
                num_tasks=len(tasks),
                reexecuted=len(aborted),
                aborts=len(aborted),
                rounds=2 if aborted else 1,
            )
        record_report(report)
        return report
