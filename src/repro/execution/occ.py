"""Optimistic concurrency control executor (batch validation).

A third engine design, between the paper's two models: execute pending
transactions in parallel waves with no locking; at the end of each wave
commit transactions in block order, aborting any whose read/write sets
overlap the writes of a transaction committed earlier *in the same
wave* — or that conflict with an earlier transaction that itself
aborted (committing past it would reorder conflicting transactions
against block order, diverging from the sequential state).  Aborted
transactions retry in the next wave.

This is the software-transactional-memory approach of Dickerson et al.
(paper ref. [6]) reduced to its scheduling skeleton, and it converges:
within each wave at least the first pending transaction commits.  It
lets the benches show where OCC sits between fully speculative
execution and TDG-informed group scheduling as the conflict rate rises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.execution.engine import ExecutionReport, TxTask, record_report
from repro.execution.simulator import CoreSimulator
from repro.obs.timeline import wave_log_rows

MAX_WAVES = 10_000


@dataclass
class OCCExecutor:
    """Wave-based optimistic executor with order-preserving commits."""

    cores: int
    name = "occ"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be at least 1")

    def run(self, tasks: Sequence[TxTask]) -> ExecutionReport:
        """Run waves until every transaction has committed."""
        total = sum(task.cost for task in tasks)
        if not tasks:
            return ExecutionReport(
                executor=self.name,
                cores=self.cores,
                wall_time=0.0,
                total_work=0.0,
                num_tasks=0,
            )
        with obs.trace_span("exec.occ.run", cores=self.cores) as span:
            recording = obs.enabled()
            recorder = obs.get_recorder()
            simulator = CoreSimulator(self.cores)
            pending = list(tasks)
            wall = 0.0
            aborts = 0
            waves = 0
            wave_log: list[tuple] = []
            while pending:
                waves += 1
                if waves > MAX_WAVES:
                    raise RuntimeError("OCC failed to converge")
                if recording:
                    obs.histogram("exec.occ.queue_depth").observe(
                        len(pending)
                    )
                wave_offset = wall
                run = simulator.run_wave(pending)
                wall += run.makespan
                committed_writes: set[str] = set()
                aborted_writes: set[str] = set()
                aborted_reads: set[str] = set()
                next_round: list[TxTask] = []
                for task in pending:  # commit in block order
                    touches = (task.reads | task.writes) & committed_writes
                    # Block-order preservation: a task that conflicts
                    # with an EARLIER task aborted in this wave must
                    # abort too, or it would commit ahead of it and the
                    # final state would no longer equal the sequential
                    # block-order state (the differential suite checks
                    # exactly this via per-location commit-order roots).
                    blocked = (
                        (task.reads | task.writes) & aborted_writes
                        or task.writes & aborted_reads
                    )
                    if touches or blocked:
                        aborts += 1
                        aborted_writes |= task.writes
                        aborted_reads |= task.reads
                        next_round.append(task)
                    else:
                        committed_writes |= task.writes
                if recorder.enabled:
                    # One log entry per wave; wave_log_rows expands the
                    # whole run (schedule on wave 0, retries at each
                    # wave boundary) in a single deferred batch.
                    wave_log.append((pending, run, wave_offset, next_round))
                pending = next_round
            wave_log_rows(recorder, self.name, wave_log)
            if recording:
                span.set(tasks=len(tasks), aborts=aborts, waves=waves)
                obs.counter("exec.occ.aborts").inc(aborts)
                obs.counter("exec.occ.waves").inc(waves)
                obs.counter("exec.occ.retries").inc(aborts)
            report = ExecutionReport(
                executor=self.name,
                cores=self.cores,
                wall_time=wall,
                total_work=total,
                num_tasks=len(tasks),
                aborts=aborts,
                rounds=waves,
            )
        record_report(report)
        return report
