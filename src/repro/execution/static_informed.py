"""Speculative execution informed by *static* conflict predictions.

:class:`~repro.execution.speculative.InformedSpeculativeExecutor` is
the paper's perfect-information model: it assumes an oracle hands over
the exact runtime conflict set at pre-processing cost ``K``.  This
module replaces the oracle with the static analyzer's predictions
(:mod:`repro.staticcheck.predict`): transactions whose *predicted*
sets conflict are binned up front, the rest run in the parallel phase.

Because predictions over-approximate the runtime sets, every true
conflict is predicted (soundness), so the parallel phase is abort-free
in the model — but false positives shrink it, which is exactly the
precision/recall trade the static-conflict bench measures.  As a
safety net against unsound predictions the executor still validates
the parallel wave with the runtime conflict relation and charges
re-execution for any abort it finds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro import obs
from repro.execution.engine import (
    ExecutionReport,
    TxTask,
    conflict_groups,
    record_report,
)
from repro.execution.simulator import CoreSimulator
from repro.obs.timeline import sequential_rows, wave_rows

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.staticcheck.predict import PredictedAccess


@dataclass
class StaticInformedExecutor:
    """Two-phase execution binned by statically predicted conflicts.

    Args:
        cores: parallel-phase width.
        predictions: ``tx_hash`` → :class:`PredictedAccess`.  Tasks
            with no prediction are treated as "may touch anything"
            (sound, maximally pessimistic).
        preprocessing_cost: the analysis cost K, charged up front.
    """

    cores: int
    predictions: Mapping[str, "PredictedAccess"] = field(
        default_factory=dict
    )
    preprocessing_cost: float = 0.0
    name = "static-informed"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be at least 1")
        if self.preprocessing_cost < 0:
            raise ValueError("preprocessing_cost must be non-negative")

    def _prediction(self, tx_hash: str) -> "PredictedAccess":
        from repro.staticcheck.predict import unknown_access

        found = self.predictions.get(tx_hash)
        return found if found is not None else unknown_access(tx_hash)

    def _predicted_conflicted(self, tasks: Sequence[TxTask]) -> set[str]:
        """Hashes whose predicted sets conflict with another task's."""
        from repro.staticcheck.predict import predicted_conflicts

        items = [self._prediction(task.tx_hash) for task in tasks]
        conflicted: set[str] = set()
        for i, a in enumerate(items):
            for b in items[i + 1:]:
                if predicted_conflicts(a, b):
                    conflicted.add(a.tx_hash)
                    conflicted.add(b.tx_hash)
        return conflicted

    def run(self, tasks: Sequence[TxTask]) -> ExecutionReport:
        """Parallel phase over predicted-clean txs; bin runs in order."""
        total = sum(task.cost for task in tasks)
        if not tasks:
            return ExecutionReport(
                executor=self.name,
                cores=self.cores,
                wall_time=0.0,
                total_work=0.0,
                num_tasks=0,
            )
        with obs.trace_span(
            "exec.static-informed.run", cores=self.cores
        ) as span:
            conflicted = self._predicted_conflicted(tasks)
            clean = [t for t in tasks if t.tx_hash not in conflicted]
            binned = [t for t in tasks if t.tx_hash in conflicted]
            simulator = CoreSimulator(self.cores)
            clean_run = simulator.run_wave(clean) if clean else None
            phase_one = clean_run.makespan if clean_run else 0.0
            # Safety net: validate the parallel wave against the
            # *runtime* conflict relation.  Sound predictions make this
            # a no-op; it only charges work if a true conflict slipped
            # through the static bin.
            aborted: list[TxTask] = []
            for group in conflict_groups(clean):
                if len(group) > 1:
                    aborted.extend(group)
            phase_two = sum(task.cost for task in binned) + sum(
                task.cost for task in aborted
            )
            recorder = obs.get_recorder()
            if recorder.enabled:
                # Clean wave after the analysis charge K; tasks the
                # safety net catches abort there and re-run in phase
                # two together with the statically binned ones.
                if clean_run is not None:
                    wave_rows(
                        recorder, self.name, clean, clean_run,
                        offset=self.preprocessing_cost,
                        aborted=aborted,
                    )
                bin_offset = self.preprocessing_cost + phase_one
                sequential_rows(
                    recorder, self.name, binned,
                    offset=bin_offset, round_index=1,
                )
                sequential_rows(
                    recorder, self.name, aborted,
                    offset=bin_offset + sum(t.cost for t in binned),
                    round_index=1, retry=True,
                )
            if obs.enabled():
                span.set(
                    tasks=len(tasks),
                    binned=len(binned),
                    aborts=len(aborted),
                )
                obs.counter("exec.static-informed.binned").inc(len(binned))
                obs.counter("exec.static-informed.aborts").inc(len(aborted))
            report = ExecutionReport(
                executor=self.name,
                cores=self.cores,
                wall_time=(
                    self.preprocessing_cost + phase_one + phase_two
                ),
                total_work=total,
                num_tasks=len(tasks),
                reexecuted=len(aborted),
                aborts=len(aborted),
                rounds=2,
            )
        record_report(report)
        return report
