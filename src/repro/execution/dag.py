"""Dependency-DAG execution: how pessimistic is the LCC assumption?

The paper's group model treats each connected component as strictly
sequential: "the size of largest connected component is the largest
number of transactions that need to be executed sequentially" (§V-B).
That is an over-approximation.  The true constraint inside a component
is a *partial order*:

* UTXO model — transaction ``b`` must follow ``a`` only when ``b``
  spends an output ``a`` creates.  A fan-out's children are mutually
  independent: a 25-transaction component whose shape is one parent
  plus 24 children has critical path 2, not 25.
* account model — two transactions must be ordered only when they
  directly share an address (balance cell); block order orients the
  edge.  A pure exchange fan-in really is sequential (every deposit
  writes the same balance), so for account chains the paper's
  assumption is tight; for UTXO chains it is loose.

:class:`DependencyDAG` builds the partial order, computes the critical
path, and schedules it on ``n`` cores with precedence-constrained list
scheduling.  The bench compares the resulting speed-ups against the
chain-per-component model (Eq. 2's basis).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

from repro import obs
from repro.account.receipts import ExecutedTransaction
from repro.obs.timeline import QUEUE_LANE
from repro.utxo.transaction import UTXOTransaction


@dataclass(frozen=True)
class DAGSchedule:
    """A concrete precedence-constrained schedule on ``cores`` lanes.

    Shares the field vocabulary of
    :class:`repro.execution.simulator.SimulatedRun` (``start_times`` /
    ``finish_times`` / ``core_of``) so timeline tooling consumes both;
    ``ready_times`` additionally records when each task's last
    predecessor finished (0.0 for sources).
    """

    cores: int
    makespan: float
    start_times: dict[str, float]
    finish_times: dict[str, float]
    core_of: dict[str, int]
    ready_times: dict[str, float]


@dataclass
class DependencyDAG:
    """A precedence DAG over one block's transactions.

    Edges ``u -> v`` mean v must execute after u.  Construction
    guarantees acyclicity by only adding edges from earlier to later
    block positions.
    """

    order: list[str] = field(default_factory=list)
    costs: dict[str, float] = field(default_factory=dict)
    successors: dict[str, set[str]] = field(default_factory=dict)
    predecessors: dict[str, set[str]] = field(default_factory=dict)

    def add_task(self, tx_hash: str, cost: float = 1.0) -> None:
        if tx_hash in self.costs:
            raise ValueError(f"duplicate task {tx_hash!r}")
        if cost < 0:
            raise ValueError("cost must be non-negative")
        self.order.append(tx_hash)
        self.costs[tx_hash] = cost
        self.successors[tx_hash] = set()
        self.predecessors[tx_hash] = set()

    def add_edge(self, earlier: str, later: str) -> None:
        if earlier not in self.costs or later not in self.costs:
            raise KeyError("both endpoints must be tasks")
        if earlier == later:
            return
        position = {h: i for i, h in enumerate(self.order)}
        if position[earlier] > position[later]:
            earlier, later = later, earlier
        self.successors[earlier].add(later)
        self.predecessors[later].add(earlier)

    def __len__(self) -> int:
        return len(self.order)

    @property
    def total_work(self) -> float:
        return sum(self.costs.values())

    def critical_path(self) -> float:
        """Length of the longest cost-weighted path (infinite cores)."""
        finish: dict[str, float] = {}
        for tx_hash in self.order:  # block order is a topological order
            ready = max(
                (finish[p] for p in self.predecessors[tx_hash]),
                default=0.0,
            )
            finish[tx_hash] = ready + self.costs[tx_hash]
        return max(finish.values(), default=0.0)

    def downstream_path(self) -> dict[str, float]:
        """For each task, the cost of the longest path it heads.

        The standard critical-path (HLF) priority: tasks heading long
        dependency chains should dispatch first, or a late-starting
        chain dominates the makespan.
        """
        downstream: dict[str, float] = {}
        for tx_hash in reversed(self.order):  # reverse topological
            tail = max(
                (downstream[s] for s in self.successors[tx_hash]),
                default=0.0,
            )
            downstream[tx_hash] = self.costs[tx_hash] + tail
        return downstream

    def schedule(self, cores: int) -> DAGSchedule:
        """Precedence-constrained list scheduling on *cores* cores.

        Ready tasks dispatch by critical-path priority (longest
        downstream chain first, block order as tiebreak) to the
        earliest-free core — the classic HLF heuristic.  Returns the
        full per-task placement (start, finish, lane, ready time).
        """
        if cores < 1:
            raise ValueError("cores must be at least 1")
        if not self.order:
            return DAGSchedule(
                cores=cores, makespan=0.0, start_times={},
                finish_times={}, core_of={}, ready_times={},
            )
        indegree = {
            h: len(self.predecessors[h]) for h in self.order
        }
        position = {h: i for i, h in enumerate(self.order)}
        downstream = self.downstream_path()

        # Two heaps: tasks waiting on predecessors keyed by ready time,
        # and tasks ready to run keyed by priority.  A core that frees
        # at time t runs the highest-priority task ready by t.
        waiting: list[tuple[float, int, str]] = []
        ready: list[tuple[float, int, str]] = []
        for h in self.order:
            if indegree[h] == 0:
                heapq.heappush(ready, (-downstream[h], position[h], h))
        ready_time: dict[str, float] = {}
        core_free: list[tuple[float, int]] = [
            (0.0, core) for core in range(cores)
        ]
        heapq.heapify(core_free)
        start_times: dict[str, float] = {}
        finish: dict[str, float] = {}
        core_of: dict[str, int] = {}
        scheduled = 0
        now = 0.0
        while scheduled < len(self.order):
            if not ready:
                # Idle until the next task becomes ready.
                assert waiting, "deadlock: nothing ready, nothing waiting"
                now = max(now, waiting[0][0])
            while waiting and waiting[0][0] <= now:
                _t, pos, h = heapq.heappop(waiting)
                heapq.heappush(ready, (-downstream[h], pos, h))
            if not ready:
                continue
            core_time, core = heapq.heappop(core_free)
            start_floor = max(core_time, now)
            _prio, _pos, tx_hash = heapq.heappop(ready)
            start = max(start_floor, ready_time.get(tx_hash, 0.0))
            end = start + self.costs[tx_hash]
            heapq.heappush(core_free, (end, core))
            start_times[tx_hash] = start
            finish[tx_hash] = end
            core_of[tx_hash] = core
            scheduled += 1
            now = max(now, core_free[0][0])
            for successor in self.successors[tx_hash]:
                indegree[successor] -= 1
                ready_time[successor] = max(
                    ready_time.get(successor, 0.0), end
                )
                if indegree[successor] == 0:
                    if ready_time[successor] <= now:
                        heapq.heappush(
                            ready,
                            (
                                -downstream[successor],
                                position[successor],
                                successor,
                            ),
                        )
                    else:
                        heapq.heappush(
                            waiting,
                            (
                                ready_time[successor],
                                position[successor],
                                successor,
                            ),
                        )
        if len(finish) != len(self.order):
            raise RuntimeError("cycle detected in dependency DAG")
        return DAGSchedule(
            cores=cores,
            makespan=max(finish.values()),
            start_times=start_times,
            finish_times=finish,
            core_of=core_of,
            ready_times={
                h: ready_time.get(h, 0.0) for h in self.order
            },
        )

    def schedule_makespan(self, cores: int) -> float:
        """Makespan of :meth:`schedule` (kept for existing callers)."""
        return self.schedule(cores).makespan

    def speedup(self, cores: int) -> float:
        """Total work over the scheduled makespan."""
        makespan = self.schedule_makespan(cores)
        if makespan == 0:
            return 1.0
        return self.total_work / makespan


def run_dag(dag: DependencyDAG, cores: int):
    """Execute *dag* on a simulated multicore as the ``dag`` engine.

    Wraps :meth:`DependencyDAG.schedule` in the uniform executor
    contract — an :class:`~repro.execution.engine.ExecutionReport`, the
    ``exec.*`` metric family, and flight-recorder events (``schedule``
    when a task's last predecessor finishes, then ``start``/``commit``
    on its lane, plus one ``edge`` event per dependency so the Chrome
    exporter can draw handoff chains as flow arrows).  Its measured speed-up may legitimately *exceed* the
    Eq. 2 bound ``min(n, 1/l)``: the bound treats each dependency group
    as sequential, while the DAG exploits the partial order inside it.
    """
    from repro.execution.engine import ExecutionReport, record_report

    plan = dag.schedule(cores)
    recorder = obs.get_recorder()
    if recorder.enabled and dag.order:
        block = recorder.current_block

        def expand():
            # plan and dag are immutable after scheduling, so the row
            # build can run lazily when the recorder is read.
            rows = []
            rows.extend(
                ("dag", block, 0, "schedule", tx_hash, QUEUE_LANE,
                 plan.ready_times[tx_hash], 0.0)
                for tx_hash in dag.order
            )
            rows.extend(
                ("dag", block, 0, "start", tx_hash, plan.core_of[tx_hash],
                 plan.start_times[tx_hash], dag.costs[tx_hash])
                for tx_hash in dag.order
            )
            rows.extend(
                ("dag", block, 0, "commit", tx_hash, plan.core_of[tx_hash],
                 plan.finish_times[tx_hash], dag.costs[tx_hash])
                for tx_hash in dag.order
            )
            # One edge event per dependency, stamped at the handoff
            # moment (the predecessor's finish); task carries both
            # endpoints as "pred->succ" for the flow exporter.
            rows.extend(
                ("dag", block, 0, "edge", f"{pred}->{succ}", QUEUE_LANE,
                 plan.finish_times[pred], 0.0)
                for pred in dag.order
                for succ in sorted(dag.successors[pred])
            )
            return rows

        recorder.defer(expand)
    if obs.enabled():
        obs.counter("exec.dag.edges").inc(
            sum(len(s) for s in dag.successors.values())
        )
        obs.histogram("exec.dag.critical_path").observe(
            dag.critical_path()
        )
    report = ExecutionReport(
        executor="dag",
        cores=cores,
        wall_time=plan.makespan,
        total_work=dag.total_work,
        num_tasks=len(dag.order),
        rounds=1,
    )
    record_report(report)
    return report


def utxo_dag(transactions: Sequence[UTXOTransaction]) -> DependencyDAG:
    """The true UTXO partial order: creator -> spender edges only."""
    dag = DependencyDAG()
    regular = [tx for tx in transactions if not tx.is_coinbase]
    for tx in regular:
        dag.add_task(tx.tx_hash)
    in_block = {tx.tx_hash for tx in regular}
    for tx in regular:
        for outpoint in tx.inputs:
            if outpoint.tx_hash in in_block:
                dag.add_edge(outpoint.tx_hash, tx.tx_hash)
    return dag


def account_dag(
    executed: Sequence[ExecutedTransaction], *, unit_cost: bool = True
) -> DependencyDAG:
    """Account-model partial order: direct address sharing, block order.

    Each transaction touches its regular and internal endpoints; a
    later transaction depends on the most recent earlier transaction
    touching each shared address (chaining per address, like per-cell
    write locks).
    """
    dag = DependencyDAG()
    last_toucher: dict[str, str] = {}
    for item in executed:
        if item.is_coinbase:
            continue
        cost = 1.0 if unit_cost else max(1.0, item.gas_used / 21_000.0)
        dag.add_task(item.tx_hash, cost=cost)
        touched: set[str] = set()
        for sender, receiver in item.edges():
            touched.add(sender)
            touched.add(receiver)
        for address in touched:
            previous = last_toucher.get(address)
            if previous is not None:
                dag.add_edge(previous, item.tx_hash)
            last_toucher[address] = item.tx_hash
    return dag
