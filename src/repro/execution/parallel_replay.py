"""Parallel executor replay — fan per-block engine replay over workers.

:mod:`repro.core.parallel` fans the *analysis* pipeline (TDG + metrics)
across blocks; this module does the same for the *execution* replay
itself.  A chain's blocks are partitioned into contiguous chunks, each
chunk replays every requested engine (the seven of
:data:`ENGINES`) inside a worker, and the per-(block, engine)
:class:`BlockReplay` records are reassembled in height order — together
with two determinism digests per record:

* ``state_root`` — per-location write chains folded in commit order
  (the order the engine's flight-recorder ``commit`` events fire,
  block position breaking clock ties) and hashed over the sorted
  (location, chain) pairs.  Every engine preserves block order among
  the writers of any single location — that is the serializable-
  equivalence contract the differential suite enforces — so all seven
  engines must produce byte-identical roots.
* ``receipt_root`` — a digest of the block's raw payload (receipts /
  transactions) in block order.  It is engine-independent by
  construction and exists to prove the *transport* (fork globals,
  shared memory, explicit pickles) delivered the payload byte-exactly.

Three backends share one code path (``serial`` / ``thread`` /
``process``), with the same validation, chunking and fallback contract
as :mod:`repro.core.parallel`.  The process backend adds a transport
the analysis pipeline lacks: on spawn/forkserver platforms the
``(inputs, engines, cores)`` context is pickled ONCE into a
:class:`multiprocessing.shared_memory.SharedMemory` segment and workers
attach by name — each worker unpickles from the shared buffer instead
of receiving a per-chunk copy of the payload through the request pipe.
Where the platform forks, module globals inherited through fork carry
the context as before and only ``(start, stop)`` pairs travel.

Observability: every chunk replays under a PRIVATE per-thread
observability scope (:func:`repro.obs.scoped`) with an always-on
:class:`~repro.obs.timeline.FlightRecorder` — the digests need the
event stream even when the parent records nothing.  When the parent
*is* instrumented, the worker registry dump and recorder rows ride
back with the chunk result and merge in submission (= height) order,
so ``repro.cli timeline`` / ``regress`` read a fanned-out replay
identically to a serial one.  The parent additionally records an
``exec.replay.*`` family (runs / chunks / blocks / fallbacks /
chunk_seconds / shm_bytes, labelled by backend) plus chunk-granularity
``replay.<backend>`` flight-recorder triples.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro import obs
from repro.account.receipts import ExecutedTransaction
from repro.chain.hashing import hash_concat, hash_fields
from repro.core.parallel import (
    chunk_bounds,
    validate_backend,
    validate_chunk_size,
    validate_jobs,
)
from repro.execution.engine import ExecutionReport, TxTask
from repro.obs import ObservabilityState
from repro.obs.lifecycle import NOOP_LIFECYCLE
from repro.obs.metrics import NOOP_REGISTRY, MetricsRegistry
from repro.obs.timeline import EventRow, FlightRecorder, QUEUE_LANE
from repro.obs.tracer import NOOP_TRACER
from repro.utxo.transaction import UTXOTransaction

# Mirrors repro.obs.regress.EXECUTOR_CHOICES; a unit test pins the two
# tuples equal so the registries cannot drift apart silently.
ENGINES = (
    "sequential",
    "speculative",
    "speculative-informed",
    "occ",
    "grouped",
    "static-informed",
    "static-grouped",
    "dag",
)

DEFAULT_CORES = 4
DEFAULT_BACKEND = "process"

DATA_MODELS = ("utxo", "account")


# -- inputs -------------------------------------------------------------------


@dataclass(frozen=True)
class ReplayBlock:
    """Pure, picklable description of one block's replay input.

    ``tasks`` are the executor-ready :class:`TxTask` objects, ``payload``
    the raw transaction sequence the DAG engine and the receipt digest
    consume, and ``predictions`` the block's statically predicted
    access sets (frozen
    :class:`~repro.staticcheck.predict.PredictedAccess` records) that
    feed the ``static-grouped`` engine — empty predictions degrade it
    soundly to sequential block order.  Nothing references shared
    ledger state, so a worker can replay the block in isolation.
    """

    height: int
    tasks: tuple[TxTask, ...]
    payload: tuple
    predictions: tuple = ()


def replay_block_inputs(
    profile, *, blocks: int, seed: int, scale: float = 1.0,
    predict: bool = True,
) -> list[ReplayBlock]:
    """Snapshot a seeded chain's blocks as replay inputs.

    With *predict* (the default) each block also carries its static
    access predictions; pass ``False`` to skip the analysis pass when
    no requested engine consumes predictions.
    """
    from repro.obs.regress import chain_prediction_blocks, chain_task_blocks

    predicted: dict[int, tuple] = {}
    if predict:
        predicted = dict(chain_prediction_blocks(
            profile, blocks=blocks, seed=seed, scale=scale
        ))
    return [
        ReplayBlock(
            height=height,
            tasks=tuple(tasks),
            payload=tuple(payload),
            predictions=predicted.get(height, ()),
        )
        for height, tasks, payload in chain_task_blocks(
            profile, blocks=blocks, seed=seed, scale=scale
        )
    ]


def coerce_replay_inputs(source) -> list[ReplayBlock]:
    """Accept a ReplayBlock list or (height, tasks, payload) triples."""
    out: list[ReplayBlock] = []
    for item in source:
        if isinstance(item, ReplayBlock):
            out.append(item)
        else:
            height, tasks, payload = item
            out.append(ReplayBlock(
                height=height, tasks=tuple(tasks), payload=tuple(payload),
            ))
    return out


def validate_engines(engines: Sequence[str]) -> tuple[str, ...]:
    """Normalise *engines* (order-preserving) or raise ValueError."""
    chosen = tuple(engines)
    if not chosen:
        raise ValueError("engines must name at least one engine")
    known = ", ".join(ENGINES)
    for name in chosen:
        if name not in ENGINES:
            raise ValueError(
                f"unknown engine {name!r}; expected one of: {known}"
            )
    if len(set(chosen)) != len(chosen):
        raise ValueError("engines must not repeat")
    return chosen


# -- determinism digests ------------------------------------------------------


def receipt_digest(item) -> str:
    """Canonical digest of one payload item (hash-seed independent).

    Receipts hold frozensets whose iteration order varies with
    ``PYTHONHASHSEED`` — every set is sorted before hashing so parent
    and spawned workers agree byte for byte.
    """
    if isinstance(item, ExecutedTransaction):
        receipt = item.receipt
        return hash_fields(
            "account-receipt",
            item.tx_hash,
            receipt.success,
            receipt.gas_used,
            tuple(
                (internal.sender, internal.receiver)
                for internal in receipt.internal_transactions
            ),
            receipt.created_contract,
            tuple(sorted(receipt.storage_reads)),
            tuple(sorted(receipt.storage_writes)),
        )
    if isinstance(item, UTXOTransaction):
        return hash_fields(
            "utxo-receipt",
            item.tx_hash,
            tuple((op.tx_hash, op.index) for op in item.inputs),
            tuple(
                (txo.value, txo.owner, txo.script) for txo in item.outputs
            ),
            item.fee,
        )
    raise TypeError(f"cannot digest payload item of type {type(item)!r}")


def receipts_root(payload: Sequence) -> str:
    """Digest of a block's payload in block order."""
    return hash_concat(receipt_digest(item) for item in payload)


def state_root(
    commit_order: Sequence[str],
    writes_by_hash: Mapping[str, Sequence[str]],
) -> str:
    """Fold per-location write chains in commit order; hash sorted pairs.

    Each committed transaction appends itself to the chain of every
    location it writes; the root hashes the sorted (location, chain)
    pairs, so it depends on the *relative commit order of each
    location's writers* and on nothing else — exactly the serializable
    state a real engine would have produced.
    """
    chains: dict[str, str] = {}
    for tx_hash in commit_order:
        for location in writes_by_hash.get(tx_hash, ()):
            chains[location] = hash_fields(
                "write", chains.get(location, ""), location, tx_hash
            )
    return hash_fields("state-root", tuple(sorted(chains.items())))


# -- per-(block, engine) records ----------------------------------------------


@dataclass(frozen=True)
class BlockReplay:
    """One engine's replay of one block, reduced to a picklable record."""

    height: int
    engine: str
    wall_time: float
    total_work: float
    num_tasks: int
    aborts: int
    reexecuted: int
    rounds: int
    scheduled: int
    aborted: int
    retried: int
    committed: int
    commit_order: tuple[str, ...]
    state_root: str
    receipt_root: str

    @property
    def speedup(self) -> float:
        if self.wall_time == 0:
            return 1.0
        return self.total_work / self.wall_time


@dataclass(frozen=True)
class EngineSummary:
    """One engine's replay aggregated over a whole chain."""

    engine: str
    blocks: int
    tasks: int
    wall_time: float
    total_work: float
    aborts: int
    reexecuted: int
    scheduled: int
    aborted: int
    retried: int
    committed: int
    state_root: str
    receipt_root: str

    @property
    def speedup(self) -> float:
        if self.wall_time == 0:
            return 1.0
        return self.total_work / self.wall_time


@dataclass(frozen=True)
class ReplayResult:
    """Height-ordered replay records plus per-engine aggregation."""

    engines: tuple[str, ...]
    records: tuple[BlockReplay, ...]

    def for_engine(self, engine: str) -> list[BlockReplay]:
        return [r for r in self.records if r.engine == engine]

    def summary(self, engine: str) -> EngineSummary:
        rows = self.for_engine(engine)
        return EngineSummary(
            engine=engine,
            blocks=len(rows),
            tasks=sum(r.num_tasks for r in rows),
            wall_time=sum(r.wall_time for r in rows),
            total_work=sum(r.total_work for r in rows),
            aborts=sum(r.aborts for r in rows),
            reexecuted=sum(r.reexecuted for r in rows),
            scheduled=sum(r.scheduled for r in rows),
            aborted=sum(r.aborted for r in rows),
            retried=sum(r.retried for r in rows),
            committed=sum(r.committed for r in rows),
            state_root=hash_fields(
                "chain-state-root",
                tuple((r.height, r.state_root) for r in rows),
            ),
            receipt_root=hash_fields(
                "chain-receipt-root",
                tuple((r.height, r.receipt_root) for r in rows),
            ),
        )

    def summaries(self) -> list[EngineSummary]:
        return [self.summary(engine) for engine in self.engines]


# -- worker-side replay -------------------------------------------------------


def _run_dag_block(data_model: str, payload: Sequence, cores: int):
    from repro.execution.dag import account_dag, run_dag, utxo_dag

    if data_model == "utxo":
        dag = utxo_dag(payload)
    else:
        dag = account_dag(payload)
    return run_dag(dag, cores)


class _EngineStats:
    __slots__ = ("scheduled", "aborted", "retried", "commits")

    def __init__(self) -> None:
        self.scheduled = 0
        self.aborted = 0
        self.retried = 0
        self.commits: list[tuple[float, int, str]] = []


def _block_records(
    block: ReplayBlock,
    engines: Sequence[str],
    reports: Mapping[str, ExecutionReport],
    rows: Sequence[EventRow],
) -> list[BlockReplay]:
    """Reduce one block's event rows to per-engine replay records."""
    position = {task.tx_hash: i for i, task in enumerate(block.tasks)}
    writes = {
        task.tx_hash: tuple(sorted(task.writes)) for task in block.tasks
    }
    receipt_root = receipts_root(block.payload)
    stats = {engine: _EngineStats() for engine in engines}
    unknown = len(position)
    for executor, _block, _round, kind, task, _lane, clock, _cost in rows:
        bucket = stats.get(executor)
        if bucket is None:
            continue
        if kind == "schedule":
            bucket.scheduled += 1
        elif kind == "abort":
            bucket.aborted += 1
        elif kind == "retry":
            bucket.retried += 1
        elif kind == "commit":
            bucket.commits.append(
                (clock, position.get(task, unknown), task)
            )
    records: list[BlockReplay] = []
    for engine in engines:
        bucket = stats[engine]
        bucket.commits.sort()
        order = tuple(task for _clock, _pos, task in bucket.commits)
        report = reports[engine]
        records.append(BlockReplay(
            height=block.height,
            engine=engine,
            wall_time=report.wall_time,
            total_work=report.total_work,
            num_tasks=report.num_tasks,
            aborts=report.aborts,
            reexecuted=report.reexecuted,
            rounds=report.rounds,
            scheduled=bucket.scheduled,
            aborted=bucket.aborted,
            retried=bucket.retried,
            committed=len(order),
            commit_order=order,
            state_root=state_root(order, writes),
            receipt_root=receipt_root,
        ))
    return records


def _replay_block(
    data_model: str,
    block: ReplayBlock,
    engines: Sequence[str],
    cores: int,
    registry: MetricsRegistry,
) -> tuple[list[BlockReplay], list[EventRow]]:
    """Replay one block through every engine under a private recorder.

    The recorder is fresh per block (and per thread, via
    :func:`repro.obs.scoped`), so concurrent chunks on the thread
    backend cannot interleave events, and the row stream for a block is
    identical no matter which worker replayed it.
    """
    from repro.obs.regress import make_executor

    recorder = FlightRecorder()
    scope = ObservabilityState(
        registry=registry, tracer=NOOP_TRACER, recorder=recorder,
        lifecycle=NOOP_LIFECYCLE,
    )
    reports: dict[str, ExecutionReport] = {}
    with obs.scoped(scope):
        with recorder.block(block.height):
            for engine in engines:
                if engine == "dag":
                    reports[engine] = _run_dag_block(
                        data_model, block.payload, cores
                    )
                elif engine == "static-grouped":
                    lookup = {
                        prediction.tx_hash: prediction
                        for prediction in block.predictions
                    }
                    reports[engine] = make_executor(
                        engine, cores, predictions=lookup
                    ).run(block.tasks)
                else:
                    reports[engine] = make_executor(engine, cores).run(
                        block.tasks
                    )
    rows = recorder.dump_rows()
    return _block_records(block, engines, reports, rows), rows


def replay_single_block(
    data_model: str,
    block: ReplayBlock,
    engine: str,
    cores: int,
    *,
    registry: MetricsRegistry | None = None,
) -> tuple[BlockReplay, tuple]:
    """Replay one block through one engine; return record + events.

    The node runtime's validation path calls this once per received
    block: same private-scope contract as :func:`_replay_block` (a
    fresh recorder, NOOP tracer/lifecycle so validators never touch
    the global traces), but it returns the single
    :class:`BlockReplay` together with the block's
    :class:`~repro.obs.timeline.TimelineEvent` stream so the caller
    can stitch lifecycle traces or profile lane utilization itself.

    Raises:
        ValueError: unknown data model / engine, or cores < 1.
    """
    if data_model not in DATA_MODELS:
        raise ValueError(
            f"unknown data model {data_model!r}; expected one of: "
            + ", ".join(DATA_MODELS)
        )
    validate_engines((engine,))
    if cores < 1:
        raise ValueError("cores must be at least 1")
    from repro.obs.regress import make_executor

    recorder = FlightRecorder()
    scope = ObservabilityState(
        registry=registry if registry is not None else NOOP_REGISTRY,
        tracer=NOOP_TRACER, recorder=recorder, lifecycle=NOOP_LIFECYCLE,
    )
    with obs.scoped(scope):
        with recorder.block(block.height):
            if engine == "dag":
                report = _run_dag_block(data_model, block.payload, cores)
            elif engine == "static-grouped":
                lookup = {
                    prediction.tx_hash: prediction
                    for prediction in block.predictions
                }
                report = make_executor(
                    engine, cores, predictions=lookup
                ).run(block.tasks)
            else:
                report = make_executor(engine, cores).run(block.tasks)
    events = tuple(recorder.events(block=block.height))
    record = _block_records(
        block, (engine,), {engine: report}, recorder.dump_rows()
    )[0]
    return record, events


class ReplayChunkResult:
    """What a worker ships back for one chunk of blocks.

    ``obs_dump`` / ``rows`` are the worker registry dump and recorder
    rows when the parent asked for observability forwarding
    (``record_obs=True``), else ``None`` — digests are carried by the
    records themselves either way.
    """

    __slots__ = ("records", "elapsed", "worker_id", "obs_dump", "rows")

    def __init__(
        self,
        records: list[BlockReplay],
        elapsed: float,
        worker_id: int,
        obs_dump: list[dict] | None,
        rows: list[EventRow] | None,
    ):
        self.records = records
        self.elapsed = elapsed
        self.worker_id = worker_id
        self.obs_dump = obs_dump
        self.rows = rows


def _replay_chunk(
    data_model: str,
    chunk: Sequence[ReplayBlock],
    engines: Sequence[str],
    cores: int,
    record_obs: bool | str,
) -> ReplayChunkResult:
    # ``record_obs`` is falsy or the parent registry's policy string
    # ("exact"/"sketch"); plain True keeps the historical exact policy.
    worker_id = (
        os.getpid() if threading.current_thread() is threading.main_thread()
        else threading.get_ident()
    )
    if record_obs:
        policy = record_obs if isinstance(record_obs, str) else "exact"
        registry = MetricsRegistry(policy=policy)
    else:
        registry = NOOP_REGISTRY
    all_rows: list[EventRow] = []
    records: list[BlockReplay] = []
    started = time.perf_counter()
    for block in chunk:
        block_records, rows = _replay_block(
            data_model, block, engines, cores, registry
        )
        records.extend(block_records)
        if record_obs:
            all_rows.extend(rows)
    elapsed = time.perf_counter() - started
    if record_obs:
        return ReplayChunkResult(
            records, elapsed, worker_id, registry.dump(), all_rows
        )
    return ReplayChunkResult(records, elapsed, worker_id, None, None)


def _worker_init() -> None:
    """Process-pool worker initializer (same rationale as the pipeline's).

    ``gc.freeze()`` keeps the worker's cyclic GC off the heap inherited
    through fork; ``obs.uninstall()`` drops any recording state copied
    from an instrumented parent — replay chunks always record into
    their own scoped state and ship dumps back explicitly.
    """
    import gc

    gc.freeze()
    obs.uninstall()


# -- transports ---------------------------------------------------------------

# Fork path: context published in the parent immediately before the
# pool starts, inherited through fork, cleared after — only
# (start, stop) pairs travel per chunk.
_FORK_CONTEXT: tuple | None = None

# Spawn path: one pickled context per run lives in a shared-memory
# segment; workers attach by name and unpickle once (cached here per
# segment name), so the payload crosses the process boundary zero
# times per chunk instead of once per chunk.
_SHM_CACHE: dict[str, tuple] = {}


def _replay_chunk_by_range(
    start: int, stop: int, record_obs: bool | str = False
) -> ReplayChunkResult:
    assert _FORK_CONTEXT is not None
    data_model, inputs, engines, cores = _FORK_CONTEXT
    return _replay_chunk(
        data_model, inputs[start:stop], engines, cores, record_obs
    )


def _attach_shm(name: str):
    """Attach to a named segment without resource-tracker side effects.

    On 3.13+ ``track=False`` exists; earlier interpreters register every
    attachment with the resource tracker, whose exit-time cleanup would
    unlink the segment out from under the other workers (bpo-38119) —
    unregister explicitly there.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        segment = shared_memory.SharedMemory(name=name)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
        return segment


def _load_shm_context(name: str) -> tuple:
    context = _SHM_CACHE.get(name)
    if context is None:
        segment = _attach_shm(name)
        try:
            # The segment may be page-rounded past the pickle; loads
            # stops at the STOP opcode and ignores the tail.
            context = pickle.loads(segment.buf)
        finally:
            segment.close()
        _SHM_CACHE[name] = context
    return context


def _replay_chunk_from_shm(
    name: str, start: int, stop: int, record_obs: bool | str = False
) -> ReplayChunkResult:
    data_model, inputs, engines, cores = _load_shm_context(name)
    return _replay_chunk(
        data_model, inputs[start:stop], engines, cores, record_obs
    )


def _replay_chunk_explicit(
    data_model: str,
    chunk: Sequence[ReplayBlock],
    engines: Sequence[str],
    cores: int,
    record_obs: bool | str = False,
) -> ReplayChunkResult:
    return _replay_chunk(data_model, chunk, engines, cores, record_obs)


# -- the fan-out --------------------------------------------------------------


def _collect_replay(
    resolvers: Sequence[Callable[[], ReplayChunkResult]],
    *,
    bounds: Sequence[tuple[int, int]],
    backend: str,
) -> list[BlockReplay]:
    """Gather chunk results in submission (= height) order, merging obs.

    Worker registry dumps merge into the installed registry and worker
    recorder rows replay into the installed recorder chunk by chunk, so
    the parent's event stream is byte-identical to a serial replay's
    regardless of which worker finished first.
    """
    seconds = obs.histogram("exec.replay.chunk_seconds", backend=backend)
    registry = obs.get_registry()
    recorder = obs.get_recorder()
    executor_name = f"replay.{backend}"
    lanes: dict[int, int] = {}
    collect_start = time.perf_counter()
    records: list[BlockReplay] = []
    for index, resolve in enumerate(resolvers):
        start, stop = bounds[index]
        with obs.trace_span(
            "exec.replay.chunk",
            index=index, start=start, blocks=stop - start, backend=backend,
        ) as span:
            result = resolve()
            span.set(worker_seconds=round(result.elapsed, 6))
        seconds.observe(result.elapsed)
        if result.obs_dump is not None:
            registry.merge_dump(result.obs_dump)
        if result.rows is not None and recorder.enabled:
            recorder.extend(result.rows)
        if recorder.enabled:
            lane = lanes.setdefault(result.worker_id, len(lanes))
            arrival = time.perf_counter() - collect_start
            begun = max(0.0, arrival - result.elapsed)
            task = f"chunk[{start}:{stop})"
            recorder.extend([
                (executor_name, None, 0, "schedule", task, QUEUE_LANE,
                 0.0, 0.0),
                (executor_name, None, 0, "start", task, lane,
                 begun, result.elapsed),
                (executor_name, None, 0, "commit", task, lane,
                 arrival, result.elapsed),
            ])
        records.extend(result.records)
    return records


def _run_replay_process_pool(
    inputs: list[ReplayBlock],
    data_model: str,
    engines: tuple[str, ...],
    cores: int,
    bounds: list[tuple[int, int]],
    jobs: int,
    record_obs: bool | str,
) -> list[BlockReplay]:
    """Fan chunks over a process pool: fork globals, else shared memory."""
    global _FORK_CONTEXT
    from concurrent.futures import ProcessPoolExecutor

    # Honour an explicitly configured start method (the spawn CI shard
    # sets one); otherwise prefer fork where the platform offers it.
    method = multiprocessing.get_start_method(allow_none=True)
    if method in (None, "fork"):
        try:
            context = multiprocessing.get_context("fork")
            fork_sharing = True
        except ValueError:
            context = multiprocessing.get_context()
            fork_sharing = False
    else:
        context = multiprocessing.get_context(method)
        fork_sharing = False

    segment = None
    if fork_sharing:
        _FORK_CONTEXT = (data_model, inputs, engines, cores)
    else:
        payload = pickle.dumps(
            (data_model, inputs, engines, cores),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(
                create=True, size=max(1, len(payload))
            )
            segment.buf[:len(payload)] = payload
            obs.gauge("exec.replay.shm_bytes").set(len(payload))
        except (ImportError, OSError, PermissionError):
            # No shared memory on this platform/sandbox: ship each
            # chunk's blocks explicitly (the pre-shm behaviour).
            segment = None
            obs.counter("exec.replay.shm_fallbacks").inc()
    try:
        with ProcessPoolExecutor(
            max_workers=jobs, mp_context=context, initializer=_worker_init
        ) as pool:
            if fork_sharing:
                futures = [
                    pool.submit(_replay_chunk_by_range, start, stop,
                                record_obs)
                    for start, stop in bounds
                ]
            elif segment is not None:
                futures = [
                    pool.submit(_replay_chunk_from_shm, segment.name,
                                start, stop, record_obs)
                    for start, stop in bounds
                ]
            else:
                futures = [
                    pool.submit(_replay_chunk_explicit, data_model,
                                inputs[start:stop], engines, cores,
                                record_obs)
                    for start, stop in bounds
                ]
            return _collect_replay(
                [future.result for future in futures],
                bounds=bounds, backend="process",
            )
    finally:
        if fork_sharing:
            _FORK_CONTEXT = None
        if segment is not None:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:
                pass


def _run_replay_thread_pool(
    inputs: list[ReplayBlock],
    data_model: str,
    engines: tuple[str, ...],
    cores: int,
    bounds: list[tuple[int, int]],
    jobs: int,
    record_obs: bool | str,
) -> list[BlockReplay]:
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        futures = [
            pool.submit(_replay_chunk_explicit, data_model,
                        inputs[start:stop], engines, cores, record_obs)
            for start, stop in bounds
        ]
        return _collect_replay(
            [future.result for future in futures],
            bounds=bounds, backend="thread",
        )


def replay_chain(
    source,
    *,
    data_model: str,
    engines: Sequence[str] = ENGINES,
    cores: int = DEFAULT_CORES,
    backend: str = DEFAULT_BACKEND,
    jobs: int | None = None,
    chunk_size: int | None = None,
) -> ReplayResult:
    """Replay a chain's blocks through *engines*, maybe in parallel.

    Args:
        source: a :class:`ReplayBlock` list or an iterable of
            ``(height, tasks, payload)`` triples (what
            :func:`repro.obs.regress.chain_task_blocks` yields).
        data_model: ``"utxo"`` or ``"account"``.
        engines: engine names from :data:`ENGINES`, order preserved.
        cores: simulated core count handed to each engine.
        backend: ``"process"`` (default), ``"thread"`` or ``"serial"``.
        jobs: worker count; defaults to the CPU count (1 for serial).
        chunk_size: blocks per work unit; defaults to a balanced value.

    Raises:
        ValueError: unknown backend / data model / engine, ``jobs < 1``,
            ``chunk_size < 1`` or ``cores < 1`` (the CLI's exit-2 class).

    The returned records — commit orders, state roots, receipt roots,
    event counts — are identical for every (backend, jobs, chunk_size)
    combination; the differential suite enforces it.  A process pool
    that cannot start degrades to the thread backend (counted in
    ``exec.replay.fallbacks``).
    """
    if data_model not in DATA_MODELS:
        raise ValueError(f"unknown data model {data_model!r}")
    engines = validate_engines(engines)
    if cores < 1:
        raise ValueError("cores must be at least 1")
    backend = validate_backend(backend)
    jobs = validate_jobs(jobs, backend=backend)
    inputs = coerce_replay_inputs(source)
    chunk_size = validate_chunk_size(
        chunk_size, num_blocks=len(inputs), jobs=jobs
    )
    # Carry the parent registry's histogram policy to the workers so a
    # sketch-policy sweep stays bounded-memory end to end.
    _parent_registry = obs.get_registry()
    record_obs: bool | str = (
        _parent_registry.policy if _parent_registry.enabled else False
    )

    bounds = chunk_bounds(len(inputs), chunk_size)
    with obs.trace_span(
        "exec.replay.run",
        backend=backend, jobs=jobs, chunks=len(bounds),
        blocks=len(inputs), engines=len(engines),
    ):
        obs.counter("exec.replay.runs", backend=backend).inc()
        obs.counter("exec.replay.chunks", backend=backend).inc(len(bounds))
        obs.counter("exec.replay.blocks", backend=backend).inc(len(inputs))
        obs.gauge("exec.replay.jobs", backend=backend).set(jobs)
        if backend == "serial":
            resolvers = [
                (lambda s=start, e=stop: _replay_chunk(
                    data_model, inputs[s:e], engines, cores, record_obs
                ))
                for start, stop in bounds
            ]
            records = _collect_replay(
                resolvers, bounds=bounds, backend="serial"
            )
        elif backend == "process":
            try:
                records = _run_replay_process_pool(
                    inputs, data_model, engines, cores, bounds, jobs,
                    record_obs,
                )
            except (ImportError, NotImplementedError, OSError,
                    PermissionError):
                # Sandboxes without sem_open / fork; chunk purity makes
                # the in-process retry safe.
                obs.counter(
                    "exec.replay.fallbacks", backend="process"
                ).inc()
                records = _run_replay_thread_pool(
                    inputs, data_model, engines, cores, bounds, jobs,
                    record_obs,
                )
        else:
            records = _run_replay_thread_pool(
                inputs, data_model, engines, cores, bounds, jobs,
                record_obs,
            )
    ordered = sorted(records, key=lambda r: (r.height, engines.index(r.engine)))
    return ReplayResult(engines=engines, records=tuple(ordered))


def replay_profile(
    chain,
    *,
    blocks: int,
    seed: int,
    scale: float = 1.0,
    engines: Sequence[str] = ENGINES,
    cores: int = DEFAULT_CORES,
    backend: str = DEFAULT_BACKEND,
    jobs: int | None = None,
    chunk_size: int | None = None,
) -> ReplayResult:
    """Build a seeded chain by profile (name or object) and replay it."""
    if isinstance(chain, str):
        from repro.workload.profiles import PROFILES_BY_NAME

        try:
            profile = PROFILES_BY_NAME[chain]
        except KeyError:
            known = ", ".join(sorted(PROFILES_BY_NAME))
            raise ValueError(
                f"unknown chain {chain!r}; known chains: {known}"
            ) from None
    else:
        profile = chain
    if blocks < 1:
        raise ValueError("blocks must be at least 1")
    inputs = replay_block_inputs(
        profile, blocks=blocks, seed=seed, scale=scale
    )
    return replay_chain(
        inputs,
        data_model=profile.data_model,
        engines=engines,
        cores=cores,
        backend=backend,
        jobs=jobs,
        chunk_size=chunk_size,
    )


__all__ = [
    "DEFAULT_BACKEND",
    "DEFAULT_CORES",
    "ENGINES",
    "BlockReplay",
    "EngineSummary",
    "ReplayBlock",
    "ReplayChunkResult",
    "ReplayResult",
    "coerce_replay_inputs",
    "receipt_digest",
    "receipts_root",
    "replay_block_inputs",
    "replay_chain",
    "replay_profile",
    "state_root",
    "validate_engines",
]
