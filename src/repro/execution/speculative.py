"""The two-phase speculative executor (Saraph–Herlihy, paper §V-A).

Phase one runs every transaction concurrently on ``n`` cores with no
concurrency control; any transaction found to conflict with another is
rolled back into a sequential "bin".  Phase two executes the bin in
block order on one core.  Conflicted transactions therefore execute
twice — the cost Eq. 1 charges as ``c·x``.

The *informed* variant knows the conflicted set beforehand (at a
pre-processing cost ``K``) and runs only the unconflicted transactions
in the parallel phase — the perfect-information model of §V-A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.execution.engine import (
    ExecutionReport,
    TxTask,
    conflict_groups,
    record_report,
)
from repro.execution.simulator import CoreSimulator
from repro.obs.timeline import sequential_rows, wave_rows


def split_conflicted(
    tasks: Sequence[TxTask],
) -> tuple[list[TxTask], list[TxTask]]:
    """Partition into (unconflicted, conflicted-bin), preserving order."""
    conflicted_hashes: set[str] = set()
    for group in conflict_groups(tasks):
        if len(group) > 1:
            conflicted_hashes.update(task.tx_hash for task in group)
    clean = [t for t in tasks if t.tx_hash not in conflicted_hashes]
    binned = [t for t in tasks if t.tx_hash in conflicted_hashes]
    return clean, binned


@dataclass
class SpeculativeExecutor:
    """Fully speculative two-phase execution (no prior knowledge)."""

    cores: int
    name = "speculative"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be at least 1")

    def run(self, tasks: Sequence[TxTask]) -> ExecutionReport:
        """Run both phases; wall time = parallel phase + sequential bin."""
        total = sum(task.cost for task in tasks)
        if not tasks:
            return ExecutionReport(
                executor=self.name,
                cores=self.cores,
                wall_time=0.0,
                total_work=0.0,
                num_tasks=0,
            )
        with obs.trace_span(
            "exec.speculative.run", cores=self.cores
        ) as span:
            simulator = CoreSimulator(self.cores)
            phase_one = simulator.run_wave(tasks)
            _clean, binned = split_conflicted(tasks)
            phase_two = sum(task.cost for task in binned)
            recorder = obs.get_recorder()
            if recorder.enabled:
                # Phase one: every task runs optimistically; the binned
                # ones abort at their finish.  Phase two replays the bin
                # sequentially on lane 0 after the parallel makespan.
                wave_rows(
                    recorder, self.name, tasks, phase_one, aborted=binned,
                )
                sequential_rows(
                    recorder, self.name, binned,
                    offset=phase_one.makespan, round_index=1, retry=True,
                )
            if obs.enabled():
                span.set(tasks=len(tasks), reexecuted=len(binned))
                obs.counter("exec.speculative.reexecuted").inc(len(binned))
                obs.counter("exec.speculative.aborts").inc(len(binned))
                obs.histogram("exec.speculative.bin_fraction").observe(
                    len(binned) / len(tasks)
                )
            report = ExecutionReport(
                executor=self.name,
                cores=self.cores,
                wall_time=phase_one.makespan + phase_two,
                total_work=total,
                num_tasks=len(tasks),
                reexecuted=len(binned),
                rounds=2,
            )
        record_report(report)
        return report


@dataclass
class InformedSpeculativeExecutor:
    """Two-phase execution with perfect prior conflict knowledge.

    Args:
        cores: parallel-phase width.
        preprocessing_cost: the K of §V-A, charged up front (e.g. the
            cost of computing the conflict sets).
    """

    cores: int
    preprocessing_cost: float = 0.0
    name = "speculative-informed"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be at least 1")
        if self.preprocessing_cost < 0:
            raise ValueError("preprocessing_cost must be non-negative")

    def run(self, tasks: Sequence[TxTask]) -> ExecutionReport:
        """Parallel phase over unconflicted txs only; bin runs once."""
        total = sum(task.cost for task in tasks)
        if not tasks:
            return ExecutionReport(
                executor=self.name,
                cores=self.cores,
                wall_time=0.0,
                total_work=0.0,
                num_tasks=0,
            )
        with obs.trace_span(
            "exec.speculative-informed.run", cores=self.cores
        ) as span:
            clean, binned = split_conflicted(tasks)
            simulator = CoreSimulator(self.cores)
            clean_run = simulator.run_wave(clean) if clean else None
            phase_one = clean_run.makespan if clean_run else 0.0
            phase_two = sum(task.cost for task in binned)
            recorder = obs.get_recorder()
            if recorder.enabled:
                # Perfect information: the bin is known up front, so its
                # tasks execute exactly once, sequentially, after the
                # preprocessing charge K and the clean parallel wave.
                if clean_run is not None:
                    wave_rows(
                        recorder, self.name, clean, clean_run,
                        offset=self.preprocessing_cost,
                    )
                sequential_rows(
                    recorder, self.name, binned,
                    offset=self.preprocessing_cost + phase_one,
                    round_index=1,
                )
            if obs.enabled():
                span.set(tasks=len(tasks), binned=len(binned))
                obs.counter("exec.speculative-informed.binned").inc(
                    len(binned)
                )
            report = ExecutionReport(
                executor=self.name,
                cores=self.cores,
                wall_time=self.preprocessing_cost + phase_one + phase_two,
                total_work=total,
                num_tasks=len(tasks),
                reexecuted=0,
                rounds=2,
            )
        record_report(report)
        return report
