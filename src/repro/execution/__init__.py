"""Parallel execution engines validating the paper's speed-up models."""

from repro.execution.engine import (
    ExecutionReport,
    SequentialExecutor,
    TxTask,
    conflict_groups,
    tasks_from_account_block,
    tasks_from_tdg,
    tasks_from_utxo_block,
)
from repro.execution.dag import (
    DAGSchedule,
    DependencyDAG,
    account_dag,
    run_dag,
    utxo_dag,
)
from repro.execution.grouped import GroupedExecutor
from repro.execution.occ import OCCExecutor
from repro.execution.parallel_replay import (
    ENGINES,
    BlockReplay,
    EngineSummary,
    ReplayBlock,
    ReplayResult,
    replay_block_inputs,
    replay_chain,
    replay_profile,
)
from repro.execution.simulator import CoreSimulator, SimulatedRun
from repro.execution.speculative import (
    InformedSpeculativeExecutor,
    SpeculativeExecutor,
    split_conflicted,
)
from repro.execution.static_grouped import StaticGroupedExecutor
from repro.execution.static_informed import StaticInformedExecutor

__all__ = [
    "ExecutionReport",
    "SequentialExecutor",
    "TxTask",
    "conflict_groups",
    "tasks_from_account_block",
    "tasks_from_tdg",
    "tasks_from_utxo_block",
    "DAGSchedule",
    "DependencyDAG",
    "account_dag",
    "run_dag",
    "utxo_dag",
    "GroupedExecutor",
    "OCCExecutor",
    "ENGINES",
    "BlockReplay",
    "EngineSummary",
    "ReplayBlock",
    "ReplayResult",
    "replay_block_inputs",
    "replay_chain",
    "replay_profile",
    "CoreSimulator",
    "SimulatedRun",
    "InformedSpeculativeExecutor",
    "SpeculativeExecutor",
    "StaticGroupedExecutor",
    "StaticInformedExecutor",
    "split_conflicted",
]
