"""Discrete-time multicore simulator.

Executors express their plans as waves of tasks; the simulator turns a
wave into a makespan by greedy list scheduling onto core timelines.  It
also exposes a dependency-aware mode where each task may name an
earlier task it must follow (used by the grouped executor to serialise
within dependency groups while letting groups overlap arbitrarily).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.execution.engine import TxTask


@dataclass(frozen=True)
class SimulatedRun:
    """Timeline of one simulated execution."""

    makespan: float
    start_times: dict[str, float]
    finish_times: dict[str, float]
    core_of: dict[str, int]

    def busy_time(self) -> float:
        """Total core-seconds of useful work."""
        return sum(
            self.finish_times[tx] - self.start_times[tx]
            for tx in self.finish_times
        )


class CoreSimulator:
    """A bank of *cores* identical cores with greedy dispatch."""

    def __init__(self, cores: int):
        if cores < 1:
            raise ValueError("cores must be at least 1")
        self.cores = cores

    def run_wave(self, tasks: Sequence[TxTask]) -> SimulatedRun:
        """Run independent *tasks*: each goes to the earliest-free core."""
        heap: list[tuple[float, int]] = [
            (0.0, core) for core in range(self.cores)
        ]
        heapq.heapify(heap)
        start_times: dict[str, float] = {}
        finish_times: dict[str, float] = {}
        core_of: dict[str, int] = {}
        for task in tasks:
            free_at, core = heapq.heappop(heap)
            start_times[task.tx_hash] = free_at
            finish = free_at + task.cost
            finish_times[task.tx_hash] = finish
            core_of[task.tx_hash] = core
            heapq.heappush(heap, (finish, core))
        makespan = max(finish_times.values(), default=0.0)
        return SimulatedRun(
            makespan=makespan,
            start_times=start_times,
            finish_times=finish_times,
            core_of=core_of,
        )

    def run_chains(
        self, chains: Sequence[Sequence[TxTask]]
    ) -> SimulatedRun:
        """Run dependency chains: tasks within a chain are sequential.

        Each chain is dispatched as a unit to the earliest-free core —
        the grouped executor's model, where a dependency group must stay
        on one logical execution stream.
        """
        heap: list[tuple[float, int]] = [
            (0.0, core) for core in range(self.cores)
        ]
        heapq.heapify(heap)
        start_times: dict[str, float] = {}
        finish_times: dict[str, float] = {}
        core_of: dict[str, int] = {}
        for chain in chains:
            if not chain:
                continue
            free_at, core = heapq.heappop(heap)
            cursor = free_at
            for task in chain:
                start_times[task.tx_hash] = cursor
                cursor += task.cost
                finish_times[task.tx_hash] = cursor
                core_of[task.tx_hash] = core
            heapq.heappush(heap, (cursor, core))
        makespan = max(finish_times.values(), default=0.0)
        return SimulatedRun(
            makespan=makespan,
            start_times=start_times,
            finish_times=finish_times,
            core_of=core_of,
        )
