"""Execution-engine core: tasks, conflict relations, reports, baseline.

The paper's speed-up models (§V) reason about an execution engine that
did not exist yet ("we have not designed and implemented an execution
engine that can exploit the available concurrency").  This package
builds that engine in simulation: transactions become
:class:`TxTask` objects carrying a cost and read/write sets, and the
executors in :mod:`repro.execution.speculative`, :mod:`.grouped` and
:mod:`.occ` schedule them on a simulated multicore, so their measured
wall-clock can be compared against Eqs. 1-2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro import obs
from repro.obs.timeline import sequential_rows
from repro.account.receipts import ExecutedTransaction
from repro.core.components import UnionFind
from repro.core.tdg import TDGResult
from repro.utxo.transaction import UTXOTransaction


@dataclass(frozen=True)
class TxTask:
    """One schedulable transaction.

    Attributes:
        tx_hash: identifier.
        cost: execution time in abstract units (1.0 = the paper's
            unit-cost assumption; gas-proportional costs are an
            extension the benches exercise).
        reads: locations read.
        writes: locations written.  Two tasks conflict when one writes
            a location the other reads or writes.
    """

    tx_hash: str
    cost: float = 1.0
    reads: frozenset[str] = field(default_factory=frozenset)
    writes: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ValueError("cost must be non-negative")

    def conflicts_with(self, other: "TxTask") -> bool:
        """Storage-level conflict test (write/write or read/write)."""
        if self.writes & other.writes:
            return True
        if self.writes & other.reads:
            return True
        if self.reads & other.writes:
            return True
        return False


@dataclass(frozen=True)
class ExecutionReport:
    """Outcome of running a block through an executor."""

    executor: str
    cores: int
    wall_time: float
    total_work: float
    num_tasks: int
    reexecuted: int = 0
    aborts: int = 0
    rounds: int = 1

    @property
    def speedup(self) -> float:
        """Sequential time over parallel wall time (the paper's R)."""
        if self.wall_time == 0:
            return 1.0
        return self.total_work / self.wall_time

    @property
    def efficiency(self) -> float:
        """Speed-up per core."""
        return self.speedup / self.cores


def record_report(report: ExecutionReport) -> None:
    """Feed an :class:`ExecutionReport` into the metrics registry.

    Shared by every executor so the snapshot carries a uniform
    ``exec.*`` family (runs, tasks, aborts, re-executions, wall-time
    and utilization distributions) labelled by executor and core count.
    """
    if not obs.enabled():
        return
    labels = {"executor": report.executor, "cores": report.cores}
    obs.counter("exec.runs", **labels).inc()
    obs.counter("exec.tasks", **labels).inc(report.num_tasks)
    obs.counter("exec.aborts", **labels).inc(report.aborts)
    obs.counter("exec.reexecuted", **labels).inc(report.reexecuted)
    obs.counter("exec.rounds", **labels).inc(report.rounds)
    obs.histogram("exec.wall_time", **labels).observe(report.wall_time)
    if report.num_tasks:
        obs.histogram("exec.speedup", **labels).observe(report.speedup)
        obs.histogram("exec.core_utilization", **labels).observe(
            report.efficiency
        )


def conflict_groups(tasks: Sequence[TxTask]) -> list[list[TxTask]]:
    """Partition *tasks* into storage-conflict groups via union-find."""
    if obs.enabled():
        obs.counter("exec.conflict_checks").inc(
            sum(len(task.reads) + len(task.writes) for task in tasks)
        )
    forest = UnionFind()
    location_writer: dict[str, str] = {}
    location_readers: dict[str, list[str]] = {}
    by_hash: dict[str, TxTask] = {}
    for task in tasks:
        by_hash[task.tx_hash] = task
        forest.add(task.tx_hash)
        for location in task.writes:
            if location in location_writer:
                forest.union(location_writer[location], task.tx_hash)
            else:
                location_writer[location] = task.tx_hash
            for reader in location_readers.get(location, ()):
                forest.union(reader, task.tx_hash)
        for location in task.reads:
            location_readers.setdefault(location, []).append(task.tx_hash)
            if location in location_writer:
                forest.union(location_writer[location], task.tx_hash)
    groups: dict[object, list[TxTask]] = {}
    for tx_hash in by_hash:
        groups.setdefault(forest.find(tx_hash), []).append(by_hash[tx_hash])
    return list(groups.values())


class SequentialExecutor:
    """The baseline every blockchain client implements today (§II-A)."""

    name = "sequential"

    def run(self, tasks: Sequence[TxTask], cores: int = 1) -> ExecutionReport:
        """Execute in block order on one core; wall time is total work."""
        total = sum(task.cost for task in tasks)
        sequential_rows(obs.get_recorder(), self.name, tasks)
        report = ExecutionReport(
            executor=self.name,
            cores=1,
            wall_time=total,
            total_work=total,
            num_tasks=len(tasks),
        )
        record_report(report)
        return report


# -- task adapters ------------------------------------------------------------


def tasks_from_utxo_block(
    transactions: Sequence[UTXOTransaction], *, unit_cost: bool = True
) -> list[TxTask]:
    """Tasks for a UTXO block: reads are inputs, writes are outputs.

    Coinbases are excluded, matching the TDG convention.  An input
    outpoint is a read-modify-write of the UTXO set entry, so inputs are
    placed in the write set; created outputs are writes by definition.
    """
    tasks: list[TxTask] = []
    for tx in transactions:
        if tx.is_coinbase:
            continue
        writes = {str(op) for op in tx.inputs}
        writes.update(str(op) for op in tx.outpoints_created())
        cost = 1.0 if unit_cost else max(1.0, len(tx.inputs) + len(tx.outputs))
        tasks.append(
            TxTask(
                tx_hash=tx.tx_hash,
                cost=cost,
                reads=frozenset(),
                writes=frozenset(writes),
            )
        )
    return tasks


def tasks_from_account_block(
    executed: Sequence[ExecutedTransaction], *, unit_cost: bool = True
) -> list[TxTask]:
    """Tasks for an account block: balance cells plus storage accesses."""
    tasks: list[TxTask] = []
    for item in executed:
        if item.is_coinbase:
            continue
        writes = {f"balance:{item.tx.sender}", f"balance:{item.tx.receiver}"}
        for internal in item.receipt.internal_transactions:
            writes.add(f"balance:{internal.sender}")
            writes.add(f"balance:{internal.receiver}")
        writes.update(
            f"storage:{address}:{key}"
            for address, key in item.receipt.storage_writes
        )
        reads = {
            f"storage:{address}:{key}"
            for address, key in item.receipt.storage_reads
        }
        cost = 1.0 if unit_cost else max(1.0, item.gas_used / 21_000.0)
        tasks.append(
            TxTask(
                tx_hash=item.tx_hash,
                cost=cost,
                reads=frozenset(reads),
                writes=frozenset(writes),
            )
        )
    return tasks


def tasks_from_tdg(
    tdg: TDGResult, *, costs: dict[str, float] | None = None
) -> list[TxTask]:
    """Tasks whose conflict structure reproduces a TDG's partition.

    Each dependency group gets a private synthetic location written by
    all its members, so ``conflict_groups`` recovers exactly the TDG
    groups.  Used to drive the executors from address-level TDGs, whose
    conflicts are coarser than storage-level ones.
    """
    tasks: list[TxTask] = []
    for group_index, group in enumerate(tdg.groups):
        location = f"group:{group_index}"
        for tx_hash in group:
            cost = 1.0 if costs is None else costs.get(tx_hash, 1.0)
            writes = (
                frozenset({location})
                if len(group) > 1
                else frozenset({f"solo:{tx_hash}"})
            )
            tasks.append(
                TxTask(tx_hash=tx_hash, cost=cost, writes=writes)
            )
    return tasks
