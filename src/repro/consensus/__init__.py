"""Consensus substrate: PoW timing/miner selection and PBFT committees."""

from repro.consensus.pbft import (
    PBFTCommittee,
    PBFTRoundResult,
    consensus_vs_execution_share,
)
from repro.consensus.pow import MinedSlot, Miner, PoWSimulator, make_pool_set

__all__ = [
    "PBFTCommittee",
    "PBFTRoundResult",
    "consensus_vs_execution_share",
    "MinedSlot",
    "Miner",
    "PoWSimulator",
    "make_pool_set",
]
