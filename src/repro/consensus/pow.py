"""Proof-of-Work simulation with difficulty retargeting.

The substrates need PoW for two things: realistic block *timing* (the
inter-block intervals that turn a block index into a calendar date for
the historical figures) and miner selection (mining pools are one of the
paper's conjectured sources of UTXO-model conflicts, so who mines a
block matters to the workload).

Mining is simulated, not hashed: block intervals are exponentially
distributed with rate = network hashrate / difficulty, the memoryless
behaviour of real PoW.  Difficulty retargets so the realised interval
tracks the chain's target (every 2016 blocks for the Bitcoin family,
per-block smoothing for the Ethereum family).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import obs


@dataclass(frozen=True)
class Miner:
    """A mining entity (solo miner or pool) with a hashrate share."""

    name: str
    address: str
    hashrate_share: float

    def __post_init__(self) -> None:
        if not 0.0 < self.hashrate_share <= 1.0:
            raise ValueError("hashrate share must be in (0, 1]")


@dataclass(frozen=True)
class MinedSlot:
    """The outcome of mining one block: who, when, at what difficulty."""

    height: int
    miner: Miner
    timestamp: float
    interval: float
    difficulty: float
    nonce: int


@dataclass
class PoWSimulator:
    """Simulates a PoW network producing a block stream.

    Args:
        miners: pools/miners with shares summing to (approximately) 1.
        target_interval: consensus target seconds between blocks
            (600 Bitcoin, 150 Litecoin, 60 Dogecoin, ~13 Ethereum).
        retarget_window: blocks per difficulty adjustment (2016 for the
            Bitcoin family; 1 gives Ethereum-style per-block smoothing).
        hashrate_growth: multiplicative hashrate growth per block,
            modelling the secular rise in network hashpower.
        rng: random source; inject a seeded one for determinism.
    """

    miners: list[Miner]
    target_interval: float
    retarget_window: int = 2016
    hashrate_growth: float = 0.0
    rng: random.Random = field(default_factory=random.Random)
    max_adjustment: float = 4.0

    def __post_init__(self) -> None:
        if not self.miners:
            raise ValueError("at least one miner is required")
        total_share = sum(miner.hashrate_share for miner in self.miners)
        if not 0.99 <= total_share <= 1.01:
            raise ValueError(
                f"miner hashrate shares must sum to ~1, got {total_share}"
            )
        if self.target_interval <= 0:
            raise ValueError("target_interval must be positive")
        if self.retarget_window < 1:
            raise ValueError("retarget_window must be at least 1")
        self._difficulty = 1.0
        self._hashrate = 1.0 / self.target_interval
        self._window_start_time: float | None = None
        self._height = 0

    @property
    def difficulty(self) -> float:
        return self._difficulty

    def pick_miner(self) -> Miner:
        """Sample the block winner proportionally to hashrate share."""
        roll = self.rng.random()
        cumulative = 0.0
        for miner in self.miners:
            cumulative += miner.hashrate_share
            if roll <= cumulative:
                return miner
        return self.miners[-1]

    def next_slot(self, current_time: float) -> MinedSlot:
        """Mine the next block after *current_time*.

        Returns the mined slot; the caller stitches it into a ledger.
        """
        if self._window_start_time is None:
            self._window_start_time = current_time
        # Exponential inter-block time with the memoryless PoW rate.
        expected = self._difficulty / self._hashrate
        interval = self.rng.expovariate(1.0 / expected)
        timestamp = current_time + interval
        slot = MinedSlot(
            height=self._height,
            miner=self.pick_miner(),
            timestamp=timestamp,
            interval=interval,
            difficulty=self._difficulty,
            nonce=self.rng.getrandbits(32),
        )
        self._height += 1
        self._hashrate *= 1.0 + self.hashrate_growth
        if self._height % self.retarget_window == 0:
            self._retarget(timestamp)
        if obs.enabled():
            obs.counter("consensus.pow.blocks").inc()
            obs.histogram("consensus.pow.interval").observe(interval)
            obs.gauge("consensus.pow.difficulty").set(self._difficulty)
        return slot

    def _retarget(self, now: float) -> None:
        """Adjust difficulty so the window tracked the target interval."""
        assert self._window_start_time is not None
        elapsed = now - self._window_start_time
        expected = self.retarget_window * self.target_interval
        if elapsed <= 0:
            ratio = self.max_adjustment
        else:
            ratio = expected / elapsed
        # Bitcoin clamps any single retarget to a factor of 4.
        ratio = min(max(ratio, 1.0 / self.max_adjustment), self.max_adjustment)
        self._difficulty *= ratio
        self._window_start_time = now

    def mine_chain_timing(
        self, num_blocks: int, *, start_time: float = 0.0
    ) -> list[MinedSlot]:
        """Mine *num_blocks* consecutive slots starting at *start_time*."""
        if num_blocks < 0:
            raise ValueError("num_blocks must be non-negative")
        slots: list[MinedSlot] = []
        now = start_time
        for _ in range(num_blocks):
            slot = self.next_slot(now)
            slots.append(slot)
            now = slot.timestamp
        return slots


def make_pool_set(
    names_and_shares: list[tuple[str, float]],
    *,
    address_prefix: str = "pool",
) -> list[Miner]:
    """Build a miner set from (name, share) pairs, deriving addresses."""
    from repro.chain.hashing import address_from_seed

    return [
        Miner(
            name=name,
            address=address_from_seed(f"{address_prefix}|{name}"),
            hashrate_share=share,
        )
        for name, share in names_and_shares
    ]
