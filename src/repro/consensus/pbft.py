"""PBFT committee consensus model.

Zilliqa runs "a variant of PBFT to ensure security at local committees"
(§II-B).  For a concurrency study the interesting quantities are round
latency and message complexity as a function of committee size — the
reason the execution layer's share of block time *grows* as committees
shrink (§II-C, the paper's first motivation).  This module models a
PBFT round at that level: pre-prepare, prepare and commit phases with
quorum counting and optional faulty replicas, returning latency and
message counts rather than exchanging real network messages.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import obs


@dataclass(frozen=True)
class PBFTRoundResult:
    """Outcome of one PBFT consensus round."""

    committed: bool
    latency: float
    messages_sent: int
    prepare_votes: int
    commit_votes: int
    view_changes: int


@dataclass
class PBFTCommittee:
    """A PBFT committee of ``n = 3f + 1``-style replicas.

    Args:
        size: number of replicas.
        faulty: number of Byzantine/crashed replicas (do not vote).
        link_latency_mean: mean one-way message delay in seconds.
        per_message_cost: CPU/bandwidth cost per message processed; this
            is what makes large committees slow (quadratic messages),
            the scaling failure §II-A attributes to classic consensus.
        rng: injectable random source for determinism.
    """

    size: int
    faulty: int = 0
    link_latency_mean: float = 0.01
    per_message_cost: float = 2e-5
    rng: random.Random = field(default_factory=random.Random)

    def __post_init__(self) -> None:
        if self.size < 4:
            raise ValueError("PBFT needs at least 4 replicas")
        if self.faulty < 0 or self.faulty >= self.size:
            raise ValueError("faulty count out of range")
        if self.link_latency_mean <= 0:
            raise ValueError("link latency must be positive")

    @property
    def quorum(self) -> int:
        """Votes needed per phase: 2f + 1 with f = floor((n-1)/3)."""
        f = (self.size - 1) // 3
        return 2 * f + 1

    @property
    def tolerates(self) -> int:
        """Maximum Byzantine replicas the committee provably tolerates."""
        return (self.size - 1) // 3

    def _phase_latency(self, voters: int) -> float:
        """Latency of one all-to-all phase: the quorum-th slowest link."""
        delays = sorted(
            self.rng.expovariate(1.0 / self.link_latency_mean)
            for _ in range(voters)
        )
        index = min(self.quorum, voters) - 1
        return delays[index]

    def run_round(self) -> PBFTRoundResult:
        """Execute one pre-prepare / prepare / commit round.

        The round commits when honest replicas reach the quorum in both
        voting phases; otherwise a view change is counted and the round
        retries under the next primary (up to f+1 attempts).
        """
        with obs.trace_span(
            "consensus.pbft.round", size=self.size, faulty=self.faulty
        ) as span:
            result = self._run_round()
            if obs.enabled():
                span.set(
                    committed=result.committed,
                    messages=result.messages_sent,
                    view_changes=result.view_changes,
                )
                outcome = "committed" if result.committed else "failed"
                obs.counter("consensus.pbft.rounds", outcome=outcome).inc()
                obs.counter("consensus.pbft.messages").inc(
                    result.messages_sent
                )
                if result.view_changes:
                    obs.counter("consensus.pbft.view_changes").inc(
                        result.view_changes
                    )
                obs.histogram("consensus.pbft.latency").observe(
                    result.latency
                )
        return result

    def _run_round(self) -> PBFTRoundResult:
        honest = self.size - self.faulty
        view_changes = 0
        total_messages = 0
        total_latency = 0.0
        max_attempts = self.tolerates + 1
        for attempt in range(max_attempts):
            # Pre-prepare: primary broadcasts to all.
            total_messages += self.size - 1
            total_latency += self.rng.expovariate(1.0 / self.link_latency_mean)
            primary_is_faulty = attempt < self.faulty and self.faulty > 0
            if primary_is_faulty:
                view_changes += 1
                # View change: all-to-all among honest replicas.
                total_messages += honest * (honest - 1)
                total_latency += self._phase_latency(honest)
                continue
            # Prepare and commit: all-to-all among honest replicas.
            prepare_votes = honest
            commit_votes = honest
            total_messages += 2 * honest * (honest - 1)
            total_latency += self._phase_latency(honest)
            total_latency += self._phase_latency(honest)
            total_latency += total_messages * self.per_message_cost
            committed = (
                prepare_votes >= self.quorum and commit_votes >= self.quorum
            )
            return PBFTRoundResult(
                committed=committed,
                latency=total_latency,
                messages_sent=total_messages,
                prepare_votes=prepare_votes,
                commit_votes=commit_votes,
                view_changes=view_changes,
            )
        total_latency += total_messages * self.per_message_cost
        return PBFTRoundResult(
            committed=False,
            latency=total_latency,
            messages_sent=total_messages,
            prepare_votes=0,
            commit_votes=0,
            view_changes=view_changes,
        )

    def expected_messages_per_round(self) -> int:
        """Closed-form fault-free message count: (n-1) + 2n(n-1).

        The quadratic term is why "classic distributed consensus
        protocols ... do not scale well to large networks" (§II-A) and
        why sharding keeps committees small — which in turn is why the
        execution layer matters (§II-C).
        """
        n = self.size
        return (n - 1) + 2 * n * (n - 1)


def consensus_vs_execution_share(
    *,
    committee_size: int,
    execution_time: float,
    link_latency_mean: float = 0.01,
    rounds: int = 10,
    rng: random.Random | None = None,
) -> float:
    """Fraction of block time spent on execution for a committee size.

    Reproduces the paper's §II-C observation qualitatively: for small
    committees the execution share is large (e.g. 250 ms execution vs.
    20 ms consensus at 7 nodes).
    """
    committee = PBFTCommittee(
        size=committee_size,
        link_latency_mean=link_latency_mean,
        rng=rng or random.Random(0),
    )
    latencies = [committee.run_round().latency for _ in range(rounds)]
    consensus_time = sum(latencies) / len(latencies)
    return execution_time / (execution_time + consensus_time)
