"""Committee formation and shard dispatch (Zilliqa-style).

Zilliqa "employs network sharding which assigns nodes to small
committees" where "transactions are processed independently at different
committees that are selected based on the senders' addresses" (§II-B).
This module implements both halves:

* :class:`CommitteeAssignment` — nodes run PoW to join a committee; the
  winners of the hardest puzzles form the DS (directory service)
  committee, the rest are dealt into shard committees round-robin by
  PoW solution order, mirroring Zilliqa's join protocol;
* :func:`shard_for_address` — the static sender-address -> shard map
  used to dispatch transactions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import obs
from repro.chain.errors import ShardingError


def shard_for_address(address: str, num_shards: int) -> int:
    """Deterministic shard id for *address*.

    Uses the trailing hex digits of the address, like Zilliqa's
    assignment on the last bits of the sender address.
    """
    if num_shards < 1:
        raise ShardingError("num_shards must be positive")
    stripped = address[2:] if address.startswith("0x") else address
    try:
        value = int(stripped[-8:], 16)
    except ValueError as exc:
        raise ShardingError(f"address {address!r} is not hex") from exc
    shard = value % num_shards
    if obs.enabled():
        obs.counter("sharding.dispatch", shard=shard).inc()
    return shard


@dataclass(frozen=True)
class NodeIdentity:
    """A network node eligible to join committees."""

    node_id: str
    hashpower: float = 1.0

    def __post_init__(self) -> None:
        if self.hashpower <= 0:
            raise ValueError("hashpower must be positive")


@dataclass
class CommitteeAssignment:
    """PoW-based assignment of nodes into DS + shard committees.

    Args:
        num_shards: number of shard committees.
        shard_size: replicas per shard committee.
        ds_size: replicas in the DS committee.
        rng: injectable randomness for the simulated PoW race.
    """

    num_shards: int
    shard_size: int
    ds_size: int
    rng: random.Random = field(default_factory=random.Random)

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ShardingError("need at least one shard")
        if self.shard_size < 4 or self.ds_size < 4:
            raise ShardingError("committees need >= 4 replicas for PBFT")

    @property
    def nodes_required(self) -> int:
        return self.ds_size + self.num_shards * self.shard_size

    def assign(
        self, nodes: list[NodeIdentity]
    ) -> tuple[list[NodeIdentity], list[list[NodeIdentity]]]:
        """Run the simulated PoW race and deal nodes into committees.

        Each node's PoW finishing time is exponential with rate equal to
        its hashpower; the earliest finishers claim DS seats, the next
        fill the shards round-robin.

        Returns:
            (ds_committee, shard_committees)

        Raises:
            ShardingError: when fewer nodes than seats are supplied.
        """
        if len(nodes) < self.nodes_required:
            raise ShardingError(
                f"{self.nodes_required} nodes required, got {len(nodes)}"
            )
        with obs.trace_span(
            "sharding.assign", shards=self.num_shards, nodes=len(nodes)
        ):
            return self._assign(nodes)

    def _assign(
        self, nodes: list[NodeIdentity]
    ) -> tuple[list[NodeIdentity], list[list[NodeIdentity]]]:
        finish_times = {
            node.node_id: self.rng.expovariate(node.hashpower)
            for node in nodes
        }
        ranked = sorted(nodes, key=lambda node: finish_times[node.node_id])
        ds_committee = ranked[: self.ds_size]
        shard_committees: list[list[NodeIdentity]] = [
            [] for _ in range(self.num_shards)
        ]
        pool = ranked[self.ds_size : self.nodes_required]
        for index, node in enumerate(pool):
            shard_committees[index % self.num_shards].append(node)
        return ds_committee, shard_committees
