"""Zilliqa-style network sharding substrate."""

from repro.sharding.epochs import EpochCosts, EpochTiming, epoch_time, shard_sweep
from repro.sharding.committee import (
    CommitteeAssignment,
    NodeIdentity,
    shard_for_address,
)
from repro.sharding.zilliqa import MicroBlock, ShardedChainBuilder, TxBlock

__all__ = [
    "EpochCosts",
    "EpochTiming",
    "epoch_time",
    "shard_sweep",
    "CommitteeAssignment",
    "NodeIdentity",
    "shard_for_address",
    "MicroBlock",
    "ShardedChainBuilder",
    "TxBlock",
]
