"""Epoch timing for the sharded chain: consensus, execution, state sync.

Zilliqa "needs to wait for state synchronization between committees
before transactions are confirmed" (§II-B).  An epoch's wall time is
therefore three parts:

1. per-shard PBFT consensus on the microblock (parallel across shards);
2. per-shard transaction execution (parallel across shards — this is
   where the paper's speed-ups act *within* each shard);
3. DS aggregation plus global state synchronisation, proportional to
   the state delta every committee must import from every other.

:func:`epoch_time` composes these; :func:`shard_sweep` shows the
characteristic plateau: adding shards divides execution but the sync
term grows with the cross-shard state volume, so throughput saturates —
which is exactly why reducing execution cost *within* a committee
(§II-C) remains important in sharded designs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.consensus.pbft import PBFTCommittee
from repro.sharding.zilliqa import TxBlock


@dataclass(frozen=True)
class EpochCosts:
    """Cost model parameters for one sharded epoch.

    Attributes:
        execution_time_per_tx: seconds to execute one transaction.
        sync_time_per_tx: seconds of state-sync per transaction whose
            effects must be imported by each *other* committee.
        shard_committee_size: replicas per shard (PBFT round cost).
        execution_speedup: intra-committee execution speed-up (the
            paper's R) applied to the execution term.
    """

    execution_time_per_tx: float = 0.002
    sync_time_per_tx: float = 0.0004
    shard_committee_size: int = 600
    execution_speedup: float = 1.0

    def __post_init__(self) -> None:
        if self.execution_time_per_tx < 0 or self.sync_time_per_tx < 0:
            raise ValueError("per-tx costs must be non-negative")
        if self.shard_committee_size < 4:
            raise ValueError("committee size must be >= 4")
        if self.execution_speedup <= 0:
            raise ValueError("execution_speedup must be positive")


@dataclass(frozen=True)
class EpochTiming:
    """Breakdown of one epoch's wall time."""

    consensus: float
    execution: float
    sync: float

    @property
    def total(self) -> float:
        return self.consensus + self.execution + self.sync

    def execution_share(self) -> float:
        if self.total == 0:
            return 0.0
        return self.execution / self.total


def epoch_time(
    block: TxBlock,
    costs: EpochCosts,
    *,
    rng: random.Random | None = None,
) -> EpochTiming:
    """Wall time for one TxBlock under the cost model.

    Consensus and execution are bounded by the *slowest shard* (they
    run in parallel across committees); synchronisation moves every
    shard's transaction effects to every other committee, so it scales
    with the total transaction count (times shards-aware fan-out folded
    into ``sync_time_per_tx``).
    """
    rng = rng or random.Random(0)
    committee = PBFTCommittee(
        size=costs.shard_committee_size, rng=rng
    )
    consensus = committee.run_round().latency
    slowest_shard = max(
        (len(microblock) for microblock in block.microblocks), default=0
    )
    execution = (
        slowest_shard
        * costs.execution_time_per_tx
        / costs.execution_speedup
    )
    sync = len(block) * costs.sync_time_per_tx
    return EpochTiming(consensus=consensus, execution=execution, sync=sync)


def shard_sweep(
    *,
    total_txs: int,
    shard_counts: list[int],
    costs: EpochCosts,
    seed: int = 0,
) -> list[tuple[int, float, float]]:
    """(shards, epoch time, throughput) for a fixed transaction volume.

    Transactions spread evenly across shards (the best case); the sync
    term is what prevents unbounded scaling.
    """
    if total_txs < 0:
        raise ValueError("total_txs must be non-negative")
    results = []
    for num_shards in shard_counts:
        if num_shards < 1:
            raise ValueError("shard counts must be positive")
        rng = random.Random(seed)
        committee = PBFTCommittee(
            size=costs.shard_committee_size, rng=rng
        )
        consensus = committee.run_round().latency
        per_shard = total_txs / num_shards
        execution = (
            per_shard * costs.execution_time_per_tx / costs.execution_speedup
        )
        sync = total_txs * costs.sync_time_per_tx
        total = consensus + execution + sync
        throughput = total_txs / total if total > 0 else 0.0
        results.append((num_shards, total, throughput))
    return results
