"""Zilliqa-style sharded block production.

Transactions are dispatched to shard committees by sender address; each
shard builds a *microblock* over its share of the traffic; the DS
committee aggregates microblocks into the final transaction block.
Cross-shard transactions are rejected, reproducing the limitation the
paper highlights ("A major limitation of Zilliqa is that it does not
support cross-shard transactions", §II-B): a transaction is accepted
only when its *receiver* either shares the sender's shard or is a plain
(non-contract) account, in which case the state update is applied during
the inter-committee state synchronisation the paper mentions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.account.transaction import AccountTransaction
from repro.chain.errors import ShardingError
from repro.sharding.committee import shard_for_address


@dataclass(frozen=True)
class MicroBlock:
    """One shard committee's slice of a transaction block."""

    shard_id: int
    transactions: tuple[AccountTransaction, ...]

    def __len__(self) -> int:
        return len(self.transactions)


@dataclass(frozen=True)
class TxBlock:
    """The DS committee's aggregate of all microblocks for one epoch."""

    epoch: int
    microblocks: tuple[MicroBlock, ...]

    def all_transactions(self) -> list[AccountTransaction]:
        """Transactions in final (shard-major) order."""
        merged: list[AccountTransaction] = []
        for microblock in self.microblocks:
            merged.extend(microblock.transactions)
        return merged

    def __len__(self) -> int:
        return sum(len(microblock) for microblock in self.microblocks)


@dataclass
class ShardedChainBuilder:
    """Dispatches transactions to shards and assembles TxBlocks.

    Args:
        num_shards: number of shard committees.
        contract_addresses: addresses hosting contracts; used for the
            cross-shard admissibility check.
    """

    num_shards: int
    contract_addresses: set[str] = field(default_factory=set)
    rejected: list[AccountTransaction] = field(default_factory=list)
    _epoch: int = 0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ShardingError("need at least one shard")

    def shard_of(self, address: str) -> int:
        return shard_for_address(address, self.num_shards)

    def is_cross_shard(self, tx: AccountTransaction) -> bool:
        """A contract call whose contract lives on a different shard."""
        if tx.is_coinbase:
            return False
        if tx.receiver not in self.contract_addresses:
            return False
        return self.shard_of(tx.sender) != self.shard_of(tx.receiver)

    def build_tx_block(
        self, transactions: list[AccountTransaction]
    ) -> TxBlock:
        """Dispatch *transactions* and aggregate the epoch's TxBlock.

        Cross-shard contract calls are recorded in ``rejected`` and
        dropped, as Zilliqa's protocol would never admit them.
        """
        buckets: list[list[AccountTransaction]] = [
            [] for _ in range(self.num_shards)
        ]
        for tx in transactions:
            if self.is_cross_shard(tx):
                self.rejected.append(tx)
                continue
            buckets[self.shard_of(tx.sender)].append(tx)
        microblocks = tuple(
            MicroBlock(shard_id=shard_id, transactions=tuple(bucket))
            for shard_id, bucket in enumerate(buckets)
        )
        block = TxBlock(epoch=self._epoch, microblocks=microblocks)
        self._epoch += 1
        return block

    def shard_load_balance(self, block: TxBlock) -> float:
        """Max/mean shard load — 1.0 is perfectly balanced.

        Returns 0.0 for an empty block.
        """
        sizes = [len(microblock) for microblock in block.microblocks]
        total = sum(sizes)
        if total == 0:
            return 0.0
        mean = total / len(sizes)
        return max(sizes) / mean
