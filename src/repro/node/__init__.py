"""The long-running node runtime: full lifecycle as service loops.

``repro.node`` turns the repo's batch pipelines into a network of
continuously running in-process nodes — mempool ingress, push-relay
gossip, PoW/PBFT block proposal, executor-replay validation with fork
choice — over either a deterministic virtual-clock transport or real
asyncio TCP.  See ``docs/node.md`` for the architecture and the
determinism contract.
"""

from repro.node.network import (
    NetworkConfig,
    NetworkResult,
    NodeNetwork,
    NodeSnapshot,
    build_node_txs,
    network_fingerprint,
)
from repro.node.node import (
    Node,
    NodeConfig,
    NodeStats,
    NodeTx,
    chain_state_root,
    make_genesis,
)
from repro.node.runtime import AsyncioRuntime, VirtualRuntime
from repro.node.transport import (
    FaultProfile,
    Frame,
    MemoryTransport,
    TcpTransport,
)

__all__ = [
    "AsyncioRuntime",
    "FaultProfile",
    "Frame",
    "MemoryTransport",
    "NetworkConfig",
    "NetworkResult",
    "Node",
    "NodeConfig",
    "NodeNetwork",
    "NodeSnapshot",
    "NodeStats",
    "NodeTx",
    "TcpTransport",
    "VirtualRuntime",
    "build_node_txs",
    "chain_state_root",
    "make_genesis",
    "network_fingerprint",
]
