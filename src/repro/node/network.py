"""N-node in-process networks: build, drive, converge, snapshot.

:class:`NodeNetwork` wires N :class:`~repro.node.node.Node` instances
into a full mesh over one transport, injects a seeded chain workload
through random ingress nodes, and runs the service loops until every
honest node converges — same head, height at least the target, and
byte-identical mempool contents — or the simulation budget runs out.

Transports (`NetworkConfig.transport`):

* ``"virtual"`` — :class:`~repro.node.transport.MemoryTransport` on the
  deterministic :class:`~repro.node.runtime.VirtualRuntime`.  The whole
  run (fault schedule included) is a pure function of the seed; two
  runs produce identical :meth:`NetworkResult.snapshot_dict` output.
* ``"tcp"`` — :class:`~repro.node.transport.TcpTransport` on a real
  asyncio loop; wall-clock, for the throughput bench.

The workload is the same seeded chain data every replay bench uses
(:func:`~repro.execution.parallel_replay.replay_block_inputs`), but
re-cast as loose :class:`~repro.node.node.NodeTx` client transactions:
the node network re-packs them into *its own* blocks by fee order, so
block contents here are decided by the mempool fee market plus
gossip timing, not by the historical block boundaries.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.chain.hashing import hash_fields
from repro.execution.parallel_replay import replay_block_inputs
from repro.node.node import (
    Node,
    NodeConfig,
    NodeTx,
    make_genesis,
)
from repro.node.runtime import AsyncioRuntime, VirtualRuntime
from repro.node.transport import (
    FaultProfile,
    MemoryTransport,
    TcpTransport,
)
from repro.obs.monitor import BlockSample
from repro.workload.profiles import get_profile

TRANSPORTS = ("virtual", "tcp")


@dataclass(frozen=True)
class NetworkConfig:
    """One network run, fully described (and so fully reproducible)."""

    nodes: int = 4
    chain: str = "ethereum"
    engine: str = "occ"
    cores: int = 2
    consensus: str = "pow"
    transport: str = "virtual"
    height: int = 5
    seed: int = 2020
    scale: float = 1.0
    workload_blocks: int = 6
    block_interval: float = 2.0
    block_weight: int = 400
    heartbeat: float = 0.5
    faults: FaultProfile = field(default_factory=FaultProfile)
    max_sim_time: float = 600.0
    check_interval: float = 0.25
    mempool_weight: int = 2 ** 62
    seen_capacity: int = 4096
    cost_unit_seconds: float = 0.001

    def __post_init__(self) -> None:
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; expected one "
                "of: " + ", ".join(TRANSPORTS)
            )
        if self.nodes < 2:
            raise ValueError("nodes must be at least 2")
        if self.height < 1:
            raise ValueError("height must be at least 1")
        if self.workload_blocks < 1:
            raise ValueError("workload_blocks must be at least 1")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.max_sim_time <= 0:
            raise ValueError("max_sim_time must be positive")
        if self.check_interval <= 0:
            raise ValueError("check_interval must be positive")

    def node_config(self, profile) -> NodeConfig:
        return NodeConfig(
            chain=self.chain,
            data_model=profile.data_model,
            engine=self.engine,
            cores=self.cores,
            consensus=self.consensus,
            num_nodes=self.nodes,
            num_shards=profile.num_shards,
            block_interval=self.block_interval,
            block_weight=self.block_weight,
            heartbeat=self.heartbeat,
            cost_unit_seconds=self.cost_unit_seconds,
            seen_capacity=self.seen_capacity,
            stop_height=self.height,
            mempool_weight=self.mempool_weight,
        )


@dataclass(frozen=True)
class NodeSnapshot:
    """One node's end-of-run state, reduced to comparable fields."""

    node_id: str
    height: int
    head_hash: str
    chain_root: str
    pool_hashes: tuple[str, ...]
    proposed: int
    applied: int
    reorgs: int
    orphaned: int
    duplicate_drops: int
    diverged: bool


@dataclass(frozen=True)
class NetworkResult:
    """Everything one network run produced."""

    config: NetworkConfig
    converged: bool
    reason: str
    sim_seconds: float
    wall_seconds: float
    height: int
    injected: int
    committed: int
    samples: int
    snapshots: tuple[NodeSnapshot, ...]

    @property
    def chain_roots(self) -> tuple[str, ...]:
        return tuple(snap.chain_root for snap in self.snapshots)

    @property
    def roots_agree(self) -> bool:
        return len(set(self.chain_roots)) == 1

    def snapshot_dict(self) -> dict:
        """Deterministic view for byte-reproducibility assertions.

        Wall-clock fields are excluded on purpose: under the virtual
        transport everything here is a pure function of the config.
        """
        return {
            "converged": self.converged,
            "reason": self.reason,
            "sim_seconds": round(self.sim_seconds, 9),
            "height": self.height,
            "injected": self.injected,
            "committed": self.committed,
            "nodes": [
                {
                    "node_id": snap.node_id,
                    "height": snap.height,
                    "head_hash": snap.head_hash,
                    "chain_root": snap.chain_root,
                    "pool": list(snap.pool_hashes),
                }
                for snap in self.snapshots
            ],
        }


def build_node_txs(
    profile, *, blocks: int, seed: int, scale: float = 1.0,
    predict: bool = False,
) -> list[NodeTx]:
    """Seeded chain workload flattened into client transactions.

    Fees follow the lifecycle driver's fee model (weight-proportional
    with a seeded multiplier) so the mempool's fee market has spread
    to act on.  Coinbase-style payload items with no executor task
    are dropped — they never travel a real mempool.
    """
    inputs = replay_block_inputs(
        profile, blocks=blocks, seed=seed, scale=scale, predict=predict,
    )
    rng = random.Random(f"{seed}|fees")
    txs: list[NodeTx] = []
    for block in inputs:
        payload_by_hash = {item.tx_hash: item for item in block.payload}
        predictions = {p.tx_hash: p for p in block.predictions}
        for task in block.tasks:
            payload = payload_by_hash.get(task.tx_hash)
            if payload is None:
                continue
            weight = max(1, round(task.cost))
            fee = int(weight * (1.0 + 4.0 * rng.random())) + weight
            txs.append(NodeTx(
                task=task, payload=payload, fee=fee, weight=weight,
                prediction=predictions.get(task.tx_hash),
            ))
    return txs


class NodeNetwork:
    """Build and run one N-node network to convergence."""

    def __init__(
        self,
        config: NetworkConfig,
        *,
        on_block: Callable[[str, BlockSample], None] | None = None,
    ) -> None:
        self.config = config
        self.profile = get_profile(config.chain)
        self._on_block = on_block
        self._samples = 0
        self._injected = 0
        self._injection_done = False
        self.nodes: list[Node] = []

    def _handle_block(self, node_id: str, sample: BlockSample) -> None:
        self._samples += 1
        if self._on_block is not None:
            self._on_block(node_id, sample)

    def run(self) -> NetworkResult:
        """Run the network to convergence (or the time budget)."""
        if self.config.transport == "tcp":
            runtime = AsyncioRuntime()
        else:
            runtime = VirtualRuntime()
        started = time.perf_counter()
        result = runtime.run_until_complete(self._main(runtime))
        result_wall = time.perf_counter() - started
        return NetworkResult(
            config=self.config,
            converged=result["converged"],
            reason=result["reason"],
            sim_seconds=result["sim_seconds"],
            wall_seconds=result_wall,
            height=result["height"],
            injected=self._injected,
            committed=result["committed"],
            samples=self._samples,
            snapshots=result["snapshots"],
        )

    async def _main(self, runtime) -> dict:
        config = self.config
        if config.transport == "tcp":
            transport = TcpTransport(runtime)
        else:
            transport = MemoryTransport(
                runtime, faults=config.faults, seed=config.seed
            )
        node_ids = [f"n{i}" for i in range(config.nodes)]
        genesis = make_genesis(config.chain)
        node_config = config.node_config(self.profile)
        self.nodes = [
            Node(
                node_id,
                runtime=runtime,
                transport=transport,
                peers=tuple(p for p in node_ids if p != node_id),
                config=node_config,
                genesis=genesis,
                seed=config.seed,
                on_block=self._handle_block,
            )
            for node_id in node_ids
        ]
        await transport.start()
        for node in self.nodes:
            node.start()
        runtime.spawn(self._inject(runtime), name="client")

        reason = "running"
        converged = False
        while True:
            await runtime.sleep(config.check_interval)
            if any(node.diverged for node in self.nodes):
                reason = "diverged"
                break
            if self._injection_done and self._converged():
                reason = "converged"
                converged = True
                break
            if runtime.now() >= config.max_sim_time:
                reason = "timeout"
                break

        for node in self.nodes:
            node.stop()
        # One more tick lets the receive loops drain their SHUTDOWN
        # frames before the transport goes away.
        await runtime.sleep(config.check_interval)
        await transport.close()

        committed = max(
            0,
            len(self.nodes[0].chain_txs) - 1,  # minus the genesis marker
        )
        if obs.enabled():
            obs.gauge("node.network.height").set(self.nodes[0].height)
            obs.counter("node.network.runs", reason=reason).inc()
        return {
            "converged": converged,
            "reason": reason,
            "sim_seconds": runtime.now(),
            "height": min(node.height for node in self.nodes),
            "committed": committed,
            "snapshots": tuple(
                self._snapshot(node) for node in self.nodes
            ),
        }

    async def _inject(self, runtime) -> None:
        config = self.config
        predict = config.engine == "static-grouped"
        txs = build_node_txs(
            self.profile,
            blocks=config.workload_blocks,
            seed=config.seed,
            scale=config.scale,
            predict=predict,
        )
        rng = random.Random(f"{config.seed}|client")
        # Spread injection over roughly the first 60% of the expected
        # mining time so late blocks still find a non-empty pool.
        horizon = config.height * config.block_interval * 0.6
        gap = horizon / max(1, len(txs))
        for ntx in txs:
            await runtime.sleep(gap)
            if not self.nodes or not self.nodes[0].running:
                break
            target = self.nodes[rng.randrange(len(self.nodes))]
            target.submit_tx(ntx)
            self._injected += 1
        self._injection_done = True

    def _converged(self) -> bool:
        nodes = self.nodes
        heads = {node.head_hash for node in nodes}
        if len(heads) != 1:
            return False
        if min(node.height for node in nodes) < self.config.height:
            return False
        pools = {tuple(node.pool_hashes()) for node in nodes}
        return len(pools) == 1

    def _snapshot(self, node: Node) -> NodeSnapshot:
        return NodeSnapshot(
            node_id=node.node_id,
            height=node.height,
            head_hash=node.head_hash,
            chain_root=node.chain_root(),
            pool_hashes=tuple(node.pool_hashes()),
            proposed=node.stats.proposed,
            applied=node.stats.applied,
            reorgs=node.stats.reorgs,
            orphaned=node.stats.orphaned,
            duplicate_drops=(
                node.stats.duplicate_txs + node.stats.duplicate_blocks
            ),
            diverged=node.diverged,
        )


def network_fingerprint(result: NetworkResult) -> str:
    """One hash over the deterministic snapshot — handy in tests."""
    doc = result.snapshot_dict()
    return hash_fields(
        "network-fingerprint",
        doc["reason"],
        doc["height"],
        doc["committed"],
        tuple(
            (n["node_id"], n["head_hash"], n["chain_root"],
             tuple(n["pool"]))
            for n in doc["nodes"]
        ),
    )


__all__ = [
    "TRANSPORTS",
    "NetworkConfig",
    "NetworkResult",
    "NodeNetwork",
    "NodeSnapshot",
    "build_node_txs",
    "network_fingerprint",
]
