"""Pluggable node transports: seeded in-memory faults and real TCP.

Both transports present one surface to the node layer — ``register``
an inbox per node, fire-and-forget ``send(dst, frame)``, and async
``start``/``close`` — so the node service loops never know which wire
they are on:

* :class:`MemoryTransport` — frames travel through the runtime's
  queues with *seeded* latency, jitter, loss, duplication and
  reordering drawn from one ``random.Random``.  Under the virtual
  runtime the send sequence is deterministic, so the fault schedule
  is too: the same seed yields the same drops and arrival order,
  byte-for-byte, which is what the convergence property suite leans
  on.
* :class:`TcpTransport` — length-prefixed pickled frames over real
  asyncio loopback sockets, one ordered connection per destination.
  Nothing about it is deterministic; it exists so the throughput
  bench measures a real network stack.

Fault injection happens **per send** on the sender's side (loss before
duplication before delay draws), mirroring how an unreliable link
drops a datagram before the receiver ever schedules it.
"""

from __future__ import annotations

import asyncio
import pickle
import random
import struct
from dataclasses import dataclass, field

from repro import obs

_LEN = struct.Struct(">I")
_CLOSE = object()


@dataclass(frozen=True)
class Frame:
    """One gossip/protocol message.

    ``kind`` is the protocol verb (``tx``, ``block``, ``announce``,
    ``pull_chain``, ``chain``, ``pull_txs``), ``src`` the sending node
    id, ``payload`` verb-specific, and ``hops`` the relay depth —
    lifecycle ``relayed`` events carry it so traces expose how far a
    transaction travelled.
    """

    kind: str
    src: str
    payload: object
    hops: int = 0


@dataclass(frozen=True)
class FaultProfile:
    """Seeded link-fault schedule for the memory transport."""

    latency: float = 0.01
    jitter: float = 0.5
    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_delay: float = 4.0

    def __post_init__(self) -> None:
        if self.latency <= 0:
            raise ValueError("latency must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        for name in ("loss", "duplicate", "reorder"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1)")
        if self.reorder_delay < 0:
            raise ValueError("reorder_delay must be non-negative")


@dataclass
class TransportStats:
    """Sender-side frame accounting (kept even with obs disabled)."""

    sent: int = 0
    lost: int = 0
    duplicated: int = 0


class MemoryTransport:
    """In-process queues with a seeded fault schedule."""

    def __init__(self, runtime, *, faults: FaultProfile | None = None,
                 seed: int = 0) -> None:
        self._runtime = runtime
        self.faults = faults if faults is not None else FaultProfile()
        self._rng = random.Random(f"{seed}|transport")
        self._inboxes: dict[str, object] = {}
        self.stats = TransportStats()

    def register(self, node_id: str):
        if node_id in self._inboxes:
            raise ValueError(f"node {node_id!r} already registered")
        inbox = self._runtime.new_queue()
        self._inboxes[node_id] = inbox
        return inbox

    async def start(self) -> None:
        return None

    async def close(self) -> None:
        return None

    def _delay(self) -> float:
        faults = self.faults
        spread = faults.jitter
        delay = faults.latency * (
            1.0 - spread + 2.0 * spread * self._rng.random()
        )
        if faults.reorder and self._rng.random() < faults.reorder:
            delay += (
                faults.latency * faults.reorder_delay * self._rng.random()
            )
        return delay

    def send(self, dst: str, frame: Frame) -> None:
        inbox = self._inboxes.get(dst)
        if inbox is None:
            raise KeyError(f"unknown destination {dst!r}")
        self.stats.sent += 1
        if obs.enabled():
            obs.counter("node.net.sent").inc()
        rng = self._rng
        faults = self.faults
        if faults.loss and rng.random() < faults.loss:
            self.stats.lost += 1
            if obs.enabled():
                obs.counter("node.net.lost").inc()
            return
        copies = 1
        if faults.duplicate and rng.random() < faults.duplicate:
            copies = 2
            self.stats.duplicated += 1
            if obs.enabled():
                obs.counter("node.net.duplicated").inc()
        for _ in range(copies):
            self._runtime.call_later(
                self._delay(), lambda: inbox.put_nowait(frame)
            )


class TcpTransport:
    """Length-prefixed pickled frames over asyncio loopback sockets.

    Each node gets a listening server on an ephemeral 127.0.0.1 port;
    each (sender-process, destination) pair shares one ordered
    connection fed by an outgoing queue, so per-destination frame
    order is preserved — the property the block sync path assumes.
    """

    def __init__(self, runtime, *, host: str = "127.0.0.1") -> None:
        self._runtime = runtime
        self._host = host
        self._inboxes: dict[str, asyncio.Queue] = {}
        self._servers: dict[str, asyncio.AbstractServer] = {}
        self._ports: dict[str, int] = {}
        self._out: dict[str, asyncio.Queue] = {}
        self._senders: dict[str, object] = {}
        self.stats = TransportStats()

    def register(self, node_id: str) -> asyncio.Queue:
        if node_id in self._inboxes:
            raise ValueError(f"node {node_id!r} already registered")
        inbox: asyncio.Queue = asyncio.Queue()
        self._inboxes[node_id] = inbox
        return inbox

    async def start(self) -> None:
        for node_id, inbox in self._inboxes.items():
            server = await asyncio.start_server(
                lambda r, w, q=inbox: self._serve(q, r, w),
                self._host, 0,
            )
            self._servers[node_id] = server
            self._ports[node_id] = server.sockets[0].getsockname()[1]

    async def _serve(self, inbox: asyncio.Queue, reader, writer) -> None:
        try:
            while True:
                header = await reader.readexactly(_LEN.size)
                (length,) = _LEN.unpack(header)
                data = await reader.readexactly(length)
                inbox.put_nowait(pickle.loads(data))
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        finally:
            writer.close()

    async def _sender(self, dst: str) -> None:
        queue = self._out[dst]
        reader, writer = await asyncio.open_connection(
            self._host, self._ports[dst]
        )
        try:
            while True:
                frame = await queue.get()
                if frame is _CLOSE:
                    break
                data = pickle.dumps(frame)
                writer.write(_LEN.pack(len(data)) + data)
                await writer.drain()
        finally:
            writer.close()

    def send(self, dst: str, frame: Frame) -> None:
        if dst not in self._inboxes:
            raise KeyError(f"unknown destination {dst!r}")
        self.stats.sent += 1
        if obs.enabled():
            obs.counter("node.net.sent").inc()
        queue = self._out.get(dst)
        if queue is None:
            queue = asyncio.Queue()
            self._out[dst] = queue
            self._senders[dst] = self._runtime.spawn(
                self._sender(dst), name=f"tcp-sender:{dst}"
            )
        queue.put_nowait(frame)

    async def close(self) -> None:
        for queue in self._out.values():
            queue.put_nowait(_CLOSE)
        if self._senders:
            await asyncio.gather(
                *self._senders.values(), return_exceptions=True
            )
        for server in self._servers.values():
            server.close()
            await server.wait_closed()


__all__ = [
    "FaultProfile",
    "Frame",
    "MemoryTransport",
    "TcpTransport",
    "TransportStats",
]
