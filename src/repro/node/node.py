"""A full-lifecycle blockchain node as cooperating service loops.

One :class:`Node` runs the entire transaction path the batch pipelines
only simulated stage by stage:

* **ingress** — :meth:`Node.submit_tx` admits a client transaction
  into the node's fee-market :class:`~repro.mempool.pool.Mempool`
  (minting the lifecycle ``admitted`` root span) and push-relays it;
* **gossip** — a receive loop dedups tx/block frames through bounded
  :class:`~repro.network.gossip.BoundedSeenCache` LRUs and floods them
  on (``relayed`` events carry the hop depth);
* **proposer** — PoW interval draws
  (:class:`~repro.consensus.pow.PoWSimulator`) or round-robin PBFT
  rounds (:class:`~repro.consensus.pbft.PBFTCommittee`) gate packing a
  block from the local pool; the proposer executes it through its
  engine, embeds the resulting state root in ``header.extra``, and
  stitches the execution events into the lifecycle traces;
* **validation** — received blocks replay through any of the eight
  engines via
  :func:`~repro.execution.parallel_replay.replay_single_block`; the
  replayed root is checked against the proposer's claim, the node
  *sleeps for the execution time* before relaying (the paper's
  propagation/validation coupling: a faster executor relays sooner),
  and :class:`~repro.chain.forkchoice.ForkChoice` applies the block,
  replaying mempool contents across reorgs;
* **anti-entropy** — periodic heartbeats announce the head and the
  pool's tx hashes; peers pull missing chain segments and
  transactions, which is what drives convergence back after seeded
  message loss.

Every loop awaits only the runtime surface of
:mod:`repro.node.runtime`, so the same node runs deterministically
under the virtual clock and in real time under asyncio.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.chain.block import GENESIS_PARENT, Block, build_block
from repro.chain.errors import ValidationError
from repro.chain.forkchoice import ForkChoice, Reorg
from repro.chain.hashing import hash_fields
from repro.consensus.pow import Miner, PoWSimulator
from repro.execution.engine import TxTask
from repro.execution.parallel_replay import (
    DATA_MODELS,
    ENGINES,
    BlockReplay,
    ReplayBlock,
    replay_single_block,
)
from repro.mempool.pool import AdmissionError, Mempool, PoolEntry
from repro.network.gossip import BoundedSeenCache
from repro.node.transport import Frame
from repro.obs.critical_path import profile_events
from repro.obs.lifecycle import stitch_execution_events
from repro.obs.monitor import BlockSample

SHUTDOWN = object()

GENESIS_PREFIX = "genesis"


@dataclass(frozen=True)
class NodeTx:
    """A client transaction as the node network ships it.

    Bundles the executor-ready :class:`TxTask` with the raw payload
    transaction (receipts/DAG input), the fee-market bid, and the
    optional static access prediction — everything a remote node needs
    to admit, pack, and replay the transaction without shared state.
    """

    task: TxTask
    payload: object = None
    fee: int = 1
    weight: int = 1
    prediction: object = None

    @property
    def tx_hash(self) -> str:
        return self.task.tx_hash


def make_genesis(chain: str) -> Block[NodeTx]:
    """The deterministic genesis block every node starts from.

    Blocks must carry at least one transaction (the Merkle rule), so
    genesis holds a zero-state marker that is never executed.
    """
    marker = NodeTx(
        task=TxTask(tx_hash=f"{GENESIS_PREFIX}-{chain}", cost=1.0),
        fee=0, weight=1,
    )
    return build_block(
        [marker], height=0, parent_hash=GENESIS_PARENT,
        timestamp=0.0, miner=GENESIS_PREFIX,
    )


def chain_state_root(
    chain: list[Block[NodeTx]], roots: dict[str, str]
) -> str:
    """Fold per-block execution state roots into one chain digest."""
    return hash_fields(
        "chain-state-root",
        tuple((block.height, roots[block.block_hash]) for block in chain),
    )


@dataclass(frozen=True)
class NodeConfig:
    """Per-node policy shared by every node in a network."""

    chain: str = "ethereum"
    data_model: str = "account"
    engine: str = "occ"
    cores: int = 2
    consensus: str = "pow"
    num_nodes: int = 4
    num_shards: int = 0
    block_interval: float = 2.0
    block_weight: int = 400
    heartbeat: float = 0.5
    cost_unit_seconds: float = 0.001
    seen_capacity: int = 4096
    stop_height: int = 5
    mempool_weight: int = 2 ** 62
    min_fee_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of: "
                + ", ".join(ENGINES)
            )
        if self.data_model not in DATA_MODELS:
            raise ValueError(f"unknown data model {self.data_model!r}")
        if self.consensus not in ("pow", "pbft"):
            raise ValueError("consensus must be 'pow' or 'pbft'")
        if self.cores < 1:
            raise ValueError("cores must be at least 1")
        if self.num_nodes < 2:
            raise ValueError("num_nodes must be at least 2")
        if self.block_interval <= 0:
            raise ValueError("block_interval must be positive")
        if self.block_weight < 1:
            raise ValueError("block_weight must be positive")
        if self.heartbeat <= 0:
            raise ValueError("heartbeat must be positive")
        if self.cost_unit_seconds <= 0:
            raise ValueError("cost_unit_seconds must be positive")
        if self.seen_capacity < 1:
            raise ValueError("seen_capacity must be positive")
        if self.stop_height < 1:
            raise ValueError("stop_height must be at least 1")


@dataclass
class NodeStats:
    """Service-loop accounting, reported in network snapshots."""

    ingress: int = 0
    relayed: int = 0
    duplicate_txs: int = 0
    duplicate_blocks: int = 0
    rejected: int = 0
    proposed: int = 0
    applied: int = 0
    side_blocks: int = 0
    reorgs: int = 0
    orphaned: int = 0
    pulls_served: int = 0
    root_mismatches: int = 0
    exec_wall: float = 0.0


class Node:
    """One in-process node: mempool, gossip, proposer, validator."""

    def __init__(
        self,
        node_id: str,
        *,
        runtime,
        transport,
        peers: tuple[str, ...],
        config: NodeConfig,
        genesis: Block[NodeTx],
        seed: int = 0,
        on_block: Callable[[str, BlockSample], None] | None = None,
    ) -> None:
        self.node_id = node_id
        self.runtime = runtime
        self.transport = transport
        self.peers = tuple(peers)
        self.config = config
        self.on_block = on_block
        self.inbox = transport.register(node_id)
        self.rng = random.Random(f"{seed}|{node_id}")
        self.pool: Mempool[NodeTx] = Mempool(
            max_weight=config.mempool_weight,
            min_fee_rate=config.min_fee_rate,
        )
        self.forkchoice: ForkChoice[NodeTx] = ForkChoice()
        self.forkchoice.receive(genesis)
        self.block_roots: dict[str, str] = {
            genesis.block_hash: hash_fields("state-root", ())
        }
        self.chain_txs: set[str] = {
            tx.tx_hash for tx in genesis.transactions
        }
        self.seen_txs = BoundedSeenCache(
            config.seen_capacity, metric="node.relay.seen_evicted"
        )
        self.seen_blocks = BoundedSeenCache(
            config.seen_capacity, metric="node.relay.seen_evicted"
        )
        self._orphans: dict[str, dict[str, Block[NodeTx]]] = {}
        self._wanted: set[str] = set()
        self.stats = NodeStats()
        self.running = True
        self.mining = True
        self.diverged = False
        self._last_head_at = 0.0
        self._all_ids = tuple(sorted((node_id, *peers)))
        self._pow: PoWSimulator | None = None
        self._pbft = None
        if config.consensus == "pow":
            # Each node mines independently; scaling the per-node target
            # by the node count keeps the *network* block rate at one
            # block per config.block_interval.
            self._pow = PoWSimulator(
                miners=[Miner(node_id, node_id, 1.0)],
                target_interval=config.block_interval * config.num_nodes,
                retarget_window=10 ** 9,
                rng=self.rng,
            )
        else:
            from repro.consensus.pbft import PBFTCommittee

            self._pbft = PBFTCommittee(
                size=max(4, config.num_nodes), rng=self.rng
            )

    # -- lifecycle of the service itself --------------------------------------

    def start(self) -> None:
        """Spawn the service loops on the runtime."""
        spawn = self.runtime.spawn
        spawn(self._recv_loop(), name=f"{self.node_id}.recv")
        spawn(self._proposer_loop(), name=f"{self.node_id}.proposer")
        spawn(self._heartbeat_loop(), name=f"{self.node_id}.heartbeat")

    def stop(self) -> None:
        """Stop loops; the receive loop drains on the SHUTDOWN frame."""
        self.running = False
        self.mining = False
        self.inbox.put_nowait(SHUTDOWN)

    # -- convenience views -----------------------------------------------------

    @property
    def height(self) -> int:
        head = self.forkchoice.head_block()
        return head.height if head is not None else -1

    @property
    def head_hash(self) -> str:
        return self.forkchoice.head or ""

    def pool_hashes(self) -> list[str]:
        return sorted(self.pool.tx_hashes())

    def chain_root(self) -> str:
        return chain_state_root(
            self.forkchoice.active_chain(), self.block_roots
        )

    # -- ingress ---------------------------------------------------------------

    def submit_tx(self, ntx: NodeTx) -> bool:
        """Admit a client transaction and start the push-relay flood."""
        self.stats.ingress += 1
        if obs.enabled():
            obs.counter("node.ingress.txs").inc()
        self.seen_txs.add(ntx.tx_hash)
        if ntx.tx_hash in self.chain_txs:
            return False
        if not self._admit_to_pool(ntx):
            return False
        self._relay(Frame("tx", self.node_id, ntx, hops=1))
        return True

    def _admit_to_pool(self, ntx: NodeTx) -> bool:
        self._sync_clock()
        try:
            self.pool.submit(PoolEntry(
                tx_hash=ntx.tx_hash, fee=ntx.fee, weight=ntx.weight,
                payload=ntx,
            ))
        except AdmissionError:
            self.stats.rejected += 1
            return False
        life = obs.lifecycle()
        if life.enabled and self.config.num_shards > 0:
            from repro.sharding.committee import shard_for_address

            life.record(
                ntx.tx_hash, "assigned",
                shard=shard_for_address(
                    ntx.tx_hash, self.config.num_shards
                ),
                node=self.node_id,
            )
        return True

    # -- gossip ----------------------------------------------------------------

    def _relay(self, frame: Frame, *, exclude: str | None = None) -> None:
        for peer in self.peers:
            if peer == exclude:
                continue
            self.stats.relayed += 1
            self.transport.send(peer, frame)
        if obs.enabled():
            obs.counter("node.relay.sent", kind=frame.kind).inc()

    async def _recv_loop(self) -> None:
        while True:
            frame = await self.inbox.get()
            if frame is SHUTDOWN or not self.running:
                break
            await self._dispatch(frame)

    async def _dispatch(self, frame: Frame) -> None:
        kind = frame.kind
        if kind == "tx":
            self._on_tx(frame)
        elif kind == "block":
            await self._on_block(frame)
        elif kind == "announce":
            self._on_announce(frame)
        elif kind == "pull_chain":
            self._on_pull_chain(frame)
        elif kind == "chain":
            await self._on_chain(frame)
        elif kind == "pull_txs":
            self._on_pull_txs(frame)
        else:
            raise ValueError(f"unknown frame kind {kind!r}")

    def _on_tx(self, frame: Frame) -> None:
        ntx: NodeTx = frame.payload
        tx_hash = ntx.tx_hash
        requested = tx_hash in self._wanted
        if requested:
            self._wanted.discard(tx_hash)
            self.seen_txs.add(tx_hash)
        elif not self.seen_txs.add(tx_hash):
            self.stats.duplicate_txs += 1
            if obs.enabled():
                obs.counter("node.relay.duplicate_drops", kind="tx").inc()
            return
        if tx_hash in self.chain_txs or tx_hash in self.pool:
            return
        if not self._admit_to_pool(ntx):
            return
        life = obs.lifecycle()
        if life.enabled:
            life.record(
                tx_hash, "relayed", node=self.node_id, hop=frame.hops
            )
        self._relay(
            Frame("tx", self.node_id, ntx, hops=frame.hops + 1),
            exclude=frame.src,
        )

    async def _on_block(self, frame: Frame) -> None:
        block: Block[NodeTx] = frame.payload
        if not self.seen_blocks.add(block.block_hash):
            self.stats.duplicate_blocks += 1
            if obs.enabled():
                obs.counter(
                    "node.relay.duplicate_drops", kind="block"
                ).inc()
            return
        await self._ingest_block(
            block, src=frame.src, hops=frame.hops, relay=True
        )

    # -- anti-entropy ----------------------------------------------------------

    async def _heartbeat_loop(self) -> None:
        jitter = self.rng
        while self.running:
            await self.runtime.sleep(
                self.config.heartbeat * (0.75 + 0.5 * jitter.random())
            )
            if not self.running:
                break
            head = self.forkchoice.head_block()
            assert head is not None
            digest = (
                head.block_hash, head.height, tuple(self.pool_hashes())
            )
            if obs.enabled():
                obs.counter("node.heartbeats").inc()
            self._relay(Frame("announce", self.node_id, digest))

    def _on_announce(self, frame: Frame) -> None:
        head_hash, _height, pool_hashes = frame.payload
        if head_hash not in self.forkchoice.tree:
            self.transport.send(
                frame.src, Frame("pull_chain", self.node_id, 0)
            )
        missing = tuple(
            tx_hash for tx_hash in pool_hashes
            if tx_hash not in self.pool
            and tx_hash not in self.chain_txs
        )
        if missing:
            self._wanted.update(missing)
            self.transport.send(
                frame.src, Frame("pull_txs", self.node_id, missing)
            )

    def _on_pull_chain(self, frame: Frame) -> None:
        since = max(0, int(frame.payload))
        blocks = tuple(
            block for block in self.forkchoice.active_chain()
            if block.height > since
        )
        if blocks:
            self.stats.pulls_served += 1
            if obs.enabled():
                obs.counter("node.sync.chains_served").inc()
            self.transport.send(
                frame.src, Frame("chain", self.node_id, blocks)
            )

    async def _on_chain(self, frame: Frame) -> None:
        for block in sorted(frame.payload, key=lambda b: b.height):
            self.seen_blocks.add(block.block_hash)
            await self._ingest_block(block, src=frame.src, relay=False)

    def _on_pull_txs(self, frame: Frame) -> None:
        for tx_hash in frame.payload:
            entry = self.pool.get(tx_hash)
            if entry is not None:
                self.stats.pulls_served += 1
                self.transport.send(
                    frame.src,
                    Frame("tx", self.node_id, entry.payload, hops=1),
                )

    # -- validation + fork choice ---------------------------------------------

    @staticmethod
    def _executable(txs) -> tuple[NodeTx, ...]:
        """Payload-bearing transactions (markers never execute)."""
        return tuple(tx for tx in txs if tx.payload is not None)

    def _execute(
        self, height: int, ntxs: tuple[NodeTx, ...]
    ) -> tuple[BlockReplay, tuple]:
        replay_input = ReplayBlock(
            height=height,
            tasks=tuple(ntx.task for ntx in ntxs),
            payload=tuple(ntx.payload for ntx in ntxs),
            predictions=tuple(
                ntx.prediction for ntx in ntxs
                if ntx.prediction is not None
            ),
        )
        started = time.perf_counter()
        record, events = replay_single_block(
            self.config.data_model, replay_input,
            self.config.engine, self.config.cores,
        )
        wall = time.perf_counter() - started
        self.stats.exec_wall += wall
        if obs.enabled():
            obs.histogram("node.execute.wall").observe(wall)
            obs.counter("node.execute.blocks").inc()
        return record, events

    async def _ingest_block(
        self,
        block: Block[NodeTx],
        *,
        src: str | None = None,
        hops: int = 0,
        relay: bool = True,
    ) -> None:
        block_hash = block.block_hash
        if block_hash in self.forkchoice.tree:
            return
        parent = block.header.parent_hash
        if parent != GENESIS_PARENT and parent not in self.forkchoice.tree:
            self._orphans.setdefault(parent, {})[block_hash] = block
            self.stats.orphaned += 1
            if obs.enabled():
                obs.counter("node.blocks.orphaned").inc()
            if src is not None:
                self.transport.send(
                    src, Frame("pull_chain", self.node_id, 0)
                )
            return
        ntxs = self._executable(block.transactions)
        replay, events = self._execute(block.height, ntxs)
        claimed = block.header.extra
        if claimed and replay.state_root != claimed:
            self.diverged = True
            self.stats.root_mismatches += 1
            if obs.enabled():
                obs.counter("node.root_mismatch").inc()
            return
        # The propagation/validation coupling the paper motivates:
        # a node only relays after executing, so a faster engine cuts
        # the relay delay at every hop.
        await self.runtime.sleep(
            replay.wall_time * self.config.cost_unit_seconds
        )
        if block_hash in self.forkchoice.tree or not self.running:
            return
        self._admit(
            block, replay, events,
            relay=relay, exclude=src, hops=hops, stitched=False,
        )
        await self._drain_orphans(block_hash)

    async def _drain_orphans(self, parent_hash: str) -> None:
        children = self._orphans.pop(parent_hash, None)
        if not children:
            return
        for block in sorted(children.values(), key=lambda b: b.height):
            await self._ingest_block(block, relay=True)

    def _admit(
        self,
        block: Block[NodeTx],
        replay: BlockReplay,
        events: tuple,
        *,
        relay: bool,
        exclude: str | None,
        hops: int,
        stitched: bool,
    ) -> None:
        block_hash = block.block_hash
        self.block_roots[block_hash] = replay.state_root
        self._sync_clock()
        try:
            reorg = self.forkchoice.receive(block)
        except ValidationError:
            return
        self.stats.applied += 1
        if obs.enabled():
            obs.counter("node.blocks.applied").inc()
        if reorg is not None:
            self._apply_reorg(reorg)
        else:
            self.stats.side_blocks += 1
            if stitched:
                # Our own proposal landed on a losing fork: its packed
                # transactions are in neither the pool nor the active
                # chain, so put them back for a later block.
                for ntx in self._executable(block.transactions):
                    self._admit_to_pool(ntx)
        if (
            self.on_block is not None
            and reorg is not None
            and reorg.new_head == block_hash
        ):
            self._emit_sample(block, replay, events)
        if relay:
            self._relay(
                Frame("block", self.node_id, block, hops=hops + 1),
                exclude=exclude,
            )

    def _apply_reorg(self, reorg: Reorg[NodeTx]) -> None:
        if reorg.rolled_back:
            self.stats.reorgs += 1
            if obs.enabled():
                obs.counter("node.reorgs").inc()
                obs.histogram("node.reorg.depth").observe(reorg.depth)
        for block in reorg.rolled_back:
            for ntx in self._executable(block.transactions):
                self.chain_txs.discard(ntx.tx_hash)
                self._admit_to_pool(ntx)
        for block in reorg.applied:
            for ntx in block.transactions:
                self.chain_txs.add(ntx.tx_hash)
                self.pool.remove(ntx.tx_hash)
        if obs.enabled():
            obs.gauge("node.height").set(self.height)

    def _emit_sample(
        self, block: Block[NodeTx], replay: BlockReplay, events: tuple
    ) -> None:
        now = self.runtime.now()
        life = obs.lifecycle()
        stage_latencies: dict[str, list[float]] = {}
        if life.enabled:
            for tx in self._executable(block.transactions):
                trace = life.trace(tx.tx_hash)
                if trace is None or not trace.closed:
                    continue
                for stage, wait in trace.stage_latencies():
                    stage_latencies.setdefault(stage, []).append(wait)
        utilization = (
            profile_events(events).mean_utilization if events else 0.0
        )
        sample = BlockSample(
            height=block.height,
            txs=replay.num_tasks,
            committed=replay.committed,
            aborted=replay.aborted,
            retried=replay.retried,
            wall_clock_s=replay.wall_time * self.config.cost_unit_seconds,
            sim_seconds=max(0.0, now - self._last_head_at),
            mempool_depth=len(self.pool),
            lane_utilization=utilization,
            stage_latencies={
                stage: tuple(values)
                for stage, values in stage_latencies.items()
            },
        )
        self._last_head_at = now
        self.on_block(self.node_id, sample)

    # -- proposer --------------------------------------------------------------

    async def _proposer_loop(self) -> None:
        if self.config.consensus == "pow":
            await self._pow_loop()
        else:
            await self._pbft_loop()

    async def _pow_loop(self) -> None:
        assert self._pow is not None
        while self.running and self.mining:
            slot = self._pow.next_slot(self.runtime.now())
            await self.runtime.sleep(max(slot.interval, 1e-6))
            if not (self.running and self.mining):
                break
            head = self.forkchoice.head_block()
            assert head is not None
            # Mine PAST stop_height rather than halting there: two
            # miners can seal the stop height near-simultaneously, and
            # with equal cumulative work the first-seen tie-break
            # splits the network *permanently* if nobody extends a
            # tip.  The next block is what resolves the tie; the
            # network driver stops the node once converged.
            self._propose(
                head, difficulty=slot.difficulty, nonce=slot.nonce
            )

    async def _pbft_loop(self) -> None:
        assert self._pbft is not None
        poll = max(self.config.block_interval / 4.0, 1e-3)
        while self.running and self.mining:
            await self.runtime.sleep(poll)
            if not (self.running and self.mining):
                break
            head = self.forkchoice.head_block()
            assert head is not None
            if head.height >= self.config.stop_height:
                self.mining = False
                break
            next_height = head.height + 1
            proposer = self._all_ids[next_height % len(self._all_ids)]
            if proposer != self.node_id or len(self.pool) == 0:
                continue
            result = self._pbft.run_round()
            await self.runtime.sleep(result.latency)
            if not (self.running and self.mining):
                break
            head = self.forkchoice.head_block()
            assert head is not None
            if head.height + 1 != next_height or not result.committed:
                continue
            self._propose(head, difficulty=1.0, nonce=0)

    def _propose(
        self, head: Block[NodeTx], *, difficulty: float, nonce: int
    ) -> Block[NodeTx] | None:
        """Pack, execute, seal and self-apply one block (no awaits —
        the pack → admit window is atomic under both runtimes)."""
        self._sync_clock()
        entries = self.pool.pack_block(self.config.block_weight)
        if not entries and obs.enabled():
            obs.counter("node.proposer.empty").inc()
        height = head.height + 1
        # A coinbase marker keeps every block non-empty (the Merkle
        # rule) and keeps the chain live to stop_height even when the
        # pool drains; it carries no payload, so it is never executed.
        coinbase = NodeTx(
            task=TxTask(
                tx_hash=(
                    f"coinbase-{self.node_id}-{self.stats.proposed}"
                ),
                cost=1.0,
            ),
            fee=0, weight=1,
        )
        ntxs = (coinbase, *(entry.payload for entry in entries))
        life = obs.lifecycle()
        if life.enabled:
            for entry in entries:
                life.record(
                    entry.tx_hash, "consensus",
                    block=height, mechanism=self.config.consensus,
                    node=self.node_id,
                )
        replay, events = self._execute(height, self._executable(ntxs))
        if life.enabled:
            stitch_execution_events(
                life, events,
                at=life.clock,
                cost_unit_seconds=self.config.cost_unit_seconds,
            )
        block = build_block(
            ntxs,
            height=height,
            parent_hash=head.block_hash,
            timestamp=max(self.runtime.now(), head.header.timestamp),
            difficulty=difficulty,
            nonce=nonce,
            miner=self.node_id,
            extra=replay.state_root,
        )
        self.seen_blocks.add(block.block_hash)
        self.stats.proposed += 1
        if obs.enabled():
            obs.counter("node.blocks.proposed").inc()
        self._admit(
            block, replay, events,
            relay=True, exclude=None, hops=0, stitched=True,
        )
        return block

    # -- clock -----------------------------------------------------------------

    def _sync_clock(self) -> None:
        life = obs.lifecycle()
        if life.enabled:
            life.set_clock(max(life.clock, self.runtime.now()))


__all__ = [
    "SHUTDOWN",
    "Node",
    "NodeConfig",
    "NodeStats",
    "NodeTx",
    "chain_state_root",
    "make_genesis",
]
