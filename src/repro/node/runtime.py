"""Two runtimes, one coroutine contract: virtual clock and asyncio.

The node service loops (:mod:`repro.node.node`) are written against a
tiny runtime surface — ``now()``, ``sleep()``, ``new_queue()``,
``spawn()``, ``call_later()`` — so the *same* coroutines run under two
schedulers:

* :class:`VirtualRuntime` — a deterministic discrete-event scheduler.
  ``sleep`` and queue ``get`` suspend by yielding a :class:`_Trap`
  up to the event loop, which re-schedules the task on a
  ``(time, seq)`` heap.  Time is simulated: a 4-node network mining to
  height 20 "takes" hundreds of simulated seconds but runs in
  milliseconds of wall clock, with byte-identical event order on every
  run of the same seed.  This is what makes the multi-node convergence
  tests reproducible and sleep-free.
* :class:`AsyncioRuntime` — the same surface over a real asyncio loop,
  for the TCP/loopback transport and the wall-clock throughput bench.

The virtual scheduler deliberately does **not** monkeypatch asyncio:
asyncio's readiness callbacks and executor hooks leak real time in
ways that are hard to pin, while a purpose-built heap scheduler is
~100 lines and provably ordered by ``(time, seq)``.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from collections import deque
from typing import Any, Awaitable, Callable, Coroutine, Generator

_SLEEP = "sleep"
_GET = "get"


class _Trap:
    """An awaitable that yields itself to the virtual scheduler."""

    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: object = None) -> None:
        self.kind = kind
        self.value = value

    def __await__(self) -> Generator["_Trap", Any, Any]:
        result = yield self
        return result


class VirtualTask:
    """One coroutine driven by the virtual scheduler."""

    __slots__ = ("coro", "name", "done", "result")

    def __init__(self, coro: Coroutine, name: str) -> None:
        self.coro = coro
        self.name = name
        self.done = False
        self.result: object = None


class SimQueue:
    """An unbounded FIFO queue awaitable under the virtual runtime."""

    def __init__(self, runtime: "VirtualRuntime") -> None:
        self._runtime = runtime
        self._items: deque = deque()
        self._waiters: deque[VirtualTask] = deque()

    def put_nowait(self, item: object) -> None:
        if self._waiters:
            task = self._waiters.popleft()
            self._runtime._wake(task, item)
        else:
            self._items.append(item)

    def get(self) -> Awaitable:
        return _Trap(_GET, self)

    def qsize(self) -> int:
        return len(self._items)


class VirtualRuntime:
    """Deterministic discrete-event coroutine scheduler.

    Events are ordered by ``(time, seq)`` — the sequence counter breaks
    simultaneous-event ties by creation order, so two runs that make
    the same calls in the same order wake tasks identically.  No wall
    clock ever feeds a scheduling decision.
    """

    is_virtual = True

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = itertools.count()
        self._heap: list[tuple[float, int, object, object]] = []
        self._live: set[VirtualTask] = set()

    # -- time -----------------------------------------------------------------

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> Awaitable:
        return _Trap(_SLEEP, max(0.0, float(seconds)))

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        when = self._now + max(0.0, float(delay))
        heapq.heappush(self._heap, (when, next(self._seq), "call", fn))

    # -- tasks ----------------------------------------------------------------

    def new_queue(self) -> SimQueue:
        return SimQueue(self)

    def spawn(self, coro: Coroutine, name: str = "") -> VirtualTask:
        task = VirtualTask(coro, name)
        self._live.add(task)
        self._wake(task, None)
        return task

    def _wake(self, task: VirtualTask, value: object) -> None:
        heapq.heappush(
            self._heap, (self._now, next(self._seq), task, value)
        )

    def _step(self, task: VirtualTask, value: object) -> None:
        if task.done:
            return
        try:
            trap = task.coro.send(value)
        except StopIteration as stop:
            task.done = True
            task.result = stop.value
            self._live.discard(task)
            return
        if not isinstance(trap, _Trap):
            raise RuntimeError(
                f"task {task.name!r} awaited a non-virtual awaitable "
                f"{trap!r}; node coroutines must only await runtime "
                "sleeps and queues"
            )
        if trap.kind == _SLEEP:
            heapq.heappush(
                self._heap,
                (self._now + trap.value, next(self._seq), task, None),
            )
        elif trap.kind == _GET:
            queue: SimQueue = trap.value
            if queue._items:
                self._wake(task, queue._items.popleft())
            else:
                queue._waiters.append(task)
        else:  # pragma: no cover - _Trap kinds are closed
            raise RuntimeError(f"unknown trap kind {trap.kind!r}")

    def run_until_complete(self, main: Coroutine) -> object:
        """Drive *main* (and everything it spawns) to completion.

        Raises ``RuntimeError`` on deadlock — the heap empties while
        *main* still waits, meaning every task is parked on a queue no
        one will ever fill.  Remaining service-loop tasks are closed
        once *main* returns.
        """
        main_task = self.spawn(main, name="main")
        try:
            while not main_task.done:
                if not self._heap:
                    raise RuntimeError(
                        "virtual runtime deadlocked: no scheduled "
                        "events but the main task is not done"
                    )
                when, _seq, target, value = heapq.heappop(self._heap)
                self._now = max(self._now, when)
                if target == "call":
                    value()
                else:
                    self._step(target, value)
            return main_task.result
        finally:
            for task in list(self._live):
                task.coro.close()
            self._live.clear()
            self._heap.clear()


class AsyncioRuntime:
    """The same runtime surface over a real asyncio event loop.

    ``now()`` is the loop clock rebased to 0 at startup so block
    timestamps look like the virtual runtime's; scheduling is real
    time, so nothing about this runtime is deterministic — it exists
    for the TCP transport and wall-clock benches.
    """

    is_virtual = False

    def __init__(self) -> None:
        self._loop: asyncio.AbstractEventLoop | None = None
        self._t0 = 0.0
        self._tasks: set[asyncio.Task] = set()

    def now(self) -> float:
        if self._loop is None:
            return 0.0
        return self._loop.time() - self._t0

    def sleep(self, seconds: float) -> Awaitable:
        return asyncio.sleep(max(0.0, float(seconds)))

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        assert self._loop is not None
        self._loop.call_later(max(0.0, float(delay)), fn)

    def new_queue(self) -> asyncio.Queue:
        return asyncio.Queue()

    def spawn(self, coro: Coroutine, name: str = "") -> asyncio.Task:
        assert self._loop is not None
        task = self._loop.create_task(coro, name=name or None)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    def run_until_complete(self, main: Coroutine) -> object:
        async def _boot() -> object:
            self._loop = asyncio.get_running_loop()
            self._t0 = self._loop.time()
            try:
                return await main
            finally:
                for task in list(self._tasks):
                    task.cancel()
                await asyncio.gather(*self._tasks, return_exceptions=True)

        return asyncio.run(_boot())


__all__ = [
    "AsyncioRuntime",
    "SimQueue",
    "VirtualRuntime",
    "VirtualTask",
]
